"""Legacy-path shim: lets `pip install -e . --no-use-pep517` work in
environments without the `wheel` package (all metadata lives in
pyproject.toml)."""

from setuptools import setup

setup()
