"""LE-OCBE: oblivious envelopes for ``<=`` predicates.

Mirror image of GE-OCBE (Section IV-C notes it "can be constructed in a
similar way"): the receiver proves ``d = x0 - x >= 0`` bitwise.  Writing
``c = g^x h^r``, the recombination check becomes

    ``g^{x0} c^{-1} = prod c_i^{2^i}``

because ``prod c_i^{2^i} = g^{sum 2^i d_i} h^{sum 2^i r_i}`` with
``sum 2^i d_i = x0 - x`` and ``sum 2^i r_i = -r``.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.crypto.pedersen import PedersenCommitment
from repro.errors import PredicateError
from repro.groups.base import GroupElement
from repro.ocbe.base import OCBESetup
from repro.ocbe.ge import _BitwiseReceiverBase, _BitwiseSenderBase
from repro.ocbe.predicates import LePredicate

__all__ = ["LeOCBESender", "LeOCBEReceiver"]


class LeOCBESender(_BitwiseSenderBase):
    """LE-OCBE sender: delivers M iff the committed ``x <= x0``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: LePredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, LePredicate):
            raise PredicateError("LeOCBESender requires a LePredicate")
        super().__init__(setup, predicate, rng)

    def _check_target(self, commitment: PedersenCommitment) -> GroupElement:
        params = self.setup.pedersen
        return params.pow_g(self.predicate.x0) * commitment.value.inverse()


class LeOCBEReceiver(_BitwiseReceiverBase):
    """LE-OCBE receiver holding the opening ``(x, r)`` of ``c``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: LePredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, LePredicate):
            raise PredicateError("LeOCBEReceiver requires a LePredicate")
        super().__init__(setup, predicate, x, r, commitment, rng)

    def _difference(self) -> int:
        return (self.predicate.x0 - self.x) % self.setup.pedersen.order

    def _blinding_total(self) -> int:
        return (-self.r) % self.setup.pedersen.order
