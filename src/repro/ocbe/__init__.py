"""Oblivious Commitment-Based Envelope (OCBE) protocols.

Implements the Li & Li OCBE family exactly as presented in Section IV-C of
the paper: a sender S can deliver a message to a receiver R such that

* R can decrypt **iff** R's Pedersen-committed value satisfies S's
  comparison predicate, and
* S learns nothing about the committed value -- not even whether delivery
  succeeded.

Natively implemented protocols:

* :class:`~repro.ocbe.eq.EqOCBE` for ``=`` predicates,
* :class:`~repro.ocbe.ge.GeOCBE` for ``>=`` (bitwise, parameter ``l``),
* :class:`~repro.ocbe.le.LeOCBE` for ``<=`` (mirror of GE),

and derived ones (Section IV-C: "other OCBE protocols ... can be built on
EQ-OCBE, GE-OCBE and LE-OCBE"):

* ``>`` via ``GE(x0+1)``, ``<`` via ``LE(x0-1)``,
* ``!=`` via a two-envelope GT-or-LT disjunction.

Use :func:`~repro.ocbe.base.run_ocbe` for a one-call local execution, or
drive the sender/receiver sessions manually to model the network exchange.
"""

from repro.ocbe.base import OCBESetup, run_ocbe, sender_for, receiver_for
from repro.ocbe.eq import EqOCBEReceiver, EqOCBESender, EqEnvelope
from repro.ocbe.ge import (
    BitCommitMessage,
    BitwiseEnvelope,
    GeOCBEReceiver,
    GeOCBESender,
)
from repro.ocbe.le import LeOCBEReceiver, LeOCBESender
from repro.ocbe.derived import (
    GtOCBEReceiver,
    GtOCBESender,
    LtOCBEReceiver,
    LtOCBESender,
    NeCommitMessage,
    NeEnvelope,
    NeOCBEReceiver,
    NeOCBESender,
)
from repro.ocbe.serial import (
    decode_aux,
    decode_envelope,
    encode_aux,
    encode_envelope,
)
from repro.ocbe.predicates import (
    EqPredicate,
    GePredicate,
    GtPredicate,
    LePredicate,
    LtPredicate,
    NePredicate,
    Predicate,
    predicate_from_op,
)

__all__ = [
    "OCBESetup",
    "run_ocbe",
    "sender_for",
    "receiver_for",
    "EqOCBESender",
    "EqOCBEReceiver",
    "EqEnvelope",
    "GeOCBESender",
    "GeOCBEReceiver",
    "BitCommitMessage",
    "BitwiseEnvelope",
    "LeOCBESender",
    "LeOCBEReceiver",
    "GtOCBESender",
    "GtOCBEReceiver",
    "LtOCBESender",
    "LtOCBEReceiver",
    "NeOCBESender",
    "NeOCBEReceiver",
    "NeCommitMessage",
    "NeEnvelope",
    "encode_aux",
    "decode_aux",
    "encode_envelope",
    "decode_envelope",
    "Predicate",
    "EqPredicate",
    "GePredicate",
    "LePredicate",
    "GtPredicate",
    "LtPredicate",
    "NePredicate",
    "predicate_from_op",
]
