"""Shared OCBE infrastructure: setup, envelopes, dispatch, local driver.

An OCBE run involves three messages (after the trusted party distributed
the commitment): the receiver's (optional) auxiliary commitments, the
sender's envelope, and the receiver's local opening.  The sender/receiver
session classes in :mod:`repro.ocbe.eq` / :mod:`repro.ocbe.ge` /
:mod:`repro.ocbe.le` model those steps explicitly so the system layer can
put a real network between them; :func:`run_ocbe` wires them back-to-back
for tests and benchmarks.
"""

from __future__ import annotations

import abc
import random
import secrets
from dataclasses import dataclass, field
from typing import Optional, TYPE_CHECKING

from repro.crypto.hashes import HashFunction, default_hash
from repro.crypto.kdf import derive_key
from repro.crypto.pedersen import PedersenCommitment, PedersenParams
from repro.crypto.symmetric import SymmetricCipher, default_cipher
from repro.errors import InvalidParameterError, PredicateError
from repro.ocbe.predicates import (
    EqPredicate,
    GePredicate,
    GtPredicate,
    LePredicate,
    LtPredicate,
    NePredicate,
    Predicate,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    pass

__all__ = ["OCBESetup", "Envelope", "run_ocbe", "sender_for", "receiver_for"]


@dataclass(frozen=True)
class OCBESetup:
    """Public parameters shared by every OCBE session.

    ``pedersen`` are the trusted party's commitment parameters; ``key_len``
    is the paper's ``l'/8`` -- the symmetric key length in bytes used for
    the envelope body.
    """

    pedersen: PedersenParams
    hash_fn: HashFunction = field(default_factory=default_hash)
    cipher: SymmetricCipher = field(default_factory=default_cipher)
    key_len: int = 16

    def __post_init__(self) -> None:
        if self.key_len < 8:
            raise InvalidParameterError("key_len below 8 bytes is insecure")

    def envelope_key(self, sigma_bytes: bytes) -> bytes:
        """The paper's ``H(sigma)`` step: key bytes from a group secret."""
        return derive_key(
            sigma_bytes, self.key_len, info=b"repro/ocbe/envelope", h=self.hash_fn
        )

    def random_scalar(self, rng: Optional[random.Random]) -> int:
        """Uniform scalar in ``[1, p)`` from ``rng`` or the system CSPRNG."""
        p = self.pedersen.order
        if rng is not None:
            return rng.randrange(1, p)
        return secrets.randbelow(p - 1) + 1

    def random_field(self, rng: Optional[random.Random]) -> int:
        """Uniform scalar in ``[0, p)``."""
        p = self.pedersen.order
        if rng is not None:
            return rng.randrange(p)
        return secrets.randbelow(p)

    def random_bytes(self, n: int, rng: Optional[random.Random]) -> bytes:
        """``n`` uniform bytes from ``rng`` or the system CSPRNG."""
        if rng is not None:
            return bytes(rng.randrange(256) for _ in range(n))
        return secrets.token_bytes(n)


class Envelope(abc.ABC):
    """A sender->receiver OCBE payload."""

    @abc.abstractmethod
    def byte_size(self) -> int:
        """Wire size in bytes (for bandwidth accounting)."""


def sender_for(
    setup: OCBESetup, predicate: Predicate, rng: Optional[random.Random] = None
):
    """Instantiate the sender session matching ``predicate``."""
    from repro.ocbe.derived import GtOCBESender, LtOCBESender, NeOCBESender
    from repro.ocbe.eq import EqOCBESender
    from repro.ocbe.ge import GeOCBESender
    from repro.ocbe.le import LeOCBESender

    if isinstance(predicate, EqPredicate):
        return EqOCBESender(setup, predicate, rng)
    if isinstance(predicate, GtPredicate):
        return GtOCBESender(setup, predicate, rng)
    if isinstance(predicate, LtPredicate):
        return LtOCBESender(setup, predicate, rng)
    if isinstance(predicate, NePredicate):
        return NeOCBESender(setup, predicate, rng)
    if isinstance(predicate, GePredicate):
        return GeOCBESender(setup, predicate, rng)
    if isinstance(predicate, LePredicate):
        return LeOCBESender(setup, predicate, rng)
    raise PredicateError("no OCBE sender for %r" % predicate)


def receiver_for(
    setup: OCBESetup,
    predicate: Predicate,
    x: int,
    r: int,
    commitment: PedersenCommitment,
    rng: Optional[random.Random] = None,
):
    """Instantiate the receiver session matching ``predicate``."""
    from repro.ocbe.derived import GtOCBEReceiver, LtOCBEReceiver, NeOCBEReceiver
    from repro.ocbe.eq import EqOCBEReceiver
    from repro.ocbe.ge import GeOCBEReceiver
    from repro.ocbe.le import LeOCBEReceiver

    if isinstance(predicate, EqPredicate):
        return EqOCBEReceiver(setup, predicate, x, r, commitment, rng)
    if isinstance(predicate, GtPredicate):
        return GtOCBEReceiver(setup, predicate, x, r, commitment, rng)
    if isinstance(predicate, LtPredicate):
        return LtOCBEReceiver(setup, predicate, x, r, commitment, rng)
    if isinstance(predicate, NePredicate):
        return NeOCBEReceiver(setup, predicate, x, r, commitment, rng)
    if isinstance(predicate, GePredicate):
        return GeOCBEReceiver(setup, predicate, x, r, commitment, rng)
    if isinstance(predicate, LePredicate):
        return LeOCBEReceiver(setup, predicate, x, r, commitment, rng)
    raise PredicateError("no OCBE receiver for %r" % predicate)


def run_ocbe(
    setup: OCBESetup,
    predicate: Predicate,
    x: int,
    r: int,
    commitment: PedersenCommitment,
    message: bytes,
    rng: Optional[random.Random] = None,
) -> bytes:
    """Execute a complete OCBE exchange locally and return the receiver's
    decrypted message.

    Raises :class:`~repro.errors.DecryptionError` when the receiver's
    committed value does not satisfy ``predicate`` -- which is exactly the
    protocol's guarantee.
    """
    sender = sender_for(setup, predicate, rng)
    receiver = receiver_for(setup, predicate, x, r, commitment, rng)
    aux = receiver.commitment_message()
    envelope = sender.compose(commitment, aux, message)
    return receiver.open(envelope)
