"""Derived OCBE protocols: ``>``, ``<`` and ``!=`` (Section IV-C).

* ``GT_{x0}`` is ``GE_{x0+1}`` and ``LT_{x0}`` is ``LE_{x0-1}`` on the
  integer domain ``V``.
* ``NE_{x0}`` is an oblivious disjunction: the sender transmits the *same*
  message in a GT envelope and an LT envelope; a receiver with ``x > x0``
  opens the first, with ``x < x0`` the second, and with ``x == x0`` neither.
  The sender still learns nothing (both sub-protocols are oblivious and are
  always executed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.pedersen import PedersenCommitment
from repro.errors import DecryptionError, PredicateError
from repro.ocbe.base import Envelope, OCBESetup
from repro.ocbe.ge import BitCommitMessage, BitwiseEnvelope, GeOCBEReceiver, GeOCBESender
from repro.ocbe.le import LeOCBEReceiver, LeOCBESender
from repro.ocbe.predicates import (
    GtPredicate,
    LtPredicate,
    NePredicate,
)

__all__ = [
    "GtOCBESender",
    "GtOCBEReceiver",
    "LtOCBESender",
    "LtOCBEReceiver",
    "NeEnvelope",
    "NeOCBESender",
    "NeOCBEReceiver",
]


class GtOCBESender(GeOCBESender):
    """``>`` sender: GE-OCBE at threshold ``x0 + 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: GtPredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, GtPredicate):
            raise PredicateError("GtOCBESender requires a GtPredicate")
        super().__init__(setup, predicate.as_ge(), rng)


class GtOCBEReceiver(GeOCBEReceiver):
    """``>`` receiver: GE-OCBE at threshold ``x0 + 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: GtPredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, GtPredicate):
            raise PredicateError("GtOCBEReceiver requires a GtPredicate")
        super().__init__(setup, predicate.as_ge(), x, r, commitment, rng)


class LtOCBESender(LeOCBESender):
    """``<`` sender: LE-OCBE at threshold ``x0 - 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: LtPredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, LtPredicate):
            raise PredicateError("LtOCBESender requires a LtPredicate")
        super().__init__(setup, predicate.as_le(), rng)


class LtOCBEReceiver(LeOCBEReceiver):
    """``<`` receiver: LE-OCBE at threshold ``x0 - 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: LtPredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, LtPredicate):
            raise PredicateError("LtOCBEReceiver requires a LtPredicate")
        super().__init__(setup, predicate.as_le(), x, r, commitment, rng)


@dataclass(frozen=True)
class NeEnvelope(Envelope):
    """Both halves of the ``!=`` disjunction.

    At a domain boundary one half is unsatisfiable by *every* value (e.g.
    ``< 0`` when ``x0 = 0``) and is omitted -- the threshold is public, so
    skipping it reveals nothing about the receiver's value.
    """

    gt_envelope: Optional[BitwiseEnvelope]
    lt_envelope: Optional[BitwiseEnvelope]

    def byte_size(self) -> int:
        total = 0
        if self.gt_envelope is not None:
            total += self.gt_envelope.byte_size()
        if self.lt_envelope is not None:
            total += self.lt_envelope.byte_size()
        return total


@dataclass(frozen=True)
class NeCommitMessage:
    """Receiver commitments for the live halves of the disjunction."""

    gt_message: Optional[BitCommitMessage]
    lt_message: Optional[BitCommitMessage]

    def byte_size(self) -> int:
        total = 0
        if self.gt_message is not None:
            total += self.gt_message.byte_size()
        if self.lt_message is not None:
            total += self.lt_message.byte_size()
        return total


def _ne_halves(predicate: NePredicate) -> Tuple[bool, bool]:
    """Which halves of the disjunction are satisfiable in V."""
    has_gt = predicate.x0 + 1 < (1 << predicate.ell)
    has_lt = predicate.x0 > 0
    return has_gt, has_lt


class NeOCBESender:
    """``!=`` sender: same message in a GT and an LT envelope."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: NePredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, NePredicate):
            raise PredicateError("NeOCBESender requires a NePredicate")
        self.predicate = predicate
        has_gt, has_lt = _ne_halves(predicate)
        self._gt = (
            GtOCBESender(setup, GtPredicate(predicate.x0, predicate.ell), rng)
            if has_gt
            else None
        )
        self._lt = (
            LtOCBESender(setup, LtPredicate(predicate.x0, predicate.ell), rng)
            if has_lt
            else None
        )

    def compose(
        self,
        commitment: PedersenCommitment,
        aux: NeCommitMessage,
        message: bytes,
    ) -> NeEnvelope:
        """Build the envelopes for every live half (always all of them, to
        stay oblivious)."""
        return NeEnvelope(
            gt_envelope=(
                self._gt.compose(commitment, aux.gt_message, message)
                if self._gt is not None
                else None
            ),
            lt_envelope=(
                self._lt.compose(commitment, aux.lt_message, message)
                if self._lt is not None
                else None
            ),
        )


class NeOCBEReceiver:
    """``!=`` receiver: opens whichever half its value satisfies."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: NePredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, NePredicate):
            raise PredicateError("NeOCBEReceiver requires a NePredicate")
        self.predicate = predicate
        has_gt, has_lt = _ne_halves(predicate)
        self._gt = (
            GtOCBEReceiver(
                setup, GtPredicate(predicate.x0, predicate.ell), x, r, commitment, rng
            )
            if has_gt
            else None
        )
        self._lt = (
            LtOCBEReceiver(
                setup, LtPredicate(predicate.x0, predicate.ell), x, r, commitment, rng
            )
            if has_lt
            else None
        )

    def commitment_message(self) -> NeCommitMessage:
        """Commitments for the live halves (run regardless of the value)."""
        return NeCommitMessage(
            gt_message=(
                self._gt.commitment_message() if self._gt is not None else None
            ),
            lt_message=(
                self._lt.commitment_message() if self._lt is not None else None
            ),
        )

    def open(self, envelope: NeEnvelope) -> bytes:
        """Try every live half; succeed iff ``x != x0``."""
        if self._gt is not None and envelope.gt_envelope is not None:
            try:
                return self._gt.open(envelope.gt_envelope)
            except DecryptionError:
                pass
        if self._lt is not None and envelope.lt_envelope is not None:
            return self._lt.open(envelope.lt_envelope)
        raise DecryptionError("no disjunction half opened")
