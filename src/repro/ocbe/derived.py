"""Derived OCBE protocols: ``>``, ``<`` and ``!=`` (Section IV-C).

* ``GT_{x0}`` is ``GE_{x0+1}`` and ``LT_{x0}`` is ``LE_{x0-1}`` on the
  integer domain ``V``.
* ``NE_{x0}`` is an oblivious disjunction: the sender transmits the *same*
  message in a GT envelope and an LT envelope; a receiver with ``x > x0``
  opens the first, with ``x < x0`` the second, and with ``x == x0`` neither.
  The sender still learns nothing (both sub-protocols are oblivious and are
  always executed).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.pedersen import PedersenCommitment
from repro.errors import DecryptionError, PredicateError, SerializationError
from repro.groups.base import CyclicGroup
from repro.ocbe.base import Envelope, OCBESetup
from repro.ocbe.ge import BitCommitMessage, BitwiseEnvelope, GeOCBEReceiver, GeOCBESender
from repro.ocbe.le import LeOCBEReceiver, LeOCBESender
from repro.ocbe.predicates import (
    GtPredicate,
    LtPredicate,
    NePredicate,
)
from repro.wire.codec import Cursor, pack_u8

__all__ = [
    "GtOCBESender",
    "GtOCBEReceiver",
    "LtOCBESender",
    "LtOCBEReceiver",
    "NeCommitMessage",
    "NeEnvelope",
    "NeOCBESender",
    "NeOCBEReceiver",
]


def _pack_halves(gt_part, lt_part) -> bytes:
    """Flags byte + the live halves' encodings (each self-delimiting)."""
    flags = (1 if gt_part is not None else 0) | (2 if lt_part is not None else 0)
    out = bytearray(pack_u8(flags))
    if gt_part is not None:
        out += gt_part.to_bytes()
    if lt_part is not None:
        out += lt_part.to_bytes()
    return bytes(out)


def _read_halves(cursor: Cursor, group: CyclicGroup, part_cls):
    flags = cursor.read_u8()
    if flags > 3:
        raise SerializationError("invalid disjunction flags byte %#x" % flags)
    gt_part = part_cls.read_from(cursor, group) if flags & 1 else None
    lt_part = part_cls.read_from(cursor, group) if flags & 2 else None
    return gt_part, lt_part


class GtOCBESender(GeOCBESender):
    """``>`` sender: GE-OCBE at threshold ``x0 + 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: GtPredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, GtPredicate):
            raise PredicateError("GtOCBESender requires a GtPredicate")
        super().__init__(setup, predicate.as_ge(), rng)


class GtOCBEReceiver(GeOCBEReceiver):
    """``>`` receiver: GE-OCBE at threshold ``x0 + 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: GtPredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, GtPredicate):
            raise PredicateError("GtOCBEReceiver requires a GtPredicate")
        super().__init__(setup, predicate.as_ge(), x, r, commitment, rng)


class LtOCBESender(LeOCBESender):
    """``<`` sender: LE-OCBE at threshold ``x0 - 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: LtPredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, LtPredicate):
            raise PredicateError("LtOCBESender requires a LtPredicate")
        super().__init__(setup, predicate.as_le(), rng)


class LtOCBEReceiver(LeOCBEReceiver):
    """``<`` receiver: LE-OCBE at threshold ``x0 - 1``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: LtPredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, LtPredicate):
            raise PredicateError("LtOCBEReceiver requires a LtPredicate")
        super().__init__(setup, predicate.as_le(), x, r, commitment, rng)


@dataclass(frozen=True)
class NeEnvelope(Envelope):
    """Both halves of the ``!=`` disjunction.

    At a domain boundary one half is unsatisfiable by *every* value (e.g.
    ``< 0`` when ``x0 = 0``) and is omitted -- the threshold is public, so
    skipping it reveals nothing about the receiver's value.
    """

    gt_envelope: Optional[BitwiseEnvelope]
    lt_envelope: Optional[BitwiseEnvelope]

    def to_bytes(self) -> bytes:
        return _pack_halves(self.gt_envelope, self.lt_envelope)

    @classmethod
    def from_bytes(cls, data: bytes, group: CyclicGroup) -> "NeEnvelope":
        cursor = Cursor(data)
        envelope = cls.read_from(cursor, group)
        cursor.expect_end()
        return envelope

    @classmethod
    def read_from(cls, cursor: Cursor, group: CyclicGroup) -> "NeEnvelope":
        gt_envelope, lt_envelope = _read_halves(cursor, group, BitwiseEnvelope)
        return cls(gt_envelope=gt_envelope, lt_envelope=lt_envelope)

    def byte_size(self) -> int:
        """Exact wire size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())


@dataclass(frozen=True)
class NeCommitMessage:
    """Receiver commitments for the live halves of the disjunction."""

    gt_message: Optional[BitCommitMessage]
    lt_message: Optional[BitCommitMessage]

    def to_bytes(self) -> bytes:
        return _pack_halves(self.gt_message, self.lt_message)

    @classmethod
    def from_bytes(cls, data: bytes, group: CyclicGroup) -> "NeCommitMessage":
        cursor = Cursor(data)
        message = cls.read_from(cursor, group)
        cursor.expect_end()
        return message

    @classmethod
    def read_from(cls, cursor: Cursor, group: CyclicGroup) -> "NeCommitMessage":
        gt_message, lt_message = _read_halves(cursor, group, BitCommitMessage)
        return cls(gt_message=gt_message, lt_message=lt_message)

    def byte_size(self) -> int:
        """Exact wire size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())


def _ne_halves(predicate: NePredicate) -> Tuple[bool, bool]:
    """Which halves of the disjunction are satisfiable in V."""
    has_gt = predicate.x0 + 1 < (1 << predicate.ell)
    has_lt = predicate.x0 > 0
    return has_gt, has_lt


class NeOCBESender:
    """``!=`` sender: same message in a GT and an LT envelope."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: NePredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, NePredicate):
            raise PredicateError("NeOCBESender requires a NePredicate")
        self.predicate = predicate
        has_gt, has_lt = _ne_halves(predicate)
        self._gt = (
            GtOCBESender(setup, GtPredicate(predicate.x0, predicate.ell), rng)
            if has_gt
            else None
        )
        self._lt = (
            LtOCBESender(setup, LtPredicate(predicate.x0, predicate.ell), rng)
            if has_lt
            else None
        )

    def draw_randomness(self):
        """Draw both halves' randomness in the serial compose order."""
        return (
            self._gt.draw_randomness() if self._gt is not None else None,
            self._lt.draw_randomness() if self._lt is not None else None,
        )

    def compose(
        self,
        commitment: PedersenCommitment,
        aux: NeCommitMessage,
        message: bytes,
    ) -> NeEnvelope:
        """Build the envelopes for every live half (always all of them, to
        stay oblivious)."""
        return self.compose_with(commitment, aux, message, self.draw_randomness())

    def compose_with(
        self,
        commitment: PedersenCommitment,
        aux: NeCommitMessage,
        message: bytes,
        drawn,
    ) -> NeEnvelope:
        """Deterministic disjunction build from pre-drawn randomness."""
        gt_drawn, lt_drawn = drawn
        return NeEnvelope(
            gt_envelope=(
                self._gt.compose_with(commitment, aux.gt_message, message, gt_drawn)
                if self._gt is not None
                else None
            ),
            lt_envelope=(
                self._lt.compose_with(commitment, aux.lt_message, message, lt_drawn)
                if self._lt is not None
                else None
            ),
        )


class NeOCBEReceiver:
    """``!=`` receiver: opens whichever half its value satisfies."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: NePredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, NePredicate):
            raise PredicateError("NeOCBEReceiver requires a NePredicate")
        self.predicate = predicate
        has_gt, has_lt = _ne_halves(predicate)
        self._gt = (
            GtOCBEReceiver(
                setup, GtPredicate(predicate.x0, predicate.ell), x, r, commitment, rng
            )
            if has_gt
            else None
        )
        self._lt = (
            LtOCBEReceiver(
                setup, LtPredicate(predicate.x0, predicate.ell), x, r, commitment, rng
            )
            if has_lt
            else None
        )

    def commitment_message(self) -> NeCommitMessage:
        """Commitments for the live halves (run regardless of the value)."""
        return NeCommitMessage(
            gt_message=(
                self._gt.commitment_message() if self._gt is not None else None
            ),
            lt_message=(
                self._lt.commitment_message() if self._lt is not None else None
            ),
        )

    def open(self, envelope: NeEnvelope) -> bytes:
        """Try every live half; succeed iff ``x != x0``."""
        if self._gt is not None and envelope.gt_envelope is not None:
            try:
                return self._gt.open(envelope.gt_envelope)
            except DecryptionError:
                pass
        if self._lt is not None and envelope.lt_envelope is not None:
            return self._lt.open(envelope.lt_envelope)
        raise DecryptionError("no disjunction half opened")
