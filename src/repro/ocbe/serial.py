"""Tagged serialization of OCBE protocol messages.

The registration wire messages (:mod:`repro.wire.messages`) carry "some
auxiliary commitment message" and "some envelope" without knowing which
OCBE variant produced them.  This module assigns each concrete class a
one-byte tag and provides the encode/decode dispatch:

=====  =======================  =====================================
tag    auxiliary message        envelope
=====  =======================  =====================================
0      ``None`` (EQ-OCBE)       --
1      ``BitCommitMessage``     ``BitwiseEnvelope`` (GE/LE/GT/LT)
2      ``NeCommitMessage``      ``NeEnvelope``
3      --                       ``EqEnvelope``
=====  =======================  =====================================

Decoding needs the commitment group (to validate element membership), so
both ``decode_*`` functions take the :class:`~repro.groups.base.CyclicGroup`
the system runs over.
"""

from __future__ import annotations

from typing import Optional, Union

from repro.errors import SerializationError
from repro.groups.base import CyclicGroup
from repro.ocbe.derived import NeCommitMessage, NeEnvelope
from repro.ocbe.eq import EqEnvelope
from repro.ocbe.ge import BitCommitMessage, BitwiseEnvelope
from repro.wire.codec import Cursor, pack_u8

__all__ = [
    "AuxMessage",
    "OcbeEnvelope",
    "encode_aux",
    "decode_aux",
    "encode_envelope",
    "decode_envelope",
]

#: Everything a receiver's first message can be.
AuxMessage = Optional[Union[BitCommitMessage, NeCommitMessage]]
#: Everything a sender's envelope can be.
OcbeEnvelope = Union[EqEnvelope, BitwiseEnvelope, NeEnvelope]

_TAG_NONE = 0
_TAG_BITWISE = 1
_TAG_NE = 2
_TAG_EQ = 3


def encode_aux(aux: AuxMessage) -> bytes:
    """Serialize a receiver commitment message (or its absence, for EQ)."""
    if aux is None:
        return pack_u8(_TAG_NONE)
    if isinstance(aux, BitCommitMessage):
        return pack_u8(_TAG_BITWISE) + aux.to_bytes()
    if isinstance(aux, NeCommitMessage):
        return pack_u8(_TAG_NE) + aux.to_bytes()
    raise SerializationError("unknown auxiliary message type %r" % type(aux).__name__)


def decode_aux(data: bytes, group: CyclicGroup) -> AuxMessage:
    """Inverse of :func:`encode_aux`."""
    cursor = Cursor(data)
    aux = read_aux(cursor, group)
    cursor.expect_end()
    return aux


def read_aux(cursor: Cursor, group: CyclicGroup) -> AuxMessage:
    tag = cursor.read_u8()
    if tag == _TAG_NONE:
        return None
    if tag == _TAG_BITWISE:
        return BitCommitMessage.read_from(cursor, group)
    if tag == _TAG_NE:
        return NeCommitMessage.read_from(cursor, group)
    raise SerializationError("unknown auxiliary message tag %d" % tag)


def encode_envelope(envelope: OcbeEnvelope) -> bytes:
    """Serialize any OCBE envelope with its variant tag."""
    if isinstance(envelope, EqEnvelope):
        return pack_u8(_TAG_EQ) + envelope.to_bytes()
    if isinstance(envelope, BitwiseEnvelope):
        return pack_u8(_TAG_BITWISE) + envelope.to_bytes()
    if isinstance(envelope, NeEnvelope):
        return pack_u8(_TAG_NE) + envelope.to_bytes()
    raise SerializationError("unknown envelope type %r" % type(envelope).__name__)


def decode_envelope(data: bytes, group: CyclicGroup) -> OcbeEnvelope:
    """Inverse of :func:`encode_envelope`."""
    cursor = Cursor(data)
    envelope = read_envelope(cursor, group)
    cursor.expect_end()
    return envelope


def read_envelope(cursor: Cursor, group: CyclicGroup) -> OcbeEnvelope:
    tag = cursor.read_u8()
    if tag == _TAG_EQ:
        return EqEnvelope.read_from(cursor, group)
    if tag == _TAG_BITWISE:
        return BitwiseEnvelope.read_from(cursor, group)
    if tag == _TAG_NE:
        return NeEnvelope.read_from(cursor, group)
    raise SerializationError("unknown envelope tag %d" % tag)
