"""EQ-OCBE: oblivious envelopes for equality predicates (Section IV-C).

Protocol (after the trusted party gave R the opening ``(x, r)`` of
``c = g^x h^r`` and S the commitment ``c``):

* S picks ``y`` uniformly from ``F_p^*``, computes ``sigma = (c g^{-x0})^y``
  and ``eta = h^y``, and sends ``(eta, C = E_{H(sigma)}[M])``.
* R computes ``sigma' = eta^r`` and decrypts with ``H(sigma')``.

If ``x == x0`` then ``c g^{-x0} = h^r``, hence ``sigma = h^{r y} = eta^r``
and R recovers M; otherwise ``sigma`` is a CDH-hidden random element and R
learns nothing.  S never learns which case occurred.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional

from repro.crypto.pedersen import PedersenCommitment
from repro.crypto.symmetric import NONCE_LEN
from repro.errors import ProtocolStateError
from repro.groups.base import CyclicGroup, GroupElement
from repro.ocbe.base import Envelope, OCBESetup
from repro.ocbe.predicates import EqPredicate
from repro.wire.codec import Cursor, pack_bytes, pack_element, read_element

__all__ = ["EqEnvelope", "EqOCBESender", "EqOCBEReceiver"]


@dataclass(frozen=True)
class EqEnvelope(Envelope):
    """The pair ``(eta, C)`` sent by an EQ-OCBE sender."""

    eta: GroupElement
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        """Canonical wire encoding: ``eta`` then the ciphertext."""
        return pack_element(self.eta) + pack_bytes(self.ciphertext)

    @classmethod
    def from_bytes(cls, data: bytes, group: CyclicGroup) -> "EqEnvelope":
        """Decode within ``group`` (which validates element membership)."""
        cursor = Cursor(data)
        envelope = cls.read_from(cursor, group)
        cursor.expect_end()
        return envelope

    @classmethod
    def read_from(cls, cursor: Cursor, group: CyclicGroup) -> "EqEnvelope":
        eta = read_element(cursor, group)
        ciphertext = cursor.read_bytes()
        return cls(eta=eta, ciphertext=ciphertext)

    def byte_size(self) -> int:
        """Exact wire size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())


class EqOCBESender:
    """Sender (the Pub in the paper's registration phase)."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: EqPredicate,
        rng: Optional[random.Random] = None,
    ):
        self.setup = setup
        self.predicate = predicate
        self._rng = rng

    def draw_randomness(self):
        """Draw this envelope's random choices from the sender's RNG.

        Splitting the draw from the (deterministic) arithmetic lets the
        registration path consume the RNG in delivery order while the
        arithmetic runs in a worker pool -- parallel builds then produce
        frames byte-identical to the serial path.  The cipher nonce is
        part of the draw for the same reason: ``compose_with`` must be a
        pure function of ``drawn``.
        """
        y = self.setup.random_scalar(self._rng)
        nonce = self.setup.random_bytes(NONCE_LEN, self._rng)
        return (y, nonce)

    def compose(
        self,
        commitment: PedersenCommitment,
        aux: None,
        message: bytes,
    ) -> EqEnvelope:
        """Build the envelope for ``commitment`` (``aux`` unused for EQ)."""
        return self.compose_with(commitment, aux, message, self.draw_randomness())

    def compose_with(
        self,
        commitment: PedersenCommitment,
        aux: None,
        message: bytes,
        drawn,
    ) -> EqEnvelope:
        """Deterministic envelope build from pre-drawn randomness."""
        if aux is not None:
            raise ProtocolStateError("EQ-OCBE takes no auxiliary commitments")
        params = self.setup.pedersen
        y, nonce = drawn
        base = commitment.value * params.pow_g(-self.predicate.x0 % params.order)
        sigma = base ** y
        eta = params.pow_h(y)
        key = self.setup.envelope_key(sigma.to_bytes())
        return EqEnvelope(
            eta=eta, ciphertext=self.setup.cipher.encrypt(key, message, nonce=nonce)
        )


class EqOCBEReceiver:
    """Receiver (the Sub); holds the opening ``(x, r)``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: EqPredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        self.setup = setup
        self.predicate = predicate
        self.x = x % setup.pedersen.order
        self.r = r % setup.pedersen.order
        self.commitment = commitment

    def commitment_message(self) -> None:
        """EQ-OCBE needs no extra commitments (returns ``None``)."""
        return None

    def open(self, envelope: EqEnvelope) -> bytes:
        """Derive ``sigma' = eta^r`` and decrypt.

        Raises :class:`~repro.errors.DecryptionError` when the committed
        value does not equal the predicate threshold.
        """
        sigma = envelope.eta ** self.r
        key = self.setup.envelope_key(sigma.to_bytes())
        return self.setup.cipher.decrypt(key, envelope.ciphertext)
