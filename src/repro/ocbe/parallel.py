"""Opt-in multiprocessing pool for the OCBE registration hot path.

Per-subscriber envelope builds (and the IdMgr's token commitments) are
independent, CPU-bound, and free of journal writes -- the classic shape
for a worker pool.  The split that makes this safe is in the protocol
layer: senders *draw* their randomness in the parent, in delivery
order (:meth:`draw_randomness`), and ship only the deterministic
arithmetic (:meth:`compose_with`) to a worker.  Replies are emitted in
delivery order regardless of completion order, so ``--ocbe-workers N``
is frame-identical to the serial path for every ``N``.

Topology and lifecycle:

* ``spawn`` start method -- the serving parent may hold live sockets
  and threads, which ``fork`` would duplicate into the children.
* Lazy start: the first submitted job pays the pool startup, processes
  that never register never fork anything.
* Each worker's initializer installs the (public) :class:`OCBESetup`
  once and force-builds the fixed-base tables, so jobs carry only
  per-request operands.
* Any pool failure (a killed worker, a failed spawn) permanently
  degrades this pool to serial with a single
  :class:`OcbeWorkerPoolWarning`; the registration session then
  recomputes the affected envelopes inline from the already-drawn
  randomness.  A crashed pool can therefore never wedge a session or
  change its output.

Workers never see secrets beyond what the parent already sends on the
wire (commitments, public predicates, the CSS payload being enveloped),
and they never touch the journal: all durability writes stay in the
parent, so a SIGKILL with a live pool leaves the store exactly as
recoverable as the serial path would.
"""

from __future__ import annotations

import multiprocessing
import warnings
from concurrent.futures import Future, ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

__all__ = ["CommitPoolSetup", "OcbeWorkerPool", "OcbeWorkerPoolWarning"]


class OcbeWorkerPoolWarning(UserWarning):
    """The OCBE worker pool failed; registration degraded to serial."""


# Installed once per worker process by the pool initializer.
_WORKER_SETUP = None


def _init_worker(setup) -> None:
    global _WORKER_SETUP
    _WORKER_SETUP = setup
    # Pay the fixed-base table build once at startup, not on job one.
    setup.pedersen.precompute_now()


def _compose_job(predicate, commitment, aux, message, drawn):
    from repro.ocbe.base import sender_for

    sender = sender_for(_WORKER_SETUP, predicate, None)
    return sender.compose_with(commitment, aux, message, drawn)


def _commit_job(x, r):
    return _WORKER_SETUP.pedersen.commit(x, r)[0]


class CommitPoolSetup:
    """Minimal picklable setup for pools that only run commit jobs.

    The IdMgr's pool needs nothing beyond the public Pedersen parameters
    -- shipping the whole IdentityManager (keys, trusted IdPs, journal)
    to workers would be both wasteful and wrong.
    """

    __slots__ = ("pedersen",)

    def __init__(self, pedersen):
        self.pedersen = pedersen


class OcbeWorkerPool:
    """A lazily started, crash-degrading pool of OCBE workers.

    ``setup`` is an :class:`~repro.ocbe.base.OCBESetup` (for envelope
    pools) or a :class:`CommitPoolSetup` (for commitment-only pools);
    either way it carries only public parameters.
    """

    def __init__(self, setup, workers: int):
        if workers < 1:
            raise ValueError("workers must be >= 1, got %d" % workers)
        self._setup = setup
        self.workers = workers
        self._executor: Optional[ProcessPoolExecutor] = None
        self.broken = False

    # -- lifecycle -----------------------------------------------------------

    def _ensure(self) -> Optional[ProcessPoolExecutor]:
        if self.broken:
            return None
        if self._executor is None:
            try:
                self._executor = ProcessPoolExecutor(
                    max_workers=self.workers,
                    mp_context=multiprocessing.get_context("spawn"),
                    initializer=_init_worker,
                    initargs=(self._setup,),
                )
            except Exception as exc:
                self._degrade("worker pool failed to start: %s" % exc)
                return None
        return self._executor

    def _degrade(self, reason: str) -> None:
        """Permanently fall back to serial (warn once, drop the pool)."""
        if not self.broken:
            self.broken = True
            warnings.warn(OcbeWorkerPoolWarning(reason), stacklevel=3)
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    def close(self) -> None:
        """Tear the pool down (idempotent; safe on never-started pools)."""
        executor, self._executor = self._executor, None
        if executor is not None:
            executor.shutdown(wait=False, cancel_futures=True)

    # -- job submission ------------------------------------------------------

    def submit_compose(
        self, predicate, commitment, aux, message: bytes, drawn
    ) -> Optional[Future]:
        """Queue one envelope build; ``None`` means build it serially."""
        return self._submit(_compose_job, predicate, commitment, aux, message, drawn)

    def submit_commit(self, x: int, r: int) -> Optional[Future]:
        """Queue one Pedersen commitment ``g^x h^r``."""
        return self._submit(_commit_job, x, r)

    def _submit(self, fn, *operands) -> Optional[Future]:
        executor = self._ensure()
        if executor is None:
            return None
        try:
            return executor.submit(fn, *operands)
        except Exception as exc:  # RuntimeError after shutdown, broken pool
            self._degrade("worker pool rejected a job: %s" % exc)
            return None

    def result(self, future: Optional[Future]):
        """Resolve a future; ``None`` means recompute serially.

        Protocol errors raised by the job (e.g. bad bit commitments) are
        re-raised here exactly as the serial path would raise them; only
        *pool* failures degrade.
        """
        if future is None:
            return None
        try:
            return future.result()
        except BrokenProcessPool as exc:
            self._degrade("worker pool crashed mid-wave: %s" % exc)
            return None
