"""Comparison predicates over committed attribute values.

A predicate is the sender's side of an attribute condition: ``EQ_{x0}``,
``GE_{x0}`` and friends (Definitions in Section IV-C).  Bit-length-bounded
predicates (everything except ``=``/``!=``-on-equality) carry the system
parameter ``l`` which upper-bounds attribute values: ``V = [0, 2**l)`` with
``2**(l+1) < p`` required by GE-OCBE.
"""

from __future__ import annotations

import abc
from dataclasses import dataclass

from repro.errors import InvalidParameterError, PredicateError

__all__ = [
    "Predicate",
    "EqPredicate",
    "NePredicate",
    "GePredicate",
    "LePredicate",
    "GtPredicate",
    "LtPredicate",
    "predicate_from_op",
    "DEFAULT_BIT_LENGTH",
]

#: Default bound on attribute bit length (the paper's experiments use 5..40;
#: 32 comfortably covers ages, levels, years-of-service, salaries...).
DEFAULT_BIT_LENGTH = 32


class Predicate(abc.ABC):
    """A unary predicate over non-negative integer attribute values."""

    op: str = "?"

    @abc.abstractmethod
    def evaluate(self, x: int) -> bool:
        """Truth value of the predicate at ``x``."""

    @abc.abstractmethod
    def describe(self) -> str:
        """Human-readable form, e.g. ``">= 59"``."""

    def __repr__(self) -> str:
        return "%s(%s)" % (type(self).__name__, self.describe())


@dataclass(frozen=True, repr=False)
class EqPredicate(Predicate):
    """``EQ_{x0}(x) := x == x0`` -- handled by EQ-OCBE."""

    x0: int
    op = "="

    def evaluate(self, x: int) -> bool:
        return x == self.x0

    def describe(self) -> str:
        return "= %d" % self.x0


class _BoundedPredicate(Predicate):
    """Shared validation for bit-length-bounded predicates."""

    def __init__(self, x0: int, ell: int = DEFAULT_BIT_LENGTH):
        if ell < 1:
            raise InvalidParameterError("bit length l must be >= 1")
        if not 0 <= x0 < (1 << ell):
            raise InvalidParameterError(
                "threshold %d outside V = [0, 2^%d)" % (x0, ell)
            )
        self.x0 = x0
        self.ell = ell

    def check_domain(self, x: int) -> None:
        """Raise when ``x`` lies outside the value domain ``V``."""
        if not 0 <= x < (1 << self.ell):
            raise PredicateError("value %d outside V = [0, 2^%d)" % (x, self.ell))

    def __eq__(self, other: object) -> bool:
        return (
            type(other) is type(self)
            and other.x0 == self.x0          # type: ignore[attr-defined]
            and other.ell == self.ell        # type: ignore[attr-defined]
        )

    def __hash__(self) -> int:
        return hash((type(self).__name__, self.x0, self.ell))


class GePredicate(_BoundedPredicate):
    """``GE_{x0}(x) := x >= x0`` -- handled by GE-OCBE."""

    op = ">="

    def evaluate(self, x: int) -> bool:
        return x >= self.x0

    def describe(self) -> str:
        return ">= %d (l=%d)" % (self.x0, self.ell)


class LePredicate(_BoundedPredicate):
    """``LE_{x0}(x) := x <= x0`` -- handled by LE-OCBE."""

    op = "<="

    def evaluate(self, x: int) -> bool:
        return x <= self.x0

    def describe(self) -> str:
        return "<= %d (l=%d)" % (self.x0, self.ell)


class GtPredicate(_BoundedPredicate):
    """``x > x0``, realised as ``GE_{x0+1}``."""

    op = ">"

    def evaluate(self, x: int) -> bool:
        return x > self.x0

    def describe(self) -> str:
        return "> %d (l=%d)" % (self.x0, self.ell)

    def as_ge(self) -> GePredicate:
        """The equivalent GE predicate (may push the threshold to 2^l)."""
        if self.x0 + 1 >= (1 << self.ell):
            raise PredicateError(
                "> %d is unsatisfiable in V = [0, 2^%d)" % (self.x0, self.ell)
            )
        return GePredicate(self.x0 + 1, self.ell)


class LtPredicate(_BoundedPredicate):
    """``x < x0``, realised as ``LE_{x0-1}``."""

    op = "<"

    def evaluate(self, x: int) -> bool:
        return x < self.x0

    def describe(self) -> str:
        return "< %d (l=%d)" % (self.x0, self.ell)

    def as_le(self) -> LePredicate:
        """The equivalent LE predicate."""
        if self.x0 == 0:
            raise PredicateError("< 0 is unsatisfiable in V")
        return LePredicate(self.x0 - 1, self.ell)


class NePredicate(_BoundedPredicate):
    """``x != x0``, realised as the disjunction ``GT(x0) or LT(x0)``."""

    op = "!="

    def evaluate(self, x: int) -> bool:
        return x != self.x0

    def describe(self) -> str:
        return "!= %d (l=%d)" % (self.x0, self.ell)


_OPS = {
    "=": lambda x0, ell: EqPredicate(x0),
    "==": lambda x0, ell: EqPredicate(x0),
    "!=": NePredicate,
    ">=": GePredicate,
    "<=": LePredicate,
    ">": GtPredicate,
    "<": LtPredicate,
}


def predicate_from_op(op: str, x0: int, ell: int = DEFAULT_BIT_LENGTH) -> Predicate:
    """Build the predicate for a comparison operator string."""
    if op not in _OPS:
        raise PredicateError(
            "unsupported operator %r (supported: %s)" % (op, ", ".join(sorted(_OPS)))
        )
    return _OPS[op](x0, ell)
