"""GE-OCBE: oblivious envelopes for ``>=`` predicates (Section IV-C).

The bitwise protocol for values in ``V = [0, 2^l)`` with ``2^l < p/2``:

* R writes ``d = (x - x0) mod p``.  If the predicate holds, ``d`` fits in
  ``l`` bits and R commits to its bits ``d_i`` honestly; otherwise R picks
  random bits ``d_1..d_{l-1}`` and lets ``d_0 = d - sum 2^i d_i (mod p)``
  absorb the (non-bit) remainder.  The blinding exponents satisfy
  ``r = sum 2^i r_i`` so S can check ``c g^{-x0} = prod c_i^{2^i}``.
* S picks random strings ``k_i``, encrypts M under ``k = H(k_0||..||k_{l-1})``
  and for each bit position publishes both "openings"
  ``C_i^j = H((c_i g^{-j})^y) xor k_i`` for ``j in {0,1}`` plus ``eta = h^y``.
* R recovers ``k_i = H(eta^{r_i}) xor C_i^{d_i}`` -- possible at position 0
  only when ``d_0`` really is a bit, i.e. only when the predicate holds.

LE-OCBE (:mod:`repro.ocbe.le`) reuses this machinery mirrored around
``d = x0 - x``.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.pedersen import PedersenCommitment
from repro.crypto.symmetric import NONCE_LEN
from repro.errors import PredicateError, ProtocolStateError
from repro.groups.base import CyclicGroup, GroupElement
from repro.groups.precompute import FixedBaseTable
from repro.ocbe.base import Envelope, OCBESetup
from repro.ocbe.predicates import GePredicate
from repro.wire.codec import (
    Cursor,
    pack_bytes,
    pack_element,
    pack_u16,
    read_element,
)

__all__ = [
    "BitCommitMessage",
    "BitwiseEnvelope",
    "GeOCBESender",
    "GeOCBEReceiver",
]


@dataclass(frozen=True)
class BitCommitMessage:
    """The receiver's first message: one commitment per bit position."""

    commitments: Tuple[PedersenCommitment, ...]

    def to_bytes(self) -> bytes:
        """Canonical wire encoding: count, then each ``c_i`` in order."""
        out = bytearray(pack_u16(len(self.commitments)))
        for commitment in self.commitments:
            out += pack_element(commitment.value)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, group: CyclicGroup) -> "BitCommitMessage":
        cursor = Cursor(data)
        message = cls.read_from(cursor, group)
        cursor.expect_end()
        return message

    @classmethod
    def read_from(cls, cursor: Cursor, group: CyclicGroup) -> "BitCommitMessage":
        count = cursor.read_u16()
        commitments = tuple(
            PedersenCommitment(read_element(cursor, group)) for _ in range(count)
        )
        return cls(commitments=commitments)

    def byte_size(self) -> int:
        """Exact wire size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())


@dataclass(frozen=True)
class BitwiseEnvelope(Envelope):
    """The sender's message: ``eta``, the ``C_i^j`` table, and ``C``."""

    eta: GroupElement
    bit_ciphers: Tuple[Tuple[bytes, bytes], ...]  # (C_i^0, C_i^1) per position
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        out = bytearray(pack_element(self.eta))
        out += pack_u16(len(self.bit_ciphers))
        for c0, c1 in self.bit_ciphers:
            out += pack_bytes(c0)
            out += pack_bytes(c1)
        out += pack_bytes(self.ciphertext)
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes, group: CyclicGroup) -> "BitwiseEnvelope":
        cursor = Cursor(data)
        envelope = cls.read_from(cursor, group)
        cursor.expect_end()
        return envelope

    @classmethod
    def read_from(cls, cursor: Cursor, group: CyclicGroup) -> "BitwiseEnvelope":
        eta = read_element(cursor, group)
        count = cursor.read_u16()
        bit_ciphers = tuple(
            (cursor.read_bytes(), cursor.read_bytes()) for _ in range(count)
        )
        ciphertext = cursor.read_bytes()
        return cls(eta=eta, bit_ciphers=bit_ciphers, ciphertext=ciphertext)

    def byte_size(self) -> int:
        """Exact wire size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())


class _BitwiseSenderBase:
    """Common sender logic for GE- and LE-OCBE (direction differs)."""

    def __init__(self, setup: OCBESetup, predicate, rng: Optional[random.Random]):
        self.setup = setup
        self.predicate = predicate
        self._rng = rng
        p = setup.pedersen.order
        if (1 << (predicate.ell + 1)) >= p:
            raise PredicateError(
                "bit length l=%d too large for group order (need 2^(l+1) < p)"
                % predicate.ell
            )

    def _check_target(self, commitment: PedersenCommitment) -> GroupElement:
        """The element that ``prod c_i^{2^i}`` must equal (direction-specific)."""
        raise NotImplementedError

    def _random_bytes(self, n: int) -> bytes:
        if self._rng is not None:
            return bytes(self._rng.randrange(256) for _ in range(n))
        return secrets.token_bytes(n)

    def draw_randomness(self):
        """Draw ``y`` and the per-bit key shares from the sender's RNG.

        Draw order is ``y``, then the shares, then the cipher nonce; the
        nonce is drawn here rather than inside ``encrypt`` so that
        ``compose_with`` is a pure function of ``drawn``.  The split lets
        the registration path draw in delivery order and run the
        arithmetic in a worker pool without changing a single frame.
        """
        y = self.setup.random_scalar(self._rng)
        digest_size = self.setup.hash_fn.digest_size
        key_shares = tuple(
            self._random_bytes(digest_size) for _ in range(self.predicate.ell)
        )
        nonce = self._random_bytes(NONCE_LEN)
        return (y, key_shares, nonce)

    def compose(
        self,
        commitment: PedersenCommitment,
        aux: BitCommitMessage,
        message: bytes,
    ) -> BitwiseEnvelope:
        """Verify the bit commitments and build the double-opening table."""
        return self.compose_with(commitment, aux, message, self.draw_randomness())

    def compose_with(
        self,
        commitment: PedersenCommitment,
        aux: BitCommitMessage,
        message: bytes,
        drawn,
    ) -> BitwiseEnvelope:
        """Deterministic envelope build from pre-drawn randomness."""
        if aux is None or len(aux.commitments) != self.predicate.ell:
            raise ProtocolStateError(
                "expected %d bit commitments" % self.predicate.ell
            )
        params = self.setup.pedersen
        hash_fn = self.setup.hash_fn

        # Check c * g^{-x0} (or mirror) == prod c_i^{2^i} via Horner.
        acc = aux.commitments[-1].value
        for i in range(self.predicate.ell - 2, -1, -1):
            acc = acc * acc * aux.commitments[i].value
        if acc != self._check_target(commitment):
            raise ProtocolStateError("bit commitments do not recombine to c")

        y, key_shares, nonce = drawn
        eta = params.pow_h(y)
        # (c_i g^{-1})^y == c_i^y * (g^y)^{-1}: one fixed-base table pow
        # plus one multiply replaces the second variable-base
        # exponentiation per bit position, halving the dominant cost.
        gy_inv = params.pow_g(y).inverse()

        bit_ciphers: List[Tuple[bytes, bytes]] = []
        for c_i, k_i in zip(aux.commitments, key_shares):
            sigma0 = c_i.value ** y
            row = []
            for sigma in (sigma0, sigma0 * gy_inv):
                pad = hash_fn.digest(b"repro/ocbe/bit" + sigma.to_bytes())
                row.append(bytes(a ^ b for a, b in zip(pad, k_i)))
            bit_ciphers.append((row[0], row[1]))

        key = self.setup.envelope_key(b"".join(key_shares))
        return BitwiseEnvelope(
            eta=eta,
            bit_ciphers=tuple(bit_ciphers),
            ciphertext=self.setup.cipher.encrypt(key, message, nonce=nonce),
        )


class _BitwiseReceiverBase:
    """Common receiver logic for GE- and LE-OCBE."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        self.setup = setup
        self.predicate = predicate
        self.x = x % setup.pedersen.order
        self.r = r % setup.pedersen.order
        self.commitment = commitment
        self._rng = rng
        self._bit_values: Optional[List[int]] = None
        self._bit_blindings: Optional[List[int]] = None

    # Direction-specific hooks -------------------------------------------------

    def _difference(self) -> int:
        """``d`` as an element of ``F_p`` (direction-specific)."""
        raise NotImplementedError

    def _blinding_total(self) -> int:
        """The value ``sum 2^i r_i`` must equal (``r`` for GE, ``-r`` for LE)."""
        raise NotImplementedError

    # Protocol steps --------------------------------------------------------

    def commitment_message(self) -> BitCommitMessage:
        """Produce the per-bit commitments ``c_i = g^{d_i} h^{r_i}``."""
        p = self.setup.pedersen.order
        ell = self.predicate.ell
        d = self._difference()
        rng = self._rng

        blindings = [
            (rng.randrange(p) if rng is not None else secrets.randbelow(p))
            for _ in range(ell - 1)
        ]
        r0 = (self._blinding_total() - sum(
            (1 << (i + 1)) * ri for i, ri in enumerate(blindings)
        )) % p
        blindings = [r0] + blindings  # r_0 first; index i blinds bit i

        if 0 <= d < (1 << ell):
            bits = [(d >> i) & 1 for i in range(ell)]
        else:
            bits = [0] + [
                (rng.randrange(2) if rng is not None else secrets.randbelow(2))
                for _ in range(ell - 1)
            ]
            bits[0] = (d - sum((1 << i) * bits[i] for i in range(1, ell))) % p

        params = self.setup.pedersen
        commitments = tuple(
            params.commit(bits[i], blindings[i])[0] for i in range(ell)
        )
        self._bit_values = bits
        self._bit_blindings = blindings
        return BitCommitMessage(commitments=commitments)

    def open(self, envelope: BitwiseEnvelope) -> bytes:
        """Recover the key shares and decrypt.

        Raises :class:`~repro.errors.DecryptionError` when the predicate is
        not satisfied by the committed value (``d_0`` is then not a bit and
        the recovered share is garbage).
        """
        if self._bit_values is None or self._bit_blindings is None:
            raise ProtocolStateError("open() before commitment_message()")
        if len(envelope.bit_ciphers) != self.predicate.ell:
            raise ProtocolStateError("envelope arity mismatch")
        hash_fn = self.setup.hash_fn
        if self.predicate.ell >= 4:
            # l same-base exponentiations of eta: an ephemeral narrow
            # table amortizes within a single open() call.
            eta_pow = FixedBaseTable(envelope.eta, window=3).pow
        else:
            eta_pow = envelope.eta.__pow__
        shares: List[bytes] = []
        for i in range(self.predicate.ell):
            sigma = eta_pow(self._bit_blindings[i])
            pad = hash_fn.digest(b"repro/ocbe/bit" + sigma.to_bytes())
            d_i = self._bit_values[i]
            # A cheating-free receiver uses its bit; an unqualified one has a
            # non-bit d_0 and necessarily picks a wrong opening.
            cipher_bytes = envelope.bit_ciphers[i][d_i if d_i in (0, 1) else 0]
            shares.append(bytes(a ^ b for a, b in zip(pad, cipher_bytes)))
        key = self.setup.envelope_key(b"".join(shares))
        return self.setup.cipher.decrypt(key, envelope.ciphertext)


class GeOCBESender(_BitwiseSenderBase):
    """GE-OCBE sender: delivers M iff the committed ``x >= x0``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: GePredicate,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, GePredicate):
            raise PredicateError("GeOCBESender requires a GePredicate")
        super().__init__(setup, predicate, rng)

    def _check_target(self, commitment: PedersenCommitment) -> GroupElement:
        params = self.setup.pedersen
        return commitment.value * params.pow_g(-self.predicate.x0 % params.order)


class GeOCBEReceiver(_BitwiseReceiverBase):
    """GE-OCBE receiver holding the opening ``(x, r)`` of ``c``."""

    def __init__(
        self,
        setup: OCBESetup,
        predicate: GePredicate,
        x: int,
        r: int,
        commitment: PedersenCommitment,
        rng: Optional[random.Random] = None,
    ):
        if not isinstance(predicate, GePredicate):
            raise PredicateError("GeOCBEReceiver requires a GePredicate")
        super().__init__(setup, predicate, x, r, commitment, rng)

    def _difference(self) -> int:
        return (self.x - self.predicate.x0) % self.setup.pedersen.order

    def _blinding_total(self) -> int:
        return self.r
