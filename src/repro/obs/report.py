"""``python -m repro.obs.report``: validate, summarize and export spans.

Reads every ``obs.jsonl`` under the given files/directories and renders
the cross-process picture the per-entity writers cannot see alone: how
many spans each entity logged, which traces crossed which processes,
and how long each trace took end to end (first to last span timestamp,
as observed by the participating hosts' clocks).

Three modes compose:

* default -- print the text summary (entity/event table + trace table,
  plus interpolated p50/p95/p99 latencies for every histogram found in
  embedded ``metrics`` snapshot records);
* ``--check`` -- CI gate: exit non-zero when any line is malformed or
  no span was found at all (instrumentation that silently writes
  nothing must fail the gate, not pass it);
* ``--bench NAME`` -- additionally emit ``BENCH_<NAME>.json`` via
  :func:`repro.bench.runner.emit_bench_json` so trace latency is a
  trend CI can track across PRs like any other benchmark;
* ``--top N`` -- delegate to :mod:`repro.obs.analyze` and print the N
  slowest fully-stitched traces with their per-hop breakdown, for
  eyeballing outliers after a soak run.

Validation is structural: every line must be a JSON object carrying a
numeric ``ts``, string ``entity``/``event`` and a ``trace`` that is
either empty or exactly 32 hex digits.  JSON cannot carry bytes, and
:class:`repro.obs.trace.SpanWriter` refuses them at write time, so a
well-formed stream is payload-free by construction.
"""

from __future__ import annotations

import argparse
import json
import os
from typing import Dict, Iterable, List, Tuple

__all__ = ["Malformed", "load_spans", "main", "summarize"]

#: Hex digits in a full trace id (16 bytes on the wire).
_TRACE_HEX_LEN = 32


class Malformed:
    """One rejected line: where it was and why."""

    __slots__ = ("path", "lineno", "reason")

    def __init__(self, path: str, lineno: int, reason: str):
        self.path = path
        self.lineno = lineno
        self.reason = reason

    def __str__(self) -> str:
        return "%s:%d: %s" % (self.path, self.lineno, self.reason)


def _validate(record: object) -> str:
    """Why ``record`` is not a span, or ``""`` when it is one."""
    if not isinstance(record, dict):
        return "not a JSON object"
    ts = record.get("ts")
    if not isinstance(ts, (int, float)) or isinstance(ts, bool):
        return "missing/non-numeric 'ts'"
    for key in ("entity", "event"):
        if not isinstance(record.get(key), str) or not record[key]:
            return "missing/empty %r" % key
    trace = record.get("trace")
    if not isinstance(trace, str):
        return "missing 'trace'"
    if trace:
        if len(trace) != _TRACE_HEX_LEN:
            return "trace is %d hex digits, expected %d" % (
                len(trace), _TRACE_HEX_LEN
            )
        try:
            bytes.fromhex(trace)
        except ValueError:
            return "trace is not hex"
    return ""


def load_spans(path: str) -> Tuple[List[dict], List[Malformed]]:
    """Parse one ``obs.jsonl``; returns ``(spans, malformed lines)``."""
    spans: List[dict] = []
    bad: List[Malformed] = []
    with open(path, "r", encoding="utf-8") as handle:
        for lineno, line in enumerate(handle, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                record = json.loads(line)
            except ValueError as exc:
                bad.append(Malformed(path, lineno, "bad JSON: %s" % exc))
                continue
            reason = _validate(record)
            if reason:
                bad.append(Malformed(path, lineno, reason))
            else:
                spans.append(record)
    return spans, bad


def discover(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into the ``obs.jsonl`` files beneath them."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if name == "obs.jsonl":
                        found.append(os.path.join(root, name))
        elif os.path.exists(path):
            found.append(path)
    return sorted(set(found))


def summarize(spans: List[dict]) -> dict:
    """Aggregate spans into the summary the text/bench outputs render."""
    by_entity_event: Dict[Tuple[str, str], int] = {}
    traces: Dict[str, List[dict]] = {}
    for span in spans:
        key = (span["entity"], span["event"])
        by_entity_event[key] = by_entity_event.get(key, 0) + 1
        if span["trace"]:
            traces.setdefault(span["trace"], []).append(span)
    trace_rows = []
    for trace_id in sorted(traces):
        group = traces[trace_id]
        entities = sorted({s["entity"] for s in group})
        stamps = [s["ts"] for s in group]
        trace_rows.append({
            "trace": trace_id,
            "spans": len(group),
            "entities": entities,
            "duration": max(stamps) - min(stamps),
        })
    return {
        "spans": len(spans),
        "by_entity_event": by_entity_event,
        "traces": trace_rows,
        "cross_process_traces": sum(
            1 for row in trace_rows if len(row["entities"]) >= 2
        ),
    }


def _print_summary(files: List[str], summary: dict) -> None:
    # Lazy import keeps ``repro.obs`` itself a strict leaf package.
    from repro.bench.runner import format_table

    print("%d span file(s), %d span(s), %d trace(s) (%d cross-process)" % (
        len(files),
        summary["spans"],
        len(summary["traces"]),
        summary["cross_process_traces"],
    ))
    event_rows = [
        [entity, event, count]
        for (entity, event), count in sorted(summary["by_entity_event"].items())
    ]
    if event_rows:
        print(format_table("spans by entity/event",
                           ["entity", "event", "count"], event_rows))
    trace_rows = [
        [row["trace"][:12], row["spans"], len(row["entities"]),
         ",".join(row["entities"]), row["duration"] * 1e3]
        for row in summary["traces"]
    ]
    if trace_rows:
        print(format_table(
            "traces (duration = last span - first span)",
            ["trace", "spans", "procs", "entities", "ms"], trace_rows,
        ))


def _histogram_rows(spans: List[dict]) -> List[list]:
    """p50/p95/p99 rows from the *last* ``metrics`` snapshot per entity.

    Entities periodically embed registry snapshots into their span
    stream; the last one per entity is cumulative, so its histograms
    carry the whole run.  Estimation interpolates inside the fixed
    bucket edges -- latencies, not raw bucket counts.
    """
    from repro.obs.metrics import estimate_quantiles

    latest: Dict[str, dict] = {}
    for span in spans:
        if span.get("event") == "metrics" and isinstance(
            span.get("snapshot"), dict
        ):
            latest[span["entity"]] = span["snapshot"]
    rows: List[list] = []
    for entity in sorted(latest):
        histograms = latest[entity].get("histograms")
        if not isinstance(histograms, dict):
            continue
        for name in sorted(histograms):
            histogram = histograms[name]
            if not isinstance(histogram, dict) or not histogram.get("count"):
                continue
            quantiles = estimate_quantiles(histogram)
            rows.append([
                entity, name, histogram.get("count", 0),
                quantiles[0.5] * 1e3, quantiles[0.95] * 1e3,
                quantiles[0.99] * 1e3,
            ])
    return rows


def _emit_bench(name: str, files: List[str], summary: dict) -> str:
    from repro.bench.runner import Measurement, emit_bench_json

    durations = [row["duration"] for row in summary["traces"]] or [0.0]
    measurement = Measurement(
        mean=sum(durations) / len(durations),
        minimum=min(durations),
        maximum=max(durations),
        rounds=len(durations),
    )
    return emit_bench_json(
        name,
        op="obs.trace.latency",
        params={"files": len(files), "spans": summary["spans"]},
        measurements={"trace_wall": measurement},
        extra={
            "traces": len(summary["traces"]),
            "cross_process_traces": summary["cross_process_traces"],
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Validate and summarize obs.jsonl span streams.",
    )
    parser.add_argument("paths", nargs="*", default=["."],
                        help="obs.jsonl files or directories to scan "
                             "(default: the current directory)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on malformed lines or when no "
                             "span was found (the CI gate)")
    parser.add_argument("--bench", metavar="NAME", default=None,
                        help="also emit BENCH_<NAME>.json trend data")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="print the N slowest fully-stitched traces "
                             "with per-hop breakdowns")
    args = parser.parse_args(argv)

    files = discover(args.paths or ["."])
    spans: List[dict] = []
    bad: List[Malformed] = []
    for path in files:
        file_spans, file_bad = load_spans(path)
        spans.extend(file_spans)
        bad.extend(file_bad)

    summary = summarize(spans)
    _print_summary(files, summary)
    histogram_rows = _histogram_rows(spans)
    if histogram_rows:
        from repro.bench.runner import format_table

        print(format_table(
            "histogram latencies (interpolated from bucket edges)",
            ["entity", "histogram", "obs", "p50 ms", "p95 ms", "p99 ms"],
            histogram_rows,
        ))
    if args.top:
        from repro.obs.analyze import analyze_paths, format_top

        print(format_top(analyze_paths(args.paths or ["."]), args.top))
    for problem in bad:
        print("MALFORMED %s" % problem)
    if args.bench:
        print("wrote %s" % _emit_bench(args.bench, files, summary))

    if args.check:
        if bad:
            print("CHECK FAILED: %d malformed line(s)" % len(bad))
            return 1
        if not spans:
            print("CHECK FAILED: no spans found under %s" % (args.paths,))
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
