"""Opt-in deterministic CPU profiling windows keyed to span stage names.

The attribution tables from :mod:`repro.obs.analyze` say *which stage*
eats a publish or a join wave; this module says *which functions inside
the stage*.  A :class:`ProfileRecorder` wraps named windows of work in
:mod:`cProfile` and folds each window's stats into a per-stage,
per-function aggregate -- calls, total time, cumulative time -- keyed
``"filename:lineno:function"`` with the filename reduced to its
basename.

Privacy posture matches the span writer's: the recorder stores
**function names only** -- never argument values, never locals, never
payload bytes -- so a profile file is as payload-free as a span log.

Profiling is opt-in per process (``--profile-dir`` on the entity CLIs
and ``repro.load``); unprofiled runs never construct a profiler, and
:func:`profile_window` is a single global read when none is installed,
so the wire behavior and hot paths of unprofiled runs are untouched.
CPython allows one active profiler per interpreter, so windows must not
nest or overlap: the recorder holds an ``_active`` flag under a lock
and an inner/concurrent window simply runs unprofiled (counted as a
skip) instead of crashing the serving loop.

``python -m repro.obs.profile`` merges the per-entity ``profile_*.json``
files of a run, prints the top functions per stage, and emits
``BENCH_<NAME>.json`` (the CI artifact is ``BENCH_profile_ocbe.json``)
naming where the join-wave CPU actually goes.

Like every ``repro.obs`` module this imports no crypto and must stay
importable from a keyless relay-tier process.
"""

from __future__ import annotations

import argparse
import cProfile
import fnmatch
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Tuple

__all__ = [
    "ProfileRecorder",
    "get_profiler",
    "main",
    "merge_profiles",
    "profile_window",
    "recorder_for",
    "set_profiler",
]


def _fold(profiler: "cProfile.Profile") -> Dict[str, Tuple[int, float, float]]:
    """Collapse one window's stats to ``key -> (calls, tottime, cumtime)``.

    The key is ``basename:lineno:function`` -- enough to find the code,
    nothing about the data it ran on.
    """
    import pstats

    out: Dict[str, Tuple[int, float, float]] = {}
    stats = pstats.Stats(profiler)
    for (filename, lineno, funcname), row in stats.stats.items():
        _cc, ncalls, tottime, cumtime = row[0], row[1], row[2], row[3]
        key = "%s:%d:%s" % (os.path.basename(filename), lineno, funcname)
        calls, tot, cum = out.get(key, (0, 0.0, 0.0))
        out[key] = (calls + ncalls, tot + tottime, cum + cumtime)
    return out


class ProfileRecorder:
    """Per-process profile aggregator writing one ``profile_<entity>.json``.

    Thread-safe bookkeeping; the actual profiled window runs without the
    lock held (profiling a serving loop must not serialize unrelated
    threads on our bookkeeping).
    """

    def __init__(self, path: str, entity: str):
        self.path = path
        self.entity = entity
        self._lock = threading.Lock()
        self._active = False
        self._stages: Dict[str, dict] = {}
        self._meta: Dict[str, object] = {}
        self.skipped_windows = 0

    def annotate(self, **fields) -> None:
        """Attach run metadata (JSON scalars) to the artifact.

        The caller passes plain strings/numbers -- e.g. the math backend
        name or the worker-pool size -- so this module never has to
        import the crypto stack to describe it.
        """
        with self._lock:
            self._meta.update(fields)

    @contextmanager
    def window(self, stage: str):
        """Profile one window of work under ``stage``.

        When another window is already active (nested stages, or two
        threads) the block runs unprofiled -- cProfile cannot nest --
        and the skip is counted so the report can say so.
        """
        with self._lock:
            if self._active:
                self.skipped_windows += 1
                grabbed = False
            else:
                self._active = True
                grabbed = True
        if not grabbed:
            yield
            return
        profiler = cProfile.Profile()
        begun = time.perf_counter()
        try:
            profiler.enable()
            try:
                yield
            finally:
                profiler.disable()
        finally:
            wall = time.perf_counter() - begun
            with self._lock:
                self._active = False
                self._record(stage, wall, _fold(profiler))

    def _record(
        self, stage: str, wall: float,
        functions: Dict[str, Tuple[int, float, float]],
    ) -> None:
        cut = self._stages.setdefault(stage, {
            "windows": 0, "wall_s": 0.0, "min_s": wall, "max_s": wall,
            "functions": {},
        })
        cut["windows"] += 1
        cut["wall_s"] += wall
        cut["min_s"] = min(cut["min_s"], wall)
        cut["max_s"] = max(cut["max_s"], wall)
        folded = cut["functions"]
        for key, (calls, tot, cum) in functions.items():
            old = folded.get(key, (0, 0.0, 0.0))
            folded[key] = (old[0] + calls, old[1] + tot, old[2] + cum)

    def payload(self) -> dict:
        with self._lock:
            return {
                "entity": self.entity,
                "meta": dict(self._meta),
                "skipped_windows": self.skipped_windows,
                "stages": {
                    stage: {
                        "windows": cut["windows"],
                        "wall_s": cut["wall_s"],
                        "min_s": cut["min_s"],
                        "max_s": cut["max_s"],
                        "functions": {
                            key: list(value)
                            for key, value in cut["functions"].items()
                        },
                    }
                    for stage, cut in self._stages.items()
                },
            }

    def write(self) -> Optional[str]:
        """Atomically persist the aggregate; returns the path, or ``None``
        when no window ever ran (no empty artifacts)."""
        payload = self.payload()
        if not payload["stages"]:
            return None
        directory = os.path.dirname(self.path)
        if directory:
            os.makedirs(directory, exist_ok=True)
        scratch = self.path + ".tmp"
        with open(scratch, "w", encoding="utf-8") as handle:
            json.dump(payload, handle, sort_keys=True, indent=2)
            handle.write("\n")
        os.replace(scratch, self.path)
        return self.path


def recorder_for(
    profile_dir: Optional[str], entity: str
) -> Optional[ProfileRecorder]:
    """A recorder at ``<profile_dir>/profile_<entity>.json``, or ``None``."""
    if not profile_dir:
        return None
    return ProfileRecorder(
        os.path.join(profile_dir, "profile_%s.json" % entity), entity
    )


#: Process-global recorder; ``None`` keeps :func:`profile_window` a
#: single global read (the unprofiled default).
_profiler: Optional[ProfileRecorder] = None


def set_profiler(
    recorder: Optional[ProfileRecorder],
) -> Optional[ProfileRecorder]:
    """Install the process-global recorder; returns the previous one."""
    global _profiler
    previous = _profiler
    _profiler = recorder
    return previous


def get_profiler() -> Optional[ProfileRecorder]:
    return _profiler


@contextmanager
def profile_window(stage: str):
    """Profile a block under ``stage`` via the global recorder (no-op
    when profiling is not enabled for this process)."""
    recorder = _profiler
    if recorder is None:
        yield
        return
    with recorder.window(stage):
        yield


# -- merging and the CLI ----------------------------------------------------


def discover_profiles(paths: Iterable[str]) -> List[str]:
    """Expand files/directories into ``profile_*.json`` files."""
    found: List[str] = []
    for path in paths:
        if os.path.isdir(path):
            for root, _dirs, files in os.walk(path):
                for name in sorted(files):
                    if fnmatch.fnmatch(name, "profile_*.json"):
                        found.append(os.path.join(root, name))
        elif os.path.exists(path):
            found.append(path)
    return sorted(set(found))


def merge_profiles(paths: Iterable[str]) -> dict:
    """Fold several per-entity profile files into one per-stage view.

    Hostile/stale inputs degrade: a file that is not valid JSON or not
    shaped like a profile contributes nothing but a ``"skipped"`` entry.
    """
    stages: Dict[str, dict] = {}
    entities: List[str] = []
    skipped: List[str] = []
    meta: Dict[str, List[str]] = {}
    for path in paths:
        try:
            with open(path, "r", encoding="utf-8") as handle:
                payload = json.load(handle)
            file_stages = payload["stages"]
            if not isinstance(file_stages, dict):
                raise TypeError("stages is not an object")
        except (OSError, ValueError, KeyError, TypeError):
            skipped.append(path)
            continue
        entities.append(str(payload.get("entity", os.path.basename(path))))
        file_meta = payload.get("meta", {})
        if isinstance(file_meta, dict):
            for key, value in file_meta.items():
                values = meta.setdefault(str(key), [])
                if str(value) not in values:
                    values.append(str(value))
        for stage, cut in file_stages.items():
            try:
                windows = int(cut["windows"])
                wall = float(cut["wall_s"])
                functions = cut.get("functions", {})
                items = [
                    (str(key), int(value[0]), float(value[1]), float(value[2]))
                    for key, value in functions.items()
                ]
            except (KeyError, TypeError, ValueError, IndexError):
                skipped.append("%s#%s" % (path, stage))
                continue
            merged = stages.setdefault(stage, {
                "windows": 0, "wall_s": 0.0, "functions": {},
            })
            merged["windows"] += windows
            merged["wall_s"] += wall
            folded = merged["functions"]
            for key, calls, tot, cum in items:
                old = folded.get(key, (0, 0.0, 0.0))
                folded[key] = (old[0] + calls, old[1] + tot, old[2] + cum)
    return {
        "entities": sorted(entities),
        "stages": stages,
        "skipped": skipped,
        "meta": {key: sorted(values) for key, values in meta.items()},
    }


def top_functions(
    merged: dict, stage: str, count: int
) -> List[Tuple[str, int, float, float]]:
    cut = merged["stages"].get(stage)
    if not cut:
        return []
    rows = [
        (key, calls, tot, cum)
        for key, (calls, tot, cum) in cut["functions"].items()
    ]
    rows.sort(key=lambda row: -row[2])
    return rows[:count]


def _emit_bench(name: str, merged: dict, top: int) -> str:
    from repro.bench.runner import Measurement, emit_bench_json

    measurements = {}
    extra_stages = {}
    for stage, cut in sorted(merged["stages"].items()):
        windows = max(1, int(cut["windows"]))
        measurements["window_" + stage.replace(".", "_")] = Measurement(
            mean=cut["wall_s"] / windows, minimum=0.0,
            maximum=cut["wall_s"], rounds=windows,
        )
        extra_stages[stage] = {
            "windows": cut["windows"],
            "wall_s": cut["wall_s"],
            "top": [
                {"function": key, "calls": calls,
                 "tottime_s": tot, "cumtime_s": cum}
                for key, calls, tot, cum in top_functions(merged, stage, top)
            ],
        }
    params = {"entities": len(merged["entities"])}
    for key, values in sorted(merged.get("meta", {}).items()):
        params[key] = values[0] if len(values) == 1 else ",".join(values)
    return emit_bench_json(
        name,
        op="obs.profile",
        params=params,
        measurements=measurements,
        extra={"stages": extra_stages, "skipped": merged["skipped"]},
    )


def main(argv=None) -> int:
    from repro.bench.runner import format_table

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.profile",
        description="Merge profile_<entity>.json files and attribute CPU "
                    "to named functions per stage.",
    )
    parser.add_argument("paths", nargs="*", default=["."],
                        help="profile_*.json files or directories to scan")
    parser.add_argument("--top", type=int, default=10, metavar="N",
                        help="functions per stage to print (default 10)")
    parser.add_argument("--bench", metavar="NAME", default=None,
                        help="also emit BENCH_<NAME>.json trend data")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when no profiled stage is found")
    args = parser.parse_args(argv)

    files = discover_profiles(args.paths or ["."])
    merged = merge_profiles(files)
    print("%d profile file(s), %d entit(ies), %d stage(s)" % (
        len(files), len(merged["entities"]), len(merged["stages"]),
    ))
    for stage, cut in sorted(merged["stages"].items()):
        rows = [
            [key, calls, tot * 1e3, cum * 1e3]
            for key, calls, tot, cum in top_functions(merged, stage, args.top)
        ]
        print(format_table(
            "stage %s: %d window(s), %.1f ms wall" % (
                stage, cut["windows"], cut["wall_s"] * 1e3,
            ),
            ["function", "calls", "tottime ms", "cumtime ms"], rows,
        ))
    for path in merged["skipped"]:
        print("SKIPPED %s" % path)
    if args.bench:
        print("wrote %s" % _emit_bench(args.bench, merged, args.top))
    if args.check and not merged["stages"]:
        print("CHECK FAILED: no profiled stages under %s" % (args.paths,))
        return 1
    if args.check:
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
