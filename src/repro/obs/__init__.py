"""Observability: a dependency-free metrics + trace layer.

``repro.obs`` is deliberately a *leaf* package: it imports nothing from
the crypto/GKM/policy stack (the keyless-relay import boundary pinned by
``tests/net/test_relay.py`` must hold with a relay process importing
this package), and nothing outside the standard library plus
:mod:`repro.errors`.  Everything above it -- store, gkm, system, net,
load -- may import it; never the other way around.

* :mod:`repro.obs.metrics` -- counters, gauges, bounded histograms with
  fixed bucket edges, and the thread-safe per-process
  :class:`~repro.obs.metrics.MetricsRegistry` whose snapshots are
  deterministic and JSON-round-trippable (the unit every
  ``MetricsReport`` frame and subtree aggregation works in).
* :mod:`repro.obs.trace` -- compact 16-byte trace ids propagated on
  wire frames, the per-thread/per-task trace context, and the
  :class:`~repro.obs.trace.SpanWriter` appending per-hop span records
  to an entity's ``obs.jsonl`` (routing-level facts only; the writer
  refuses bytes-typed fields so payloads and key material cannot leak
  into telemetry by construction).
* :mod:`repro.obs.report` -- ``python -m repro.obs.report``: validate
  (``--check``), summarize, and export ``BENCH_obs_*`` trend JSON from
  collected ``obs.jsonl`` streams.
* :mod:`repro.obs.analyze` -- ``python -m repro.obs.analyze``: stitch
  the per-process span logs into causal trace trees, correct clock
  skew from hop timestamp pairs, and attribute end-to-end latency to
  named stages (the critical-path table CI gates on).
* :mod:`repro.obs.profile` -- opt-in :mod:`cProfile` windows keyed to
  span stage names (function names only, never argument values) and
  the ``python -m repro.obs.profile`` merger.
"""

from repro.obs.metrics import (
    DEFAULT_LATENCY_EDGES,
    MetricsRegistry,
    estimate_quantiles,
    get_registry,
    merge_snapshots,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.trace import (
    SPAN_ID_LEN,
    TRACE_LEN,
    ZERO_TRACE,
    SpanWriter,
    current_span,
    current_trace,
    get_span_writer,
    new_span_id,
    new_trace_id,
    set_span_writer,
    set_trace,
    spanning,
    stage,
    trace_hex,
    tracing,
)

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "MetricsRegistry",
    "SPAN_ID_LEN",
    "SpanWriter",
    "TRACE_LEN",
    "ZERO_TRACE",
    "current_span",
    "current_trace",
    "estimate_quantiles",
    "get_registry",
    "get_span_writer",
    "merge_snapshots",
    "new_span_id",
    "new_trace_id",
    "set_span_writer",
    "set_trace",
    "snapshot_from_json",
    "snapshot_to_json",
    "spanning",
    "stage",
    "trace_hex",
    "tracing",
]
