"""Counters, gauges, bounded histograms, and the per-process registry.

Design constraints (see DESIGN.md "Observability"):

* **Dependency-free.**  Standard library + :mod:`repro.errors` only --
  a relay process imports this, and the keyless import boundary must
  hold.
* **Deterministic snapshots.**  Histograms use *fixed* bucket edges
  chosen at creation, so two runs that observe the same values produce
  byte-identical snapshot JSON; snapshots round-trip through JSON
  exactly (``snapshot_from_json(snapshot_to_json(s)) == s``).
* **Thread-safe.**  :class:`TcpTransport` mixes a background asyncio
  thread with arbitrary caller threads; every mutation takes the
  registry lock, and a snapshot is a consistent point-in-time copy.
* **Hostile-input safe.**  Snapshots cross process boundaries inside
  ``MetricsReport`` frames; :func:`snapshot_from_json` validates shape,
  sizes and types before anything enters an aggregate, raising
  :class:`~repro.errors.SerializationError` -- never ``KeyError`` or
  ``MemoryError`` -- on garbage.

Instrumentation in the hot paths goes through the *process-global*
registry (:func:`get_registry`) so the store/gkm/system layers need no
constructor plumbing; servers that coexist in one test process (broker
thread + relay threads) hold their own :class:`MetricsRegistry`
instances instead.
"""

from __future__ import annotations

import json
import threading
import time
from contextlib import contextmanager
from typing import Dict, Iterable, Optional, Sequence, Tuple

from repro.errors import SerializationError

__all__ = [
    "DEFAULT_LATENCY_EDGES",
    "MAX_SNAPSHOT_BYTES",
    "Counter",
    "Gauge",
    "Histogram",
    "MetricsRegistry",
    "estimate_quantiles",
    "get_registry",
    "merge_snapshots",
    "snapshot_from_json",
    "snapshot_to_json",
]

#: Default histogram edges, in seconds: 100 us .. 10 s, the span between
#: one dict update and one churn phase.  Observations above the last
#: edge land in the overflow bucket (``counts`` has ``len(edges) + 1``
#: entries).
DEFAULT_LATENCY_EDGES: Tuple[float, ...] = (
    0.0001, 0.00025, 0.0005, 0.001, 0.0025, 0.005, 0.01, 0.025,
    0.05, 0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0,
)

#: Decode-side caps for snapshots received off the wire.
MAX_SNAPSHOT_BYTES = 1 << 20
_MAX_METRICS_PER_SECTION = 1024
_MAX_METRIC_NAME = 120
_MAX_HISTOGRAM_EDGES = 64

_SECTIONS = ("counters", "gauges", "histograms")


class Counter:
    """A monotonically increasing integer."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0

    def inc(self, amount: int = 1) -> None:
        with self._lock:
            self.value += int(amount)


class Gauge:
    """A point-in-time number (queue depth, live connections)."""

    __slots__ = ("_lock", "value")

    def __init__(self, lock: threading.Lock):
        self._lock = lock
        self.value = 0.0

    def set(self, value: float) -> None:
        with self._lock:
            self.value = float(value)

    def add(self, delta: float) -> None:
        with self._lock:
            self.value += float(delta)


class Histogram:
    """A bounded histogram over fixed, creation-time bucket edges.

    ``counts[i]`` counts observations ``<= edges[i]``; the final slot is
    the overflow bucket.  Fixed edges (never rescaled) are what make
    snapshots deterministic and mergeable across processes.
    """

    __slots__ = ("_lock", "edges", "counts", "count", "sum", "min", "max")

    def __init__(self, lock: threading.Lock, edges: Sequence[float]):
        if not edges or len(edges) > _MAX_HISTOGRAM_EDGES:
            raise SerializationError(
                "histogram needs 1..%d edges, got %d"
                % (_MAX_HISTOGRAM_EDGES, len(edges))
            )
        ordered = tuple(float(e) for e in edges)
        if list(ordered) != sorted(set(ordered)):
            raise SerializationError("histogram edges must strictly increase")
        self._lock = lock
        self.edges = ordered
        self.counts = [0] * (len(ordered) + 1)
        self.count = 0
        self.sum = 0.0
        self.min = 0.0
        self.max = 0.0

    def observe(self, value: float) -> None:
        value = float(value)
        with self._lock:
            slot = len(self.edges)
            for index, edge in enumerate(self.edges):
                if value <= edge:
                    slot = index
                    break
            self.counts[slot] += 1
            if self.count == 0:
                self.min = self.max = value
            else:
                self.min = min(self.min, value)
                self.max = max(self.max, value)
            self.count += 1
            self.sum += value

    def mean(self) -> float:
        with self._lock:
            return self.sum / self.count if self.count else 0.0


class MetricsRegistry:
    """Get-or-create instruments by name; snapshot them consistently.

    One lock guards both the name tables and every instrument, so a
    snapshot taken while the asyncio thread and caller threads are
    mid-increment is still a coherent point-in-time view.
    """

    def __init__(self, enabled: bool = True):
        self._lock = threading.Lock()
        self.enabled = enabled
        self._counters: Dict[str, Counter] = {}
        self._gauges: Dict[str, Gauge] = {}
        self._histograms: Dict[str, Histogram] = {}

    # -- instrument access -------------------------------------------------

    def counter(self, name: str) -> Counter:
        with self._lock:
            instrument = self._counters.get(name)
            if instrument is None:
                instrument = self._counters[name] = Counter(self._lock)
            return instrument

    def gauge(self, name: str) -> Gauge:
        with self._lock:
            instrument = self._gauges.get(name)
            if instrument is None:
                instrument = self._gauges[name] = Gauge(self._lock)
            return instrument

    def histogram(
        self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES
    ) -> Histogram:
        with self._lock:
            instrument = self._histograms.get(name)
            if instrument is None:
                instrument = self._histograms[name] = Histogram(
                    self._lock, edges
                )
            return instrument

    # -- convenience mutators (no-ops while disabled) ----------------------

    def inc(self, name: str, amount: int = 1) -> None:
        if self.enabled:
            self.counter(name).inc(amount)

    def set_gauge(self, name: str, value: float) -> None:
        if self.enabled:
            self.gauge(name).set(value)

    def observe(
        self,
        name: str,
        value: float,
        edges: Sequence[float] = DEFAULT_LATENCY_EDGES,
    ) -> None:
        if self.enabled:
            self.histogram(name, edges).observe(value)

    @contextmanager
    def timer(self, name: str, edges: Sequence[float] = DEFAULT_LATENCY_EDGES):
        """Time a block into a histogram (zero-cost while disabled)."""
        if not self.enabled:
            yield
            return
        start = time.perf_counter()
        try:
            yield
        finally:
            self.observe(name, time.perf_counter() - start, edges)

    # -- lifecycle ---------------------------------------------------------

    def disable(self) -> None:
        self.enabled = False

    def enable(self) -> None:
        self.enabled = True

    def reset(self) -> None:
        """Drop every instrument (test isolation between scenarios)."""
        with self._lock:
            self._counters.clear()
            self._gauges.clear()
            self._histograms.clear()

    # -- snapshots ---------------------------------------------------------

    def snapshot(self) -> dict:
        """A consistent, plain-data, JSON-round-trippable copy."""
        with self._lock:
            return {
                "counters": {
                    name: c.value for name, c in sorted(self._counters.items())
                },
                "gauges": {
                    name: g.value for name, g in sorted(self._gauges.items())
                },
                "histograms": {
                    name: {
                        "edges": list(h.edges),
                        "counts": list(h.counts),
                        "count": h.count,
                        "sum": h.sum,
                        "min": h.min,
                        "max": h.max,
                    }
                    for name, h in sorted(self._histograms.items())
                },
            }


#: The per-process registry the library-level instrumentation writes to.
_GLOBAL = MetricsRegistry()


def get_registry() -> MetricsRegistry:
    """The process-global registry (one per entity process)."""
    return _GLOBAL


# -- snapshot plumbing ------------------------------------------------------


def snapshot_to_json(snapshot: dict) -> bytes:
    """Canonical JSON bytes (sorted keys -> deterministic)."""
    return json.dumps(
        snapshot, sort_keys=True, separators=(",", ":")
    ).encode("utf-8")


def _require_section(snapshot: dict, section: str) -> dict:
    table = snapshot.get(section, {})
    if not isinstance(table, dict) or len(table) > _MAX_METRICS_PER_SECTION:
        raise SerializationError("malformed metrics section %r" % section)
    for name in table:
        if not isinstance(name, str) or not name or len(name) > _MAX_METRIC_NAME:
            raise SerializationError("bad metric name %r" % (name,))
    return table


def _require_number(value, label: str) -> float:
    if isinstance(value, bool) or not isinstance(value, (int, float)):
        raise SerializationError("metric %s must be a number" % label)
    return value


def snapshot_from_json(raw: bytes, max_bytes: int = MAX_SNAPSHOT_BYTES) -> dict:
    """Parse + validate an off-the-wire snapshot; hostile input refused."""
    if len(raw) > max_bytes:
        raise SerializationError(
            "metrics snapshot of %d bytes exceeds the %d-byte cap"
            % (len(raw), max_bytes)
        )
    try:
        snapshot = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, ValueError) as exc:
        raise SerializationError("undecodable metrics snapshot") from exc
    if not isinstance(snapshot, dict):
        raise SerializationError("metrics snapshot must be an object")
    out: dict = {}
    for section in _SECTIONS:
        table = _require_section(snapshot, section)
        if section == "histograms":
            cleaned = {}
            for name, hist in table.items():
                if not isinstance(hist, dict):
                    raise SerializationError("histogram %r must be an object" % name)
                edges = hist.get("edges")
                counts = hist.get("counts")
                if (
                    not isinstance(edges, list)
                    or not isinstance(counts, list)
                    or not 1 <= len(edges) <= _MAX_HISTOGRAM_EDGES
                    or len(counts) != len(edges) + 1
                ):
                    raise SerializationError("histogram %r malformed" % name)
                cleaned[name] = {
                    "edges": [_require_number(e, name) for e in edges],
                    "counts": [int(_require_number(c, name)) for c in counts],
                    "count": int(_require_number(hist.get("count", 0), name)),
                    "sum": _require_number(hist.get("sum", 0.0), name),
                    "min": _require_number(hist.get("min", 0.0), name),
                    "max": _require_number(hist.get("max", 0.0), name),
                }
            out[section] = cleaned
        else:
            out[section] = {
                name: _require_number(value, name)
                for name, value in table.items()
            }
    return out


#: The quantiles the latency tables render.
DEFAULT_QUANTILES: Tuple[float, ...] = (0.5, 0.95, 0.99)


def estimate_quantiles(
    histogram: dict, quantiles: Sequence[float] = DEFAULT_QUANTILES
) -> Dict[float, float]:
    """Interpolate quantiles from a fixed-edge histogram snapshot.

    Works on the snapshot/merge dict form (``edges``/``counts``/
    ``count``/``min``/``max``).  Within the bucket holding the target
    rank the value is linearly interpolated between the bucket bounds
    (the tracked ``min`` bounds the first bucket, the tracked ``max``
    the overflow bucket), then clamped into ``[min, max]`` -- so a
    single-observation histogram reports that observation exactly, and
    no estimate can escape the observed range.  Returns ``{q: 0.0}``
    for empty or malformed histograms rather than raising: callers are
    rendering tables, and a skewed snapshot should produce a zero row,
    not a crash.
    """
    try:
        count = int(histogram.get("count", 0))
        edges = [float(e) for e in histogram.get("edges", [])]
        counts = [int(c) for c in histogram.get("counts", [])]
        seen_min = float(histogram.get("min", 0.0))
        seen_max = float(histogram.get("max", 0.0))
    except (TypeError, ValueError, AttributeError):
        return {q: 0.0 for q in quantiles}
    if count <= 0 or not edges or len(counts) != len(edges) + 1:
        return {q: 0.0 for q in quantiles}
    if any(c < 0 for c in counts):
        return {q: 0.0 for q in quantiles}
    out: Dict[float, float] = {}
    for q in quantiles:
        q = min(max(float(q), 0.0), 1.0)
        rank = q * count
        cumulative = 0
        value = seen_max
        for index, bucket in enumerate(counts):
            before = cumulative
            cumulative += bucket
            if bucket and cumulative >= rank:
                lower = seen_min if index == 0 else edges[index - 1]
                upper = edges[index] if index < len(edges) else seen_max
                if upper < lower:
                    upper = lower
                fraction = (rank - before) / bucket
                value = lower + (upper - lower) * fraction
                break
        out[q] = min(max(value, seen_min), seen_max)
    return out


def merge_snapshots(snapshots: Iterable[Optional[dict]]) -> dict:
    """Sum snapshots into one subtree aggregate.

    Counters, gauges and histogram bucket counts add; histogram min/max
    take the extremes.  Gauges *sum* deliberately: across a subtree,
    "entities attached" or "inbox depth" aggregate additively.
    Histograms with mismatched edges keep the first set seen and fold
    the other's totals into ``count``/``sum`` only (a version-skewed
    child must not corrupt the parent's buckets).
    """
    counters: Dict[str, float] = {}
    gauges: Dict[str, float] = {}
    histograms: Dict[str, dict] = {}
    for snapshot in snapshots:
        if not snapshot:
            continue
        for name, value in snapshot.get("counters", {}).items():
            counters[name] = counters.get(name, 0) + value
        for name, value in snapshot.get("gauges", {}).items():
            gauges[name] = gauges.get(name, 0) + value
        for name, hist in snapshot.get("histograms", {}).items():
            into = histograms.get(name)
            if into is None:
                histograms[name] = {
                    "edges": list(hist["edges"]),
                    "counts": list(hist["counts"]),
                    "count": hist["count"],
                    "sum": hist["sum"],
                    "min": hist["min"],
                    "max": hist["max"],
                }
                continue
            if into["edges"] == list(hist["edges"]):
                into["counts"] = [
                    a + b for a, b in zip(into["counts"], hist["counts"])
                ]
            if hist["count"]:
                if into["count"]:
                    into["min"] = min(into["min"], hist["min"])
                    into["max"] = max(into["max"], hist["max"])
                else:
                    into["min"], into["max"] = hist["min"], hist["max"]
            into["count"] += hist["count"]
            into["sum"] += hist["sum"]
    return {
        "counters": dict(sorted(counters.items())),
        "gauges": dict(sorted(gauges.items())),
        "histograms": dict(sorted(histograms.items())),
    }
