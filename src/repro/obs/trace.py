"""Compact trace ids, the per-task trace context, and span records.

A trace id is 16 opaque random bytes minted at an operation's origin
(a subscriber starting a registration, a publisher starting a rekey
broadcast) and carried on every wire frame the operation produces, so
one registration or rekey can be followed idmgr -> publisher -> broker
-> relay -> subscriber across process boundaries.

On the wire the id rides as an optional *trailing* field (see
``repro.net.protocol.pack_trace``): an all-zeros trace is simply
omitted, so untraced traffic stays byte-identical to the pre-trace
protocol and old frames decode as "no trace".  In process, the current
id lives in a :class:`contextvars.ContextVar`, which is inherited by
asyncio tasks and independent per thread -- exactly the mix
``TcpTransport`` runs.

Span records are the per-hop evidence: one JSON line per event in an
entity's ``obs.jsonl`` (under its ``--data-dir``/``--obs-dir``),
carrying *routing-level facts only* -- timestamps, entity names, kind
labels, byte sizes, hex trace ids.  :meth:`SpanWriter.span` refuses
bytes-typed field values outright, so payload bytes and key material
cannot end up in telemetry by construction.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "TRACE_LEN",
    "ZERO_TRACE",
    "SpanWriter",
    "current_trace",
    "new_trace_id",
    "set_trace",
    "trace_hex",
    "tracing",
]

#: Trace ids are exactly this many bytes on the wire.
TRACE_LEN = 16

#: The "no trace" value; frames encode it by omission.
ZERO_TRACE = b"\x00" * TRACE_LEN

_current: contextvars.ContextVar[bytes] = contextvars.ContextVar(
    "repro_obs_trace", default=b""
)


def new_trace_id() -> bytes:
    """A fresh random 16-byte trace id (never all zeros)."""
    while True:
        trace = os.urandom(TRACE_LEN)
        if any(trace):
            return trace


def current_trace() -> bytes:
    """The active trace id, or ``b""`` when none is set."""
    return _current.get()


def set_trace(trace: bytes) -> "contextvars.Token":
    """Install ``trace`` as the active id; returns the reset token.

    Zero/empty traces normalize to "no trace" so a hop never propagates
    a meaningless all-zeros id.
    """
    if not trace or not any(trace):
        trace = b""
    return _current.set(bytes(trace))


def reset_trace(token: "contextvars.Token") -> None:
    _current.reset(token)


@contextmanager
def tracing(trace: bytes):
    """Scope ``trace`` as the active id for a block."""
    token = set_trace(trace)
    try:
        yield
    finally:
        _current.reset(token)


def trace_hex(trace: bytes) -> str:
    """Hex form for span records; ``""`` for the no-trace value."""
    if not trace or not any(trace):
        return ""
    return bytes(trace).hex()


class SpanWriter:
    """Append-only JSON-lines span log for one entity.

    Thread-safe; the file opens lazily (so constructing a writer for a
    directory that may never log costs nothing) and every record is one
    ``json.dumps(sort_keys=True)`` line flushed immediately -- readable
    mid-run by ``python -m repro.obs.report``.
    """

    def __init__(self, path: str, entity: str):
        self.path = path
        self.entity = entity
        self._lock = threading.Lock()
        self._handle = None

    def span(
        self, event: str, trace: bytes = b"", **fields
    ) -> None:
        """Write one span record; bytes-typed fields are refused."""
        record = {
            "ts": time.time(),
            "entity": self.entity,
            "event": event,
            "trace": trace_hex(trace),
        }
        for name, value in fields.items():
            if isinstance(value, (bytes, bytearray, memoryview)):
                raise TypeError(
                    "span field %r carries bytes; telemetry must never "
                    "contain payloads or key material" % name
                )
            if value is not None:
                record[name] = value
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def metrics(self, snapshot: dict) -> None:
        """Write a point-in-time metrics snapshot into the span stream."""
        self.span("metrics", snapshot=snapshot)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def writer_for(
    obs_dir: Optional[str], entity: str
) -> Optional[SpanWriter]:
    """A :class:`SpanWriter` at ``<obs_dir>/obs.jsonl``, or ``None``."""
    if not obs_dir:
        return None
    return SpanWriter(os.path.join(obs_dir, "obs.jsonl"), entity)
