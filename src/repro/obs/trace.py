"""Compact trace ids, the per-task trace context, and span records.

A trace id is 16 opaque random bytes minted at an operation's origin
(a subscriber starting a registration, a publisher starting a rekey
broadcast) and carried on every wire frame the operation produces, so
one registration or rekey can be followed idmgr -> publisher -> broker
-> relay -> subscriber across process boundaries.

On the wire the id rides as an optional *trailing* field (see
``repro.net.protocol.pack_trace``): an all-zeros trace is simply
omitted, so untraced traffic stays byte-identical to the pre-trace
protocol and old frames decode as "no trace".  In process, the current
id lives in a :class:`contextvars.ContextVar`, which is inherited by
asyncio tasks and independent per thread -- exactly the mix
``TcpTransport`` runs.

Span records are the per-hop evidence: one JSON line per event in an
entity's ``obs.jsonl`` (under its ``--data-dir``/``--obs-dir``),
carrying *routing-level facts only* -- timestamps, entity names, kind
labels, byte sizes, hex trace ids.  :meth:`SpanWriter.span` refuses
bytes-typed field values outright, so payload bytes and key material
cannot end up in telemetry by construction.

On top of the flat point events sits the *causal* layer: every span
record may carry a ``span`` id (8 random bytes, hex) and a ``parent``
id, and :func:`stage` emits **duration-carrying** records (``event``
``"span"`` with ``start``/``dur``) around named stages of the hot
paths (``ocbe.build``, ``acv.solve``, ``wal.fsync``, ``publish``,
``decrypt``).  The current span id lives in its own context variable
next to the trace id; :meth:`_Endpoint.pump` re-parents at every hop
by minting a ``handle`` span and scoping it around the handler, so
one publish produces a tree spanning publisher -> broker -> relays ->
subscribers that ``repro.obs.analyze`` stitches back together.  Stage
records go to the *process-global* writer (:func:`set_span_writer`)
so the store/gkm/wire layers need no plumbing -- and cost one global
read when none is installed.  Span ids never touch the wire: frames
carry only the 16-byte trace id, and cross-process parent/child edges
are inferred by the analyzer, which is what keeps traced traffic
byte-identical to PR 7's.
"""

from __future__ import annotations

import contextvars
import json
import os
import threading
import time
from contextlib import contextmanager
from typing import Optional

__all__ = [
    "SPAN_ID_LEN",
    "TRACE_LEN",
    "ZERO_TRACE",
    "SpanWriter",
    "current_span",
    "current_trace",
    "get_span_writer",
    "new_span_id",
    "new_trace_id",
    "set_span_writer",
    "set_trace",
    "spanning",
    "stage",
    "trace_hex",
    "tracing",
]

#: Trace ids are exactly this many bytes on the wire.
TRACE_LEN = 16

#: Span ids are this many random bytes, logged as hex (never on the wire).
SPAN_ID_LEN = 8

#: The "no trace" value; frames encode it by omission.
ZERO_TRACE = b"\x00" * TRACE_LEN

_current: contextvars.ContextVar[bytes] = contextvars.ContextVar(
    "repro_obs_trace", default=b""
)

_current_span: contextvars.ContextVar[str] = contextvars.ContextVar(
    "repro_obs_span", default=""
)


def new_trace_id() -> bytes:
    """A fresh random 16-byte trace id (never all zeros)."""
    while True:
        trace = os.urandom(TRACE_LEN)
        if any(trace):
            return trace


def current_trace() -> bytes:
    """The active trace id, or ``b""`` when none is set."""
    return _current.get()


def set_trace(trace: bytes) -> "contextvars.Token":
    """Install ``trace`` as the active id; returns the reset token.

    Zero/empty traces normalize to "no trace" so a hop never propagates
    a meaningless all-zeros id.
    """
    if not trace or not any(trace):
        trace = b""
    return _current.set(bytes(trace))


def reset_trace(token: "contextvars.Token") -> None:
    _current.reset(token)


@contextmanager
def tracing(trace: bytes):
    """Scope ``trace`` as the active id for a block."""
    token = set_trace(trace)
    try:
        yield
    finally:
        _current.reset(token)


def trace_hex(trace: bytes) -> str:
    """Hex form for span records; ``""`` for the no-trace value."""
    if not trace or not any(trace):
        return ""
    return bytes(trace).hex()


class SpanWriter:
    """Append-only JSON-lines span log for one entity.

    Thread-safe; the file opens lazily (so constructing a writer for a
    directory that may never log costs nothing) and every record is one
    ``json.dumps(sort_keys=True)`` line flushed immediately -- readable
    mid-run by ``python -m repro.obs.report``.
    """

    def __init__(self, path: str, entity: str):
        self.path = path
        self.entity = entity
        self._lock = threading.Lock()
        self._handle = None

    def span(
        self, event: str, trace: bytes = b"", **fields
    ) -> None:
        """Write one span record; bytes-typed fields are refused."""
        record = {
            "ts": time.time(),
            "entity": self.entity,
            "event": event,
            "trace": trace_hex(trace),
        }
        for name, value in fields.items():
            if isinstance(value, (bytes, bytearray, memoryview)):
                raise TypeError(
                    "span field %r carries bytes; telemetry must never "
                    "contain payloads or key material" % name
                )
            if value is not None:
                record[name] = value
        line = json.dumps(record, sort_keys=True, separators=(",", ":"))
        with self._lock:
            if self._handle is None:
                directory = os.path.dirname(self.path)
                if directory:
                    os.makedirs(directory, exist_ok=True)
                self._handle = open(self.path, "a", encoding="utf-8")
            self._handle.write(line + "\n")
            self._handle.flush()

    def metrics(self, snapshot: dict) -> None:
        """Write a point-in-time metrics snapshot into the span stream."""
        self.span("metrics", snapshot=snapshot)

    def close(self) -> None:
        with self._lock:
            if self._handle is not None:
                self._handle.close()
                self._handle = None


def writer_for(
    obs_dir: Optional[str], entity: str
) -> Optional[SpanWriter]:
    """A :class:`SpanWriter` at ``<obs_dir>/obs.jsonl``, or ``None``."""
    if not obs_dir:
        return None
    return SpanWriter(os.path.join(obs_dir, "obs.jsonl"), entity)


# -- causal spans -----------------------------------------------------------


def new_span_id() -> str:
    """A fresh random span id (hex, :data:`SPAN_ID_LEN` bytes of entropy)."""
    return os.urandom(SPAN_ID_LEN).hex()


def current_span() -> str:
    """The active span id, or ``""`` when none is open."""
    return _current_span.get()


@contextmanager
def spanning(span_id: str):
    """Scope ``span_id`` as the active parent for a block.

    This is the hop re-parenting primitive: an endpoint's pump loop
    mints a ``handle`` span per delivery and scopes it around the
    handler, so every stage the handler runs (a decrypt, a WAL append,
    an OCBE build) parents under the hop that caused it.
    """
    token = _current_span.set(span_id)
    try:
        yield
    finally:
        _current_span.reset(token)


#: The process-global writer :func:`stage` records go to.  ``None``
#: (the default) turns every stage into a single global read -- the
#: hot paths stay uninstrumented unless an engine or entity CLI opts
#: the process in.
_span_writer: Optional[SpanWriter] = None


def set_span_writer(writer: Optional[SpanWriter]) -> Optional[SpanWriter]:
    """Install the process-global stage writer; returns the previous one
    (so an embedded engine can restore whatever the host had)."""
    global _span_writer
    previous = _span_writer
    _span_writer = writer
    return previous


def get_span_writer() -> Optional[SpanWriter]:
    """The process-global stage writer, or ``None``."""
    return _span_writer


@contextmanager
def stage(name: str, **fields):
    """Time a named stage as one duration-carrying span record.

    Emits a single ``event == "span"`` line at exit -- ``span`` id,
    ``parent`` (the enclosing stage or hop span, omitted at a root),
    ``stage`` name, wall-clock ``start`` and monotonic ``dur`` seconds
    -- to the process-global writer, under the ambient trace id.
    Nested stages parent naturally through the span context variable.
    No-op (one global read) when no writer is installed.
    """
    writer = _span_writer
    if writer is None:
        yield
        return
    span_id = new_span_id()
    parent = current_span()
    token = _current_span.set(span_id)
    start = time.time()
    begun = time.perf_counter()
    try:
        yield
    finally:
        _current_span.reset(token)
        writer.span(
            "span",
            trace=current_trace(),
            span=span_id,
            parent=parent or None,
            stage=name,
            start=start,
            dur=time.perf_counter() - begun,
            **fields,
        )
