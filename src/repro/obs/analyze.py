"""``python -m repro.obs.analyze``: stitch span logs into trace trees.

:mod:`repro.obs.report` renders the *flat* picture -- who logged what.
This module answers the operator's real question: *where does a
publish's latency go?*  It takes the per-entity ``obs.jsonl`` files
written by separate OS processes and

1. **corrects per-process clock skew.**  Each file is one clock
   domain.  Every frame crossing a link leaves a (send, receive)
   timestamp pair in two different files -- a ``publish`` point paired
   with the broker's ``broadcast``, a ``broadcast`` paired with each
   subscriber ``handle``, a unicast ``send`` paired with the matching
   ``deliver`` and ``handle``.  For a directed file pair (P, Q) the
   smallest observed ``recv - send`` difference ``d_PQ`` bounds
   ``min_transit + (theta_Q - theta_P)``; when both directions exist
   the offset is ``(d_PQ - d_QP) / 2`` (symmetric-transit assumption),
   one-way pairs fall back to ``d_PQ`` (assumes the fastest frame had
   ~zero transit, i.e. the estimate eats the minimum transit).  Offsets
   propagate over a BFS spanning tree from the reference file, and
   every corrected time is ``raw - theta``.

2. **stitches trace trees.**  Duration-carrying stage records
   (``event == "span"``) carry ``span``/``parent`` ids; hop point
   events (``handle``/``send``/``publish``) carry the hop span id.
   Within a file the tree is explicit; across files the edges are
   inferred from the hop pairing above -- span ids never travel on the
   wire.

3. **attributes the critical path.**  Per trace: end-to-end wall =
   corrected last end - first start; per stage *self time* =
   ``max(0, dur - sum(child durs))`` (the clamp makes forged parents,
   cycles and duplicate ids safe -- they degrade to
   :class:`TraceProblem` records, never a crash or a mis-attribution);
   hop transit = for broadcast traces, the corrected first-arrival gap
   plus each receiving file's *idle* time between the trace's arrivals
   (extent minus the instants covered by any span -- skew-free, since
   each file is compared only against itself); for unicast traces, the
   sum of matched per-frame send->handle gaps, capped at the trace
   wall.  Aggregation yields, per stage, count / total / share of the
   *union* wall of the traces' intervals / p50 / p95 / p99 -- the
   table ``LoadReport`` embeds per phase and CI gates on.

This module imports **no crypto**: like the rest of ``repro.obs`` it
must stay importable from a keyless relay-tier process.
"""

from __future__ import annotations

import argparse
import json
import math
import os
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.obs.report import discover, load_spans

__all__ = [
    "Analysis",
    "TraceProblem",
    "TraceView",
    "analyze_paths",
    "attribution_table",
    "clock_offsets",
    "exact_quantile",
    "format_attribution",
    "format_top",
    "main",
]

#: Stage name under which hop transit appears in attribution tables.
TRANSIT_STAGE = "hop.transit"

#: Residual (wall not covered by any stage or transit) in the tables.
OTHER_STAGE = "other"


@dataclass(frozen=True)
class TraceProblem:
    """One typed defect found while stitching -- partial result, not a crash."""

    kind: str  #: e.g. ``"bad-span-record"``, ``"unknown-parent"``, ``"parent-cycle"``
    path: str  #: the obs.jsonl file the defect was found in
    detail: str
    trace: str = ""

    def __str__(self) -> str:
        where = "%s [%s]" % (self.path, self.trace[:12]) if self.trace else self.path
        return "%s: %s: %s" % (self.kind, where, self.detail)


@dataclass
class TraceView:
    """One stitched trace: corrected extent, per-stage self time, transit."""

    trace: str
    kind: str  #: ``"publish"`` (broadcast-rooted) or ``"unicast"``
    start: float  #: corrected first instant
    end: float  #: corrected last instant
    files: Tuple[str, ...]
    stage_self: Dict[str, float] = field(default_factory=dict)
    stage_counts: Dict[str, int] = field(default_factory=dict)
    transit_s: float = 0.0
    hops: List[dict] = field(default_factory=list)
    problems: List[TraceProblem] = field(default_factory=list)
    stitched: bool = False

    @property
    def wall_s(self) -> float:
        return max(0.0, self.end - self.start)

    def coverage(self) -> float:
        """Fraction of the wall accounted for by named stages + transit."""
        wall = self.wall_s
        if wall <= 0.0:
            return 0.0
        return (sum(self.stage_self.values()) + self.transit_s) / wall


@dataclass
class Analysis:
    """Everything :func:`analyze_paths` learned from one set of span logs."""

    files: List[str]
    reference: str
    offsets: Dict[str, float]
    traces: List[TraceView]
    problems: List[TraceProblem]

    @property
    def publish_traces(self) -> List[TraceView]:
        return [t for t in self.traces if t.kind == "publish"]

    @property
    def stitched_fraction(self) -> float:
        publishes = self.publish_traces
        if not publishes:
            return 0.0
        return sum(1 for t in publishes if t.stitched) / len(publishes)

    def publish_attribution(self) -> dict:
        return attribution_table(self.publish_traces)


# -- clock skew -------------------------------------------------------------


def _span_record_problem(record: dict) -> str:
    """Why ``record`` is not a valid stage span, or ``""`` when it is."""
    span = record.get("span")
    if not isinstance(span, str) or not span:
        return "missing/empty 'span' id"
    name = record.get("stage")
    if not isinstance(name, str) or not name:
        return "missing/empty 'stage'"
    for key in ("start", "dur"):
        value = record.get(key)
        if (
            not isinstance(value, (int, float))
            or isinstance(value, bool)
            or not math.isfinite(value)
        ):
            return "missing/non-finite %r" % key
    if record["dur"] < 0:
        return "negative 'dur'"
    parent = record.get("parent")
    if parent is not None and (not isinstance(parent, str) or not parent):
        return "non-string 'parent'"
    return ""


def _ts(record: dict) -> float:
    return float(record["ts"])


class _FileIndex:
    """Per-file views of the hop-relevant point events (raw timestamps)."""

    def __init__(self, path: str, records: List[dict]):
        self.path = path
        self.records = records
        self.publishes: List[dict] = []
        self.broadcasts: List[dict] = []
        self.handles: List[dict] = []
        self.sends: List[dict] = []
        self.delivers: List[dict] = []
        self.is_root = False
        for record in records:
            event = record.get("event")
            if event == "publish":
                self.publishes.append(record)
            elif event == "broadcast":
                self.broadcasts.append(record)
            elif event == "handle":
                self.handles.append(record)
            elif event == "send":
                self.sends.append(record)
            elif event == "deliver":
                self.delivers.append(record)
            elif event in ("connect", "relay_connect", "attach"):
                # Only the root broker logs connection admission events;
                # that marks its file as the origin of seq-stamped fan-out.
                self.is_root = True

    @staticmethod
    def _grouped(records: List[dict], key) -> Dict[tuple, List[float]]:
        out: Dict[tuple, List[float]] = {}
        for record in sorted(records, key=_ts):
            out.setdefault(key(record), []).append(_ts(record))
        return out


def _directed_minima(
    indexes: List[_FileIndex],
) -> Dict[Tuple[str, str], float]:
    """``d_PQ = min(recv - send)`` for every directed file pair observed."""
    minima: Dict[Tuple[str, str], float] = {}

    def feed(p: str, q: str, send_ts: float, recv_ts: float) -> None:
        if p == q:
            return
        key = (p, q)
        delta = recv_ts - send_ts
        if key not in minima or delta < minima[key]:
            minima[key] = delta

    for origin in indexes:
        if not origin.publishes:
            continue
        pub_by_trace = {r["trace"]: _ts(r) for r in origin.publishes if r["trace"]}
        for other in indexes:
            if other is origin:
                continue
            for bc in other.broadcasts:
                sent = pub_by_trace.get(bc["trace"])
                if sent is not None:
                    feed(origin.path, other.path, sent, _ts(bc))
    for upstream in indexes:
        if not upstream.broadcasts:
            continue
        for downstream in indexes:
            if downstream is upstream:
                continue
            handles_by_tk: Dict[tuple, List[float]] = {}
            for h in downstream.handles:
                if h["trace"]:
                    handles_by_tk.setdefault(
                        (h["trace"], h.get("kind")), []
                    ).append(_ts(h))
            for bc in upstream.broadcasts:
                for recv in handles_by_tk.get((bc["trace"], bc.get("kind")), []):
                    feed(upstream.path, downstream.path, _ts(bc), recv)
            if upstream.is_root and downstream.broadcasts:
                by_seq = {
                    b.get("seq"): _ts(b)
                    for b in downstream.broadcasts
                    if b.get("seq") is not None
                }
                for bc in upstream.broadcasts:
                    recv = by_seq.get(bc.get("seq"))
                    if bc.get("seq") is not None and recv is not None:
                        feed(upstream.path, downstream.path, _ts(bc), recv)
    def send_key(r):
        return (r.get("ep"), r.get("receiver"), r.get("kind"))

    def deliver_key(r):
        return (r.get("sender"), r.get("receiver"), r.get("kind"))

    def handle_key(r):
        return (r.get("sender"), r.get("ep"), r.get("kind"))

    def feed_zipped(p: str, q: str, sent_times, recv_times) -> None:
        # The nth-send-to-nth-receive pairing is only sound when both
        # sides saw every frame of the key: a member that re-attached to
        # a different relay mid-run splits its frames across relay logs,
        # and zipping one relay's partial view against the member's full
        # view pairs unrelated frames (observed as a bogus multi-second
        # clock offset).  Mismatched counts mean a partial view -- skip.
        if not sent_times or len(sent_times) != len(recv_times):
            return
        for sent, recv in zip(sent_times, recv_times):
            feed(p, q, sent, recv)

    grouped = _FileIndex._grouped
    for p in indexes:
        sends = grouped(p.sends, send_key)
        delivers_p = grouped(p.delivers, deliver_key)
        for q in indexes:
            if q is p:
                continue
            if sends:
                for key, times in grouped(q.delivers, deliver_key).items():
                    feed_zipped(p.path, q.path, sends.get(key, ()), times)
                for key, times in grouped(q.handles, handle_key).items():
                    feed_zipped(p.path, q.path, sends.get(key, ()), times)
            if delivers_p:
                for key, times in grouped(q.handles, handle_key).items():
                    feed_zipped(p.path, q.path, delivers_p.get(key, ()), times)
    return minima


def clock_offsets(
    per_file: Dict[str, List[dict]], reference: str
) -> Tuple[Dict[str, float], List[TraceProblem]]:
    """Per-file clock offsets ``theta`` (corrected time = raw - theta).

    ``reference`` anchors the frame at offset ``0.0``.  Files connected
    to the reference through hop pairs get the pairwise estimate
    described in the module docstring, propagated breadth-first; files
    with no usable pair stay at ``0.0`` and draw an ``"unsynced-file"``
    problem so the caller knows their times are uncorrected.
    """
    indexes = [_FileIndex(path, records) for path, records in per_file.items()]
    minima = _directed_minima(indexes)
    neighbors: Dict[str, set] = {path: set() for path in per_file}
    for p, q in minima:
        neighbors.setdefault(p, set()).add(q)
        neighbors.setdefault(q, set()).add(p)
    offsets: Dict[str, float] = {reference: 0.0}
    queue = [reference]
    while queue:
        here = queue.pop(0)
        for there in sorted(neighbors.get(here, ())):
            if there in offsets:
                continue
            forward = minima.get((here, there))
            backward = minima.get((there, here))
            if forward is not None and backward is not None:
                delta = (forward - backward) / 2.0
            elif forward is not None:
                delta = forward
            else:
                delta = -backward
            offsets[there] = offsets[here] + delta
            queue.append(there)
    problems: List[TraceProblem] = []
    for path in per_file:
        if path not in offsets:
            offsets[path] = 0.0
            if per_file[path]:
                problems.append(TraceProblem(
                    kind="unsynced-file", path=path,
                    detail="no hop pair connects this file to the reference; "
                           "its timestamps are used uncorrected",
                ))
    return offsets, problems


# -- stitching --------------------------------------------------------------


def _stitch_file(view: TraceView, path: str, records: List[dict]) -> None:
    """Fold one file's records for one trace into ``view`` (in place)."""
    spans: Dict[str, dict] = {}
    known_ids = set()
    for record in records:
        span_id = record.get("span")
        if isinstance(span_id, str) and span_id:
            known_ids.add(span_id)
        event = record.get("event")
        if event == "span":
            reason = _span_record_problem(record)
            if reason:
                view.problems.append(TraceProblem(
                    kind="bad-span-record", path=path,
                    detail=reason, trace=view.trace,
                ))
                continue
            if record["span"] in spans:
                view.problems.append(TraceProblem(
                    kind="duplicate-span", path=path,
                    detail="span id %s logged twice" % record["span"],
                    trace=view.trace,
                ))
                continue
            spans[record["span"]] = record
    child_dur: Dict[str, float] = {}
    for record in spans.values():
        parent = record.get("parent")
        if parent:
            child_dur[parent] = child_dur.get(parent, 0.0) + record["dur"]
            if parent not in known_ids:
                view.problems.append(TraceProblem(
                    kind="unknown-parent", path=path,
                    detail="span %s parents under unknown id %s"
                           % (record["span"], parent),
                    trace=view.trace,
                ))
    # Cycle detection: a forged parent chain must terminate the walk,
    # not hang it.  Attribution stays safe regardless (self time is
    # clamped), but the defect is surfaced as a typed problem.
    visited_ok = set()
    for span_id in spans:
        chain = []
        seen = set()
        here: Optional[str] = span_id
        while here is not None and here in spans:
            if here in visited_ok:
                break
            if here in seen:
                view.problems.append(TraceProblem(
                    kind="parent-cycle", path=path,
                    detail="parent chain of span %s revisits %s"
                           % (span_id, here),
                    trace=view.trace,
                ))
                break
            seen.add(here)
            chain.append(here)
            here = spans[here].get("parent")
        else:
            visited_ok.update(chain)
            continue
        if here in visited_ok:
            visited_ok.update(chain)
    for span_id, record in spans.items():
        self_time = max(0.0, record["dur"] - child_dur.get(span_id, 0.0))
        name = record["stage"]
        view.stage_self[name] = view.stage_self.get(name, 0.0) + self_time
        view.stage_counts[name] = view.stage_counts.get(name, 0) + 1


def _hop_row(record: dict, offset: float) -> dict:
    event = record["event"]
    detail = record.get("kind") or record.get("document") or ""
    who = record.get("ep") or record.get("entity", "")
    if event == "handle":
        detail = "%s from %s" % (detail, record.get("sender", "?"))
    elif event == "send":
        detail = "%s to %s" % (detail, record.get("receiver", "?"))
    elif event == "deliver":
        detail = "%s %s->%s" % (
            detail, record.get("sender", "?"), record.get("receiver", "?"),
        )
    elif event == "broadcast" and record.get("seq") is not None:
        detail = "%s seq=%s" % (detail, record["seq"])
    return {
        "t": _ts(record) - offset,
        "entity": who,
        "event": event,
        "detail": detail,
    }


_HOP_EVENTS = (
    "publish", "broadcast", "deliver", "send", "handle", "broadcast_received",
)


def _extent(record: dict, offset: float) -> Tuple[float, float]:
    if record.get("event") == "span" and not _span_record_problem(record):
        start = float(record["start"]) - offset
        return start, start + float(record["dur"])
    t = _ts(record) - offset
    return t, t


def _busy_intervals(records: List[dict]) -> List[List[float]]:
    """Merged ``[start, end]`` intervals covered by *any* span record in
    one file, in that file's raw clock -- the "this process was doing
    instrumented work" timeline the idle-gap transit is measured against.
    """
    spans = []
    for record in records:
        if record.get("event") != "span":
            continue
        start = record.get("start")
        dur = record.get("dur")
        if (isinstance(start, (int, float)) and isinstance(dur, (int, float))
                and math.isfinite(start) and math.isfinite(dur) and dur > 0.0):
            spans.append((float(start), float(start) + float(dur)))
    spans.sort()
    merged: List[List[float]] = []
    for start, end in spans:
        if merged and start <= merged[-1][1]:
            merged[-1][1] = max(merged[-1][1], end)
        else:
            merged.append([start, end])
    return merged


def _overlap(busy: List[List[float]], lo: float, hi: float) -> float:
    """Seconds of ``[lo, hi]`` covered by the merged ``busy`` intervals."""
    covered = 0.0
    for start, end in busy:
        if end <= lo:
            continue
        if start >= hi:
            break
        covered += min(end, hi) - max(start, lo)
    return covered


def _idle_gaps(
    by_file: Dict[str, List[dict]],
    busy_by_file: Dict[str, List[List[float]]],
) -> float:
    """Per-file arrival-wait time for one trace, in raw file clocks.

    For each file the trace touched: from its first inbound frame event
    to its last record, how long was the process running *no* span of
    *any* trace?  In a serial pump that is exactly the time this trace's
    remaining frames sat on the wire or in queues while nothing else
    was being done -- the dominant cost of a fan-out over real sockets.
    Skew never enters: each file is compared only against itself.
    """
    total = 0.0
    for path, records in by_file.items():
        lo = math.inf
        hi = -math.inf
        for record in records:
            t0, t1 = _extent(record, 0.0)
            if record.get("event") in ("handle", "broadcast", "deliver"):
                lo = min(lo, t0)
            hi = max(hi, t1)
        if lo < hi:
            total += (hi - lo) - _overlap(busy_by_file.get(path, []), lo, hi)
    return total


def _transit_publish(view: TraceView, by_file: Dict[str, List[dict]],
                     offsets: Dict[str, float]) -> float:
    origin = None
    arrivals: List[float] = []
    for path, records in by_file.items():
        theta = offsets.get(path, 0.0)
        for record in records:
            event = record.get("event")
            if event == "publish":
                t = _ts(record) - theta
                if origin is None or t < origin:
                    origin = t
            elif event in ("handle", "broadcast"):
                arrivals.append(_ts(record) - theta)
    if origin is None or not arrivals:
        return 0.0
    transit = min(arrivals) - origin
    if transit < 0.0:
        view.problems.append(TraceProblem(
            kind="negative-transit", path="", trace=view.trace,
            detail="first arrival precedes the publish by %.6fs after "
                   "skew correction; clamped to 0" % -transit,
        ))
        return 0.0
    return transit


def _transit_unicast(view: TraceView, by_file: Dict[str, List[dict]],
                     offsets: Dict[str, float]) -> float:
    sends: Dict[tuple, List[float]] = {}
    handles: Dict[tuple, List[float]] = {}
    for path, records in by_file.items():
        theta = offsets.get(path, 0.0)
        for record in records:
            event = record.get("event")
            if event == "send":
                key = (record.get("ep"), record.get("receiver"),
                       record.get("kind"))
                sends.setdefault(key, []).append(_ts(record) - theta)
            elif event == "handle":
                key = (record.get("sender"), record.get("ep"),
                       record.get("kind"))
                handles.setdefault(key, []).append(_ts(record) - theta)
    total = 0.0
    for key, sent_times in sends.items():
        recv_times = handles.get(key, [])
        for sent, recv in zip(sorted(sent_times), sorted(recv_times)):
            total += max(0.0, recv - sent)
    return total


def _stitch_traces(
    per_file: Dict[str, List[dict]], offsets: Dict[str, float]
) -> List[TraceView]:
    grouped: Dict[str, Dict[str, List[dict]]] = {}
    for path, records in per_file.items():
        for record in records:
            trace = record.get("trace")
            if trace:
                grouped.setdefault(trace, {}).setdefault(path, []).append(record)
    busy_by_file = {
        path: _busy_intervals(records) for path, records in per_file.items()
    }
    views: List[TraceView] = []
    for trace_id in sorted(grouped):
        by_file = grouped[trace_id]
        kind = "unicast"
        for records in by_file.values():
            if any(r.get("event") == "publish" for r in records):
                kind = "publish"
                break
        start = math.inf
        end = -math.inf
        for path, records in by_file.items():
            theta = offsets.get(path, 0.0)
            for record in records:
                t0, t1 = _extent(record, theta)
                start = min(start, t0)
                end = max(end, t1)
        view = TraceView(
            trace=trace_id, kind=kind, start=start, end=end,
            files=tuple(sorted(by_file)),
        )
        for path, records in by_file.items():
            _stitch_file(view, path, records)
        if kind == "publish":
            # Cross-file first-arrival gap (skew-corrected) plus per-file
            # arrival-wait gaps (raw, skew-free): the wire time to the
            # first receiver and the queue dwell of every later frame.
            view.transit_s = _transit_publish(view, by_file, offsets)
            view.transit_s += _idle_gaps(by_file, busy_by_file)
        else:
            view.transit_s = _transit_unicast(view, by_file, offsets)
        # A registration trace runs several request/ack/aux/envelope
        # chains concurrently under one id; their queue waits overlap in
        # wall time, so the summed transit is capped at the trace's wall
        # to keep attribution shares meaningful.
        view.transit_s = min(view.transit_s, view.wall_s)
        hops = []
        for path, records in by_file.items():
            theta = offsets.get(path, 0.0)
            for record in records:
                if record.get("event") in _HOP_EVENTS:
                    hops.append(_hop_row(record, theta))
        view.hops = sorted(hops, key=lambda row: row["t"])
        views.append(view)
    # "Fully stitched" is judged against the files that participate in
    # *any* publish trace (an idmgr that never sees a broadcast must not
    # make every publish look partial).
    expected = set()
    for view in views:
        if view.kind == "publish":
            expected.update(view.files)
    for view in views:
        if view.kind == "publish":
            view.stitched = bool(expected) and set(view.files) == expected
    return views


# -- aggregation ------------------------------------------------------------


def exact_quantile(values: Sequence[float], q: float) -> float:
    """Linear-interpolated quantile of an unsorted sample (exact, not
    bucketed -- the per-trace lists here are small)."""
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    q = min(max(q, 0.0), 1.0)
    position = q * (len(ordered) - 1)
    low = int(position)
    high = min(low + 1, len(ordered) - 1)
    fraction = position - low
    return ordered[low] + (ordered[high] - ordered[low]) * fraction


def _union_wall(traces: Sequence[TraceView]) -> float:
    """Total wall covered by the traces' ``[start, end]`` intervals,
    overlaps counted once -- concurrent traces (a rekey from every
    publisher, 64 interleaved registrations) must not inflate the
    denominator the shares are computed over."""
    intervals = sorted(
        (t.start, t.end) for t in traces if t.end > t.start
    )
    total = 0.0
    current_start = current_end = None
    for start, end in intervals:
        if current_end is None or start > current_end:
            if current_end is not None:
                total += current_end - current_start
            current_start, current_end = start, end
        else:
            current_end = max(current_end, end)
    if current_end is not None:
        total += current_end - current_start
    return total


def attribution_table(traces: Sequence[TraceView]) -> dict:
    """Aggregate per-stage attribution over ``traces`` (JSON-safe dict).

    ``share`` is each stage's total self time over the *union* wall of
    the traces' intervals (overlaps counted once); ``hop.transit``
    rides as a pseudo-stage -- publish traces only, where it is the
    first-arrival transit and bounded by the trace wall -- and
    ``other`` is the unattributed residual.  A share can legitimately
    exceed 100% when parallel processes burn CPU concurrently.
    """
    wall = _union_wall(traces)
    per_stage_values: Dict[str, List[float]] = {}
    per_stage_counts: Dict[str, int] = {}
    for trace in traces:
        for name, seconds in trace.stage_self.items():
            per_stage_values.setdefault(name, []).append(seconds)
            per_stage_counts[name] = (
                per_stage_counts.get(name, 0) + trace.stage_counts.get(name, 0)
            )
        if trace.kind == "publish":
            per_stage_values.setdefault(TRANSIT_STAGE, []).append(
                trace.transit_s
            )
            per_stage_counts[TRANSIT_STAGE] = (
                per_stage_counts.get(TRANSIT_STAGE, 0) + 1
            )
    stages = {}
    attributed = 0.0
    for name in sorted(per_stage_values):
        values = per_stage_values[name]
        total = sum(values)
        attributed += total
        stages[name] = {
            "count": per_stage_counts.get(name, len(values)),
            "total_s": total,
            "share": (total / wall) if wall > 0.0 else 0.0,
            "p50_s": exact_quantile(values, 0.50),
            "p95_s": exact_quantile(values, 0.95),
            "p99_s": exact_quantile(values, 0.99),
        }
    coverage = (attributed / wall) if wall > 0.0 else 0.0
    if wall > 0.0 and attributed < wall:
        stages[OTHER_STAGE] = {
            "count": len(traces),
            "total_s": wall - attributed,
            "share": 1.0 - coverage,
            "p50_s": 0.0, "p95_s": 0.0, "p99_s": 0.0,
        }
    return {
        "traces": len(traces),
        "wall_s": wall,
        "coverage": coverage,
        "stages": stages,
    }


def analyze_paths(
    paths: Iterable[str], reference: Optional[str] = None
) -> Analysis:
    """Discover, validate, skew-correct and stitch every span log under
    ``paths``; ``reference`` pins the clock frame (default: the file
    with the most ``publish`` events, ties to the lexicographically
    first path)."""
    files = discover(paths)
    per_file: Dict[str, List[dict]] = {}
    problems: List[TraceProblem] = []
    for path in files:
        records, bad = load_spans(path)
        per_file[path] = records
        for defect in bad:
            problems.append(TraceProblem(
                kind="malformed-line", path=path,
                detail="line %d: %s" % (defect.lineno, defect.reason),
            ))
    if reference is None or reference not in per_file:
        if reference is not None:
            problems.append(TraceProblem(
                kind="unknown-reference", path=reference,
                detail="requested reference file was not discovered; "
                       "falling back to the default choice",
            ))
        reference = ""
        best = -1
        for path in sorted(per_file):
            publishes = sum(
                1 for r in per_file[path] if r.get("event") == "publish"
            )
            if publishes > best:
                best = publishes
                reference = path
    offsets, skew_problems = clock_offsets(per_file, reference) if per_file \
        else ({}, [])
    problems.extend(skew_problems)
    traces = _stitch_traces(per_file, offsets)
    for view in traces:
        problems.extend(view.problems)
    return Analysis(
        files=files, reference=reference, offsets=offsets,
        traces=traces, problems=problems,
    )


# -- rendering --------------------------------------------------------------


def format_attribution(table: dict, title: str = "latency attribution") -> str:
    from repro.bench.runner import format_table

    rows = []
    for name, cut in table.get("stages", {}).items():
        rows.append([
            name, cut["count"], cut["total_s"] * 1e3,
            "%5.1f%%" % (cut["share"] * 100.0),
            cut["p50_s"] * 1e3, cut["p95_s"] * 1e3, cut["p99_s"] * 1e3,
        ])
    rows.sort(key=lambda row: -float(row[2]))
    header = "%s: %d trace(s), %.1f ms wall, %.1f%% attributed" % (
        title, table.get("traces", 0), table.get("wall_s", 0.0) * 1e3,
        table.get("coverage", 0.0) * 100.0,
    )
    if not rows:
        return header + " (no stages)"
    return header + "\n" + format_table(
        "per-stage", ["stage", "n", "total ms", "share", "p50 ms",
                      "p95 ms", "p99 ms"], rows,
    )


def format_top(analysis: Analysis, count: int) -> str:
    """The ``count`` slowest fully-stitched publish traces, one per-hop
    breakdown each -- the outlier-eyeballing view after a soak run."""
    stitched = sorted(
        (t for t in analysis.publish_traces if t.stitched),
        key=lambda t: -t.wall_s,
    )[:max(0, count)]
    if not stitched:
        return "top traces: no fully-stitched publish traces"
    lines = ["top %d slowest fully-stitched publish trace(s):" % len(stitched)]
    for view in stitched:
        lines.append(
            "  trace %s  wall %.3f ms  transit %.3f ms  coverage %.1f%%"
            % (view.trace[:16], view.wall_s * 1e3, view.transit_s * 1e3,
               view.coverage() * 100.0)
        )
        for hop in view.hops:
            lines.append("    +%8.3f ms  %-10s %-18s %s" % (
                (hop["t"] - view.start) * 1e3, hop["entity"],
                hop["event"], hop["detail"],
            ))
        for name in sorted(view.stage_self):
            lines.append("    stage %-18s %8.3f ms (n=%d)" % (
                name, view.stage_self[name] * 1e3,
                view.stage_counts.get(name, 0),
            ))
    return "\n".join(lines)


def _emit_bench(name: str, analysis: Analysis, table: dict) -> str:
    from repro.bench.runner import Measurement, emit_bench_json

    measurements = {}
    walls = [t.wall_s for t in analysis.publish_traces] or [0.0]
    measurements["publish_wall"] = Measurement(
        mean=sum(walls) / len(walls), minimum=min(walls),
        maximum=max(walls), rounds=len(walls),
    )
    for stage_name, cut in table.get("stages", {}).items():
        if stage_name == OTHER_STAGE:
            continue
        count = max(1, int(cut["count"]))
        measurements["stage_" + stage_name.replace(".", "_")] = Measurement(
            mean=cut["total_s"] / count, minimum=cut["p50_s"],
            maximum=cut["p99_s"], rounds=count,
        )
    return emit_bench_json(
        name,
        op="obs.attribution",
        params={
            "files": len(analysis.files),
            "publish_traces": len(analysis.publish_traces),
        },
        measurements=measurements,
        extra={
            "attribution": table,
            "stitched_fraction": analysis.stitched_fraction,
            "problems": len(analysis.problems),
        },
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.analyze",
        description="Stitch obs.jsonl span logs into trace trees and "
                    "attribute end-to-end latency per stage.",
    )
    parser.add_argument("paths", nargs="*", default=["."],
                        help="obs.jsonl files or directories to scan")
    parser.add_argument("--reference", default=None,
                        help="span file whose clock anchors skew correction")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero unless enough publish traces "
                             "stitched fully across all participating files")
    parser.add_argument("--min-stitched", type=float, default=0.95,
                        help="--check: minimum fully-stitched fraction of "
                             "publish traces (default 0.95)")
    parser.add_argument("--min-coverage", type=float, default=0.0,
                        help="--check: minimum attributed fraction of "
                             "publish wall (default: not gated)")
    parser.add_argument("--bench", metavar="NAME", default=None,
                        help="also emit BENCH_<NAME>.json trend data")
    parser.add_argument("--top", type=int, default=0, metavar="N",
                        help="print the N slowest fully-stitched traces "
                             "with per-hop breakdowns")
    args = parser.parse_args(argv)

    analysis = analyze_paths(args.paths or ["."], reference=args.reference)
    publishes = analysis.publish_traces
    print("%d span file(s), %d trace(s): %d publish (%d fully stitched), "
          "%d unicast" % (
              len(analysis.files), len(analysis.traces), len(publishes),
              sum(1 for t in publishes if t.stitched),
              len(analysis.traces) - len(publishes),
          ))
    for path in analysis.files:
        marker = " (reference)" if path == analysis.reference else ""
        print("  %s  offset %+0.6fs%s" % (
            path, analysis.offsets.get(path, 0.0), marker,
        ))
    table = analysis.publish_attribution()
    print(format_attribution(table, title="publish attribution"))
    unicast = [t for t in analysis.traces if t.kind == "unicast"]
    if unicast:
        print(format_attribution(
            attribution_table(unicast), title="registration attribution",
        ))
    if args.top:
        print(format_top(analysis, args.top))
    if analysis.problems:
        by_kind: Dict[str, int] = {}
        for problem in analysis.problems:
            by_kind[problem.kind] = by_kind.get(problem.kind, 0) + 1
        print("problems: " + ", ".join(
            "%s=%d" % (kind, count) for kind, count in sorted(by_kind.items())
        ))
        for problem in analysis.problems[:20]:
            print("  " + str(problem))
    if args.bench:
        print("wrote %s" % _emit_bench(args.bench, analysis, table))

    if args.check:
        failed = False
        if not analysis.files:
            print("CHECK FAILED: no span files under %s" % (args.paths,))
            failed = True
        elif not publishes:
            print("CHECK FAILED: no publish traces to attribute")
            failed = True
        else:
            fraction = analysis.stitched_fraction
            if fraction < args.min_stitched:
                print("CHECK FAILED: %.1f%% of publish traces fully "
                      "stitched < required %.1f%%" % (
                          fraction * 100.0, args.min_stitched * 100.0))
                failed = True
            if args.min_coverage > 0.0 and table["coverage"] < args.min_coverage:
                print("CHECK FAILED: %.1f%% of publish wall attributed "
                      "< required %.1f%%" % (
                          table["coverage"] * 100.0,
                          args.min_coverage * 100.0))
                failed = True
        if failed:
            return 1
        print("CHECK OK")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
