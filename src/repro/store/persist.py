"""Per-entity persistence adapters: live objects <-> :class:`StateStore`.

Each adapter plays two roles:

* **recovery** -- ``attach()`` opens the data directory, applies the
  recovered snapshot + WAL tail to a freshly *built* entity (construction
  stays with :mod:`repro.net.bootstrap` / the caller; the store only owns
  the state that cannot be rebuilt: tables, wallets, registries, keys,
  epochs), and refuses with :class:`~repro.errors.SnapshotMismatchError`
  when the directory belongs to a different deployment (wrong entity
  name, drifted policy set, wrong group);
* **journaling** -- the adapter then installs itself as the entity's
  ``journal``: every state transition the entity announces (a CSS
  minted, a token issued, an epoch advanced, ...) is appended to the WAL
  *before* the triggering reply leaves the process, and after
  ``compact_every`` records the WAL is folded into a fresh snapshot.

A fresh directory gets an immediate snapshot on attach, so base state
that never changes again (the IdMgr's signing key, a publisher's policy
configuration) is durable from the first moment.
"""

from __future__ import annotations

from typing import List, Tuple

from repro.errors import LogCorruptionError, SnapshotMismatchError
from repro.obs.metrics import get_registry
from repro.store.snapshots import (
    CredentialRevokedRecord,
    CssExtractedRecord,
    CssInstalledRecord,
    EpochAdvancedRecord,
    GkmStrategyChangedRecord,
    IdMgrSnapshot,
    PublisherSnapshot,
    StateRecord,
    SubscriberSnapshot,
    SubscriptionRevokedRecord,
    TokenHeldRecord,
    TokenIssuedRecord,
    decode_state,
)
from repro.store.state import StateStore

__all__ = [
    "DEFAULT_COMPACT_EVERY",
    "IdMgrPersistence",
    "PublisherPersistence",
    "SubscriberPersistence",
]

#: WAL records tolerated before the adapter folds them into a snapshot.
DEFAULT_COMPACT_EVERY = 256


class _Persistence:
    """Shared open/apply/compact plumbing."""

    SNAPSHOT_CLS: type = StateRecord

    def __init__(
        self, store: StateStore, entity, compact_every: int = DEFAULT_COMPACT_EVERY
    ):
        self.store = store
        self.entity = entity
        self.compact_every = compact_every
        #: True when the data directory held state from a previous run.
        self.recovered = store.recovered
        self._apply_recovered()
        store.release_recovered()  # applied once; don't carry the log forever
        entity.journal = self

    @classmethod
    def attach(
        cls,
        data_dir: str,
        entity,
        sync: bool = True,
        compact_every: int = DEFAULT_COMPACT_EVERY,
    ) -> "_Persistence":
        """Open ``data_dir``, recover ``entity`` from it, start journaling."""
        self = cls(StateStore(data_dir, sync=sync), entity, compact_every)
        if not self.recovered:
            self.snapshot_now()  # base state is durable from the start
        return self

    # -- recovery ----------------------------------------------------------

    def _group(self):
        raise NotImplementedError

    def _apply_snapshot(self, snapshot: StateRecord) -> None:
        raise NotImplementedError

    def _apply_record(self, record: StateRecord) -> None:
        raise NotImplementedError

    def _build_snapshot(self) -> StateRecord:
        raise NotImplementedError

    def _apply_recovered(self) -> None:
        group = self._group()
        if self.store.snapshot is not None:
            snapshot = decode_state(
                self.store.snapshot.type_id, self.store.snapshot.payload, group
            )
            if not isinstance(snapshot, self.SNAPSHOT_CLS):
                raise SnapshotMismatchError(
                    "data dir holds a %s, expected a %s"
                    % (type(snapshot).__name__, self.SNAPSHOT_CLS.__name__)
                )
            self._apply_snapshot(snapshot)
        for raw in self.store.tail:
            self._apply_record(decode_state(raw.type_id, raw.payload, group))

    # -- journaling --------------------------------------------------------

    def _journal(self, record: StateRecord) -> None:
        self.store.append(record.TYPE_ID, record.to_bytes())
        if self.store.pending_records >= self.compact_every:
            self.snapshot_now()

    def snapshot_now(self) -> None:
        """Fold the live entity state into a fresh snapshot + empty WAL."""
        registry = get_registry()
        with registry.timer("store.compaction_seconds"):
            snapshot = self._build_snapshot()
            self.store.save_snapshot(snapshot.TYPE_ID, snapshot.to_bytes())
        registry.inc("store.compactions")

    def close(self) -> None:
        if getattr(self.entity, "journal", None) is self:
            self.entity.journal = None
        self.store.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class IdMgrPersistence(_Persistence):
    """Durable IdMgr: signing key, pseudonym counter, issued-token registry."""

    SNAPSHOT_CLS = IdMgrSnapshot

    def _group(self):
        return self.entity.group

    def _apply_snapshot(self, snapshot: IdMgrSnapshot) -> None:
        idmgr = self.entity
        if snapshot.group_name != idmgr.group.name:
            raise SnapshotMismatchError(
                "snapshot group %r does not match IdMgr group %r"
                % (snapshot.group_name, idmgr.group.name)
            )
        idmgr.restore_signing_key(snapshot.signing_key)
        idmgr.restore_registry(snapshot.nym_counter, snapshot.issued)

    def _apply_record(self, record: StateRecord) -> None:
        if isinstance(record, TokenIssuedRecord):
            self.entity.issued.append((record.nym, record.tag, record.decoy))
        else:
            raise LogCorruptionError(
                "%s in an IdMgr WAL" % type(record).__name__
            )

    def _build_snapshot(self) -> IdMgrSnapshot:
        idmgr = self.entity
        return IdMgrSnapshot(
            group_name=idmgr.group.name,
            signing_key=idmgr.signing_key,
            nym_counter=idmgr.nym_counter,
            issued=tuple(idmgr.issued),
        )

    # journal protocol (called by IdentityManager)

    def token_issued(self, nym: str, tag: str, decoy: bool) -> None:
        self._journal(TokenIssuedRecord(nym=nym, tag=tag, decoy=decoy))


class PublisherPersistence(_Persistence):
    """Durable publisher: policy configuration, CSS table ``T``, GKM epoch."""

    SNAPSHOT_CLS = PublisherSnapshot

    def _group(self):
        return self.entity.params.pedersen.group

    def _apply_snapshot(self, snapshot: PublisherSnapshot) -> None:
        publisher = self.entity
        if snapshot.name != publisher.name:
            raise SnapshotMismatchError(
                "snapshot publisher %r does not match %r"
                % (snapshot.name, publisher.name)
            )
        if sorted(p.describe() for p in snapshot.policies) != sorted(
            p.describe() for p in publisher.policies
        ):
            raise SnapshotMismatchError(
                "snapshot policy set differs from the configured policies; "
                "a changed deployment needs a fresh data dir"
            )
        publisher.epoch = snapshot.epoch
        # The strategy the durable table was broadcast under wins over
        # whatever the restarted process was configured with: recovery
        # must rekey with the same bucket layout its subscribers know.
        publisher.set_gkm_strategy(
            snapshot.gkm, snapshot.gkm_bucket_size or None
        )
        for nym, cells in snapshot.table:
            for condition_key, css in cells:
                publisher.table.set(nym, condition_key, css)

    def _apply_record(self, record: StateRecord) -> None:
        publisher = self.entity
        if isinstance(record, CssInstalledRecord):
            publisher.table.set(record.nym, record.condition_key, record.css)
        elif isinstance(record, CredentialRevokedRecord):
            publisher.table.remove_cell(record.nym, record.condition_key)
        elif isinstance(record, SubscriptionRevokedRecord):
            publisher.table.remove_row(record.nym)
        elif isinstance(record, EpochAdvancedRecord):
            publisher.epoch = record.epoch
        elif isinstance(record, GkmStrategyChangedRecord):
            publisher.set_gkm_strategy(
                record.gkm, record.gkm_bucket_size or None
            )
        else:
            raise LogCorruptionError(
                "%s in a publisher WAL" % type(record).__name__
            )

    def _build_snapshot(self) -> PublisherSnapshot:
        publisher = self.entity
        return PublisherSnapshot(
            name=publisher.name,
            epoch=publisher.epoch,
            policies=tuple(publisher.policies),
            table=publisher.table.rows(),
            gkm=publisher.gkm,
            gkm_bucket_size=publisher.gkm_bucket_size or 0,
        )

    # journal protocol (called by Publisher)

    def css_installed(self, nym: str, condition_key: str, css: bytes) -> None:
        self._journal(
            CssInstalledRecord(nym=nym, condition_key=condition_key, css=css)
        )

    def credential_revoked(self, nym: str, condition_key: str) -> None:
        self._journal(
            CredentialRevokedRecord(nym=nym, condition_key=condition_key)
        )

    def subscription_revoked(self, nym: str) -> None:
        self._journal(SubscriptionRevokedRecord(nym=nym))

    def epoch_advanced(self, epoch: int) -> None:
        self._journal(EpochAdvancedRecord(epoch=epoch))

    def gkm_strategy_changed(self, gkm: str, bucket_size: int) -> None:
        self._journal(
            GkmStrategyChangedRecord(gkm=gkm, gkm_bucket_size=bucket_size)
        )


class SubscriberPersistence(_Persistence):
    """Durable subscriber: token wallet (with openings) + extracted CSSs."""

    SNAPSHOT_CLS = SubscriberSnapshot

    def _group(self):
        return self.entity.params.pedersen.group

    def _apply_snapshot(self, snapshot: SubscriberSnapshot) -> None:
        subscriber = self.entity
        if snapshot.nym != subscriber.nym:
            raise SnapshotMismatchError(
                "snapshot nym %r does not match subscriber %r"
                % (snapshot.nym, subscriber.nym)
            )
        for token, x, r in snapshot.tokens(self._group()):
            subscriber.hold_token(token, x, r)
        for condition_key, css in snapshot.css:
            subscriber.store_css(condition_key, css)

    def _apply_record(self, record: StateRecord) -> None:
        subscriber = self.entity
        if isinstance(record, TokenHeldRecord):
            subscriber.hold_token(record.token(self._group()), record.x, record.r)
        elif isinstance(record, CssExtractedRecord):
            subscriber.store_css(record.condition_key, record.css)
        else:
            raise LogCorruptionError(
                "%s in a subscriber WAL" % type(record).__name__
            )

    def _build_snapshot(self) -> SubscriberSnapshot:
        subscriber = self.entity
        wallet: List[Tuple[bytes, int, int]] = [
            (entry.token.to_bytes(), entry.x, entry.r)
            for entry in subscriber.wallet_entries()
        ]
        return SubscriberSnapshot(
            nym=subscriber.nym,
            wallet=tuple(wallet),
            css=tuple(sorted(subscriber.css_store.items())),
        )

    # journal protocol (called by Subscriber)

    def token_held(self, token, x: int, r: int) -> None:
        self._journal(TokenHeldRecord(token_raw=token.to_bytes(), x=x, r=r))

    def css_extracted(self, condition_key: str, css: bytes) -> None:
        self._journal(CssExtractedRecord(condition_key=condition_key, css=css))
