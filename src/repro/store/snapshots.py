"""Typed on-disk encodings for each entity's durable state.

Two families share one numeric type-id space (the record framing in
:mod:`repro.store.wal` carries the id):

* **snapshots** -- a full copy of one entity's long-lived secret state:
  the IdMgr's signing key, pseudonym counter and issued-token registry;
  the publisher's policy configuration, CSS table ``T`` and GKM epoch;
  a subscriber's token wallet (with private openings) and extracted
  CSSs.
* **WAL records** -- the individual state *transitions* journaled
  between snapshots: a token issued, a CSS installed in ``T``, a
  credential or subscription revoked, an epoch advanced, a token held or
  a CSS extracted on the subscriber side.

Every class mirrors the :mod:`repro.wire.messages` discipline: a stable
``TYPE_ID``, an exact ``to_bytes`` (``byte_size() == len(to_bytes())``),
and a bounds-checked ``from_payload`` that raises
:class:`~repro.errors.SerializationError` on any malformed input --
recovery must be as hostile-input-proof as the sockets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple, Type

from repro.errors import SerializationError
from repro.gkm.strategy import GKM_STRATEGIES
from repro.groups.base import CyclicGroup
from repro.policy.acp import AccessControlPolicy
from repro.system.identity import IdentityToken
from repro.wire.codec import (
    Cursor,
    pack_bool,
    pack_bytes,
    pack_scalar,
    pack_str,
    pack_u16,
    pack_u32,
)
from repro.wire.messages import pack_condition, read_condition

__all__ = [
    "StateRecord",
    "IdMgrSnapshot",
    "PublisherSnapshot",
    "SubscriberSnapshot",
    "TokenIssuedRecord",
    "CssInstalledRecord",
    "CredentialRevokedRecord",
    "SubscriptionRevokedRecord",
    "EpochAdvancedRecord",
    "TokenHeldRecord",
    "CssExtractedRecord",
    "GkmStrategyChangedRecord",
    "STORE_RECORD_TYPES",
    "decode_state",
]


class StateRecord:
    """Base class: subclasses define ``TYPE_ID`` and the codec."""

    TYPE_ID: int = -1

    def to_bytes(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "StateRecord":
        raise NotImplementedError

    def byte_size(self) -> int:
        """Exact encoded size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())


def _pack_policy(policy: AccessControlPolicy) -> bytes:
    out = bytearray(pack_u16(len(policy.conditions)))
    for condition in policy.conditions:
        out += pack_condition(condition)
    objects = sorted(policy.objects)
    out += pack_u16(len(objects))
    for name in objects:
        out += pack_str(name)
    out += pack_str(policy.document)
    return bytes(out)


def _read_policy(cursor: Cursor) -> AccessControlPolicy:
    conditions = tuple(
        read_condition(cursor) for _ in range(cursor.read_u16())
    )
    objects = frozenset(cursor.read_str() for _ in range(cursor.read_u16()))
    document = cursor.read_str()
    try:
        return AccessControlPolicy(
            conditions=conditions, objects=objects, document=document
        )
    except Exception as exc:  # empty conditions/objects: PolicyParseError
        raise SerializationError("invalid policy in snapshot: %s" % exc) from exc


# -- snapshots ---------------------------------------------------------------


@dataclass(frozen=True)
class IdMgrSnapshot(StateRecord):
    """The IdMgr's secret state: signing key, pseudonym counter, and the
    registry of issued tokens ``(nym, tag, decoy?)``."""

    group_name: str
    signing_key: int
    nym_counter: int
    issued: Tuple[Tuple[str, str, bool], ...]

    TYPE_ID = 1

    def to_bytes(self) -> bytes:
        out = bytearray(pack_str(self.group_name))
        out += pack_scalar(self.signing_key)
        out += pack_u32(self.nym_counter)
        out += pack_u32(len(self.issued))
        for nym, tag, decoy in self.issued:
            out += pack_str(nym) + pack_str(tag) + pack_bool(decoy)
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "IdMgrSnapshot":
        cursor = Cursor(payload)
        group_name = cursor.read_str()
        signing_key = cursor.read_scalar()
        nym_counter = cursor.read_u32()
        count = cursor.read_u32()
        issued = tuple(
            (cursor.read_str(), cursor.read_str(), cursor.read_bool())
            for _ in range(count)
        )
        cursor.expect_end()
        return cls(
            group_name=group_name,
            signing_key=signing_key,
            nym_counter=nym_counter,
            issued=issued,
        )


@dataclass(frozen=True)
class PublisherSnapshot(StateRecord):
    """The publisher's durable state: the policy configuration it was
    serving (recorded so recovery can refuse a drifted deployment), the
    CSS table ``T``, the GKM epoch (how many ACV rekeys this table has
    been broadcast under), and the publish-path GKM strategy + bucket
    layout, so a crash-recovered publisher rekeys with the exact
    configuration its subscribers were dispatched under.

    ``gkm_bucket_size`` 0 encodes "unset" (dense) or the bucketed auto
    ``ceil(sqrt(m))`` policy -- both mean "no fixed rows-per-bucket"."""

    name: str
    epoch: int
    policies: Tuple[AccessControlPolicy, ...]
    table: Tuple[Tuple[str, Tuple[Tuple[str, bytes], ...]], ...]
    gkm: str = "dense"
    gkm_bucket_size: int = 0

    TYPE_ID = 2

    def to_bytes(self) -> bytes:
        out = bytearray(pack_str(self.name))
        out += pack_u32(self.epoch)
        out += pack_u16(len(self.policies))
        for policy in self.policies:
            out += _pack_policy(policy)
        out += pack_u32(len(self.table))
        for nym, cells in self.table:
            out += pack_str(nym)
            out += pack_u16(len(cells))
            for condition_key, css in cells:
                out += pack_str(condition_key) + pack_bytes(css)
        out += pack_str(self.gkm)
        out += pack_u32(self.gkm_bucket_size)
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "PublisherSnapshot":
        cursor = Cursor(payload)
        name = cursor.read_str()
        epoch = cursor.read_u32()
        policies = tuple(_read_policy(cursor) for _ in range(cursor.read_u16()))
        rows = []
        for _ in range(cursor.read_u32()):
            nym = cursor.read_str()
            cells = tuple(
                (cursor.read_str(), cursor.read_bytes())
                for _ in range(cursor.read_u16())
            )
            rows.append((nym, cells))
        gkm = cursor.read_str()
        if gkm not in GKM_STRATEGIES:
            raise SerializationError("unknown GKM strategy %r in snapshot" % gkm)
        gkm_bucket_size = cursor.read_u32()
        cursor.expect_end()
        return cls(
            name=name,
            epoch=epoch,
            policies=policies,
            table=tuple(rows),
            gkm=gkm,
            gkm_bucket_size=gkm_bucket_size,
        )


@dataclass(frozen=True)
class SubscriberSnapshot(StateRecord):
    """A subscriber's secret state: the token wallet *with private
    openings* ``(x, r)`` and the CSS cache extracted over past
    registrations.  This file is as sensitive as the wallet itself."""

    nym: str
    wallet: Tuple[Tuple[bytes, int, int], ...]  # (token bytes, x, r)
    css: Tuple[Tuple[str, bytes], ...]

    TYPE_ID = 3

    def to_bytes(self) -> bytes:
        out = bytearray(pack_str(self.nym))
        out += pack_u16(len(self.wallet))
        for token_raw, x, r in self.wallet:
            out += pack_bytes(token_raw) + pack_scalar(x) + pack_scalar(r)
        out += pack_u16(len(self.css))
        for condition_key, css in self.css:
            out += pack_str(condition_key) + pack_bytes(css)
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "SubscriberSnapshot":
        cursor = Cursor(payload)
        nym = cursor.read_str()
        wallet = tuple(
            (cursor.read_bytes(), cursor.read_scalar(), cursor.read_scalar())
            for _ in range(cursor.read_u16())
        )
        css = tuple(
            (cursor.read_str(), cursor.read_bytes())
            for _ in range(cursor.read_u16())
        )
        cursor.expect_end()
        return cls(nym=nym, wallet=wallet, css=css)

    def tokens(self, group: CyclicGroup) -> Tuple[Tuple[IdentityToken, int, int], ...]:
        """The wallet with token bytes decoded against ``group``."""
        return tuple(
            (IdentityToken.from_bytes(raw, group), x, r)
            for raw, x, r in self.wallet
        )


# -- WAL records -------------------------------------------------------------


@dataclass(frozen=True)
class TokenIssuedRecord(StateRecord):
    """IdMgr: one token left the building (registry entry, not the token)."""

    nym: str
    tag: str
    decoy: bool

    TYPE_ID = 16

    def to_bytes(self) -> bytes:
        return pack_str(self.nym) + pack_str(self.tag) + pack_bool(self.decoy)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "TokenIssuedRecord":
        cursor = Cursor(payload)
        record = cls(
            nym=cursor.read_str(),
            tag=cursor.read_str(),
            decoy=cursor.read_bool(),
        )
        cursor.expect_end()
        return record


@dataclass(frozen=True)
class CssInstalledRecord(StateRecord):
    """Publisher: a CSS was minted into table cell ``(nym, condition)``.

    Journaled *before* the registration ack leaves, so an acked
    registration is always recoverable (the write-ahead contract)."""

    nym: str
    condition_key: str
    css: bytes

    TYPE_ID = 17

    def to_bytes(self) -> bytes:
        return (
            pack_str(self.nym)
            + pack_str(self.condition_key)
            + pack_bytes(self.css)
        )

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "CssInstalledRecord":
        cursor = Cursor(payload)
        record = cls(
            nym=cursor.read_str(),
            condition_key=cursor.read_str(),
            css=cursor.read_bytes(),
        )
        cursor.expect_end()
        return record


@dataclass(frozen=True)
class CredentialRevokedRecord(StateRecord):
    """Publisher: one CSS cell dropped (credential revocation)."""

    nym: str
    condition_key: str

    TYPE_ID = 18

    def to_bytes(self) -> bytes:
        return pack_str(self.nym) + pack_str(self.condition_key)

    @classmethod
    def from_payload(
        cls, payload: bytes, group: CyclicGroup
    ) -> "CredentialRevokedRecord":
        cursor = Cursor(payload)
        record = cls(nym=cursor.read_str(), condition_key=cursor.read_str())
        cursor.expect_end()
        return record


@dataclass(frozen=True)
class SubscriptionRevokedRecord(StateRecord):
    """Publisher: a pseudonym's whole row dropped (subscription ends)."""

    nym: str

    TYPE_ID = 19

    def to_bytes(self) -> bytes:
        return pack_str(self.nym)

    @classmethod
    def from_payload(
        cls, payload: bytes, group: CyclicGroup
    ) -> "SubscriptionRevokedRecord":
        cursor = Cursor(payload)
        record = cls(nym=cursor.read_str())
        cursor.expect_end()
        return record


@dataclass(frozen=True)
class EpochAdvancedRecord(StateRecord):
    """Publisher: one ACV rekey broadcast went out under this epoch."""

    epoch: int

    TYPE_ID = 20

    def to_bytes(self) -> bytes:
        return pack_u32(self.epoch)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "EpochAdvancedRecord":
        cursor = Cursor(payload)
        record = cls(epoch=cursor.read_u32())
        cursor.expect_end()
        return record


@dataclass(frozen=True)
class TokenHeldRecord(StateRecord):
    """Subscriber: a token plus its private opening entered the wallet."""

    token_raw: bytes
    x: int
    r: int

    TYPE_ID = 21

    def to_bytes(self) -> bytes:
        return pack_bytes(self.token_raw) + pack_scalar(self.x) + pack_scalar(self.r)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "TokenHeldRecord":
        cursor = Cursor(payload)
        record = cls(
            token_raw=cursor.read_bytes(),
            x=cursor.read_scalar(),
            r=cursor.read_scalar(),
        )
        cursor.expect_end()
        return record

    def token(self, group: CyclicGroup) -> IdentityToken:
        return IdentityToken.from_bytes(self.token_raw, group)


@dataclass(frozen=True)
class CssExtractedRecord(StateRecord):
    """Subscriber: an OCBE transfer opened; the CSS is now held locally."""

    condition_key: str
    css: bytes

    TYPE_ID = 22

    def to_bytes(self) -> bytes:
        return pack_str(self.condition_key) + pack_bytes(self.css)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "CssExtractedRecord":
        cursor = Cursor(payload)
        record = cls(condition_key=cursor.read_str(), css=cursor.read_bytes())
        cursor.expect_end()
        return record


@dataclass(frozen=True)
class GkmStrategyChangedRecord(StateRecord):
    """Publisher: the publish-path GKM strategy was switched at runtime.

    Journaled by :meth:`~repro.system.publisher.Publisher.set_gkm_strategy`
    so a switch survives a crash before the next compaction snapshot --
    recovery must rekey under the layout the subscribers last saw."""

    gkm: str
    gkm_bucket_size: int

    TYPE_ID = 23

    def to_bytes(self) -> bytes:
        return pack_str(self.gkm) + pack_u32(self.gkm_bucket_size)

    @classmethod
    def from_payload(
        cls, payload: bytes, group: CyclicGroup
    ) -> "GkmStrategyChangedRecord":
        cursor = Cursor(payload)
        gkm = cursor.read_str()
        if gkm not in GKM_STRATEGIES:
            raise SerializationError("unknown GKM strategy %r in record" % gkm)
        record = cls(gkm=gkm, gkm_bucket_size=cursor.read_u32())
        cursor.expect_end()
        return record


STORE_RECORD_TYPES: Dict[int, Type[StateRecord]] = {
    cls.TYPE_ID: cls
    for cls in (
        IdMgrSnapshot,
        PublisherSnapshot,
        SubscriberSnapshot,
        TokenIssuedRecord,
        CssInstalledRecord,
        CredentialRevokedRecord,
        SubscriptionRevokedRecord,
        EpochAdvancedRecord,
        TokenHeldRecord,
        CssExtractedRecord,
        GkmStrategyChangedRecord,
    )
}


def decode_state(type_id: int, payload: bytes, group: CyclicGroup) -> StateRecord:
    """Decode one store record payload back into its typed form."""
    cls = STORE_RECORD_TYPES.get(type_id)
    if cls is None:
        raise SerializationError("unknown store record type %d" % type_id)
    return cls.from_payload(payload, group)
