"""Durable entity state: write-ahead log + snapshots + recovery.

The paper's entities hold long-lived secret state -- the publisher's CSS
table ``T``, the IdMgr's signing key and token registry, each
subscriber's wallet and extracted CSSs.  Losing any of it on a process
restart forces the O(N)-unicast re-registration storm the ACV-BGKM
scheme exists to avoid, so this package makes that state crash-proof:

* :mod:`repro.store.wal` -- the append-only record log (wire-framed,
  CRC-checked, torn-tail-tolerant);
* :mod:`repro.store.snapshots` -- typed byte encodings of each entity's
  full state and of the journaled transitions between snapshots;
* :mod:`repro.store.state` -- :class:`StateStore`, one data directory's
  atomic snapshot + generation-matched WAL with crash-safe compaction;
* :mod:`repro.store.persist` -- adapters recovering a live entity from a
  :class:`StateStore` and journaling its transitions from then on.

The ``python -m repro.net.*`` servers expose all of this as
``--data-dir``; a restarted publisher rejoins with its table intact and
resumes with one rekey *broadcast* -- zero unicast.
"""

from repro.store.persist import (
    DEFAULT_COMPACT_EVERY,
    IdMgrPersistence,
    PublisherPersistence,
    SubscriberPersistence,
)
from repro.store.snapshots import (
    CredentialRevokedRecord,
    CssExtractedRecord,
    CssInstalledRecord,
    EpochAdvancedRecord,
    IdMgrSnapshot,
    PublisherSnapshot,
    STORE_RECORD_TYPES,
    StateRecord,
    SubscriberSnapshot,
    SubscriptionRevokedRecord,
    TokenHeldRecord,
    TokenIssuedRecord,
    decode_state,
)
from repro.store.state import STORE_VERSION, StateStore
from repro.store.wal import WalRecord, WriteAheadLog, replay, scan_records

__all__ = [
    "DEFAULT_COMPACT_EVERY",
    "IdMgrPersistence",
    "PublisherPersistence",
    "SubscriberPersistence",
    "CredentialRevokedRecord",
    "CssExtractedRecord",
    "CssInstalledRecord",
    "EpochAdvancedRecord",
    "IdMgrSnapshot",
    "PublisherSnapshot",
    "STORE_RECORD_TYPES",
    "StateRecord",
    "SubscriberSnapshot",
    "SubscriptionRevokedRecord",
    "TokenHeldRecord",
    "TokenIssuedRecord",
    "decode_state",
    "STORE_VERSION",
    "StateStore",
    "WalRecord",
    "WriteAheadLog",
    "replay",
    "scan_records",
]
