"""Append-only write-ahead record log with CRC-checked, torn-tail-tolerant
records.

A WAL record is exactly a wire frame (:mod:`repro.wire.codec`:
``MAGIC || version || type || u32 length || payload``) followed by a
``u32`` CRC-32 over the frame bytes.  Reusing the wire framing means the
same max-frame cap and canonical-encoding hardening that protects the
sockets also protects the disk: an attacker (or a bad disk) cannot make
recovery allocate unbounded memory or crash with ``struct.error``.

Failure policy, in the order recovery can meet it:

* a record whose bytes are *all present* but fail a check (bad magic or
  version, payload length over the cap, CRC mismatch) raises
  :class:`~repro.errors.LogCorruptionError` -- the log is damaged and
  silently dropping interior records would resurrect revoked state;
* a record that simply *stops early* at end-of-file (torn tail) is the
  expected shape of a crash mid-``write``: replay returns everything
  before it and reports the clean end so the writer can truncate.

:class:`WriteAheadLog` truncates any torn tail when it opens a log for
appending, so one crashed append can never cascade into corruption of the
records written after recovery.
"""

from __future__ import annotations

import os
import struct
import zlib
from dataclasses import dataclass
from typing import Iterator, List, Tuple

from repro.errors import LogCorruptionError
from repro.obs.metrics import get_registry
from repro.obs.trace import stage
from repro.wire.codec import (
    DEFAULT_MAX_FRAME_PAYLOAD,
    FRAME_HEADER_SIZE,
    SerializationError,
    check_frame_length,
    encode_frame,
    parse_frame_header,
)

__all__ = [
    "CRC_SIZE",
    "WalRecord",
    "WriteAheadLog",
    "encode_record",
    "decode_record",
    "scan_records",
    "replay",
]

#: Width of the CRC-32 suffix on every record.
CRC_SIZE = 4


@dataclass(frozen=True)
class WalRecord:
    """One recovered log record: the frame type id and its payload."""

    type_id: int
    payload: bytes


def encode_record(
    type_id: int, payload: bytes, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> bytes:
    """``frame || crc32(frame)`` -- the on-disk record encoding."""
    frame = encode_frame(type_id, payload, max_payload)
    return frame + struct.pack(">I", zlib.crc32(frame))


def decode_record(
    data: bytes, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> WalRecord:
    """Parse exactly one record; trailing bytes are corruption."""
    records, clean_end = scan_records(data, max_payload)
    if len(records) != 1 or clean_end != len(data):
        raise LogCorruptionError(
            "expected exactly one complete record in %d bytes" % len(data)
        )
    return records[0]


def scan_records(
    data: bytes, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> Tuple[List[WalRecord], int]:
    """Scan a log image; returns ``(records, clean_end)``.

    ``clean_end`` is the offset just past the last complete, CRC-valid
    record; bytes beyond it are a torn tail (a strict prefix of one
    record).  Anything present-but-invalid raises
    :class:`LogCorruptionError`.
    """
    records: List[WalRecord] = []
    offset = 0
    total = len(data)
    while offset < total:
        if total - offset < FRAME_HEADER_SIZE:
            break  # torn tail: not even a full header
        header = data[offset : offset + FRAME_HEADER_SIZE]
        try:
            type_id, length = parse_frame_header(header)
            check_frame_length(length, max_payload)
        except SerializationError as exc:
            raise LogCorruptionError(
                "invalid record header at offset %d: %s" % (offset, exc)
            ) from exc
        frame_end = offset + FRAME_HEADER_SIZE + length
        if frame_end + CRC_SIZE > total:
            break  # torn tail: header promises more bytes than exist
        frame = data[offset:frame_end]
        (stored_crc,) = struct.unpack_from(">I", data, frame_end)
        if stored_crc != zlib.crc32(frame):
            raise LogCorruptionError(
                "CRC mismatch on the record at offset %d" % offset
            )
        records.append(
            WalRecord(type_id=type_id, payload=frame[FRAME_HEADER_SIZE:])
        )
        offset = frame_end + CRC_SIZE
    return records, offset


def replay(
    path: str, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> Iterator[WalRecord]:
    """Yield every complete record in the log at ``path``.

    A missing file replays as empty (a fresh data dir); a torn tail is
    dropped; interior damage raises :class:`LogCorruptionError`.
    """
    if not os.path.exists(path):
        return iter(())
    with open(path, "rb") as handle:
        data = handle.read()
    records, _ = scan_records(data, max_payload)
    return iter(records)


class WriteAheadLog:
    """An append-only record log open for writing.

    Opening an existing log replays it (the recovered records are kept on
    :attr:`recovered`) and truncates any torn tail, so the next append
    lands on a clean record boundary.  Each append writes one record in a
    single ``write`` call and, with ``sync=True`` (the default), fsyncs
    before returning -- the write-*ahead* contract: once ``append``
    returns, the transition survives a crash.
    """

    def __init__(
        self,
        path: str,
        max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD,
        sync: bool = True,
    ):
        self.path = path
        self.max_payload = max_payload
        self.sync = sync
        self.recovered: List[WalRecord] = []
        clean_end = 0
        size = 0
        if os.path.exists(path):
            with open(path, "rb") as handle:
                data = handle.read()
            size = len(data)
            self.recovered, clean_end = scan_records(data, max_payload)
        if clean_end != size:
            with open(path, "r+b") as handle:
                handle.truncate(clean_end)
        self._handle = open(path, "ab")
        self.record_count = len(self.recovered)

    def append(self, type_id: int, payload: bytes) -> None:
        """Durably append one record."""
        if self._handle.closed:
            raise LogCorruptionError("append to a closed log %r" % self.path)
        registry = get_registry()
        with stage("wal.append", size=len(payload)):
            with registry.timer("wal.append_seconds"):
                self._handle.write(
                    encode_record(type_id, payload, self.max_payload)
                )
                self._handle.flush()
                if self.sync:
                    with stage("wal.fsync"):
                        with registry.timer("wal.fsync_seconds"):
                            os.fsync(self._handle.fileno())
        registry.inc("wal.appends")
        self.record_count += 1

    def close(self) -> None:
        if not self._handle.closed:
            self._handle.flush()
            if self.sync:
                os.fsync(self._handle.fileno())
            self._handle.close()

    def __enter__(self) -> "WriteAheadLog":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
