"""The :class:`StateStore`: one entity's durable state directory.

On-disk layout (also diagrammed in ``DESIGN.md``)::

    <data-dir>/
        snapshot.bin      one wrapper record: store version, generation,
                          and the entity snapshot payload (atomic:
                          written to a temp file, fsynced, renamed)
        wal-<GGGGGGGG>.log  the write-ahead log for that snapshot
                          generation; first record is a genesis stamp
                          (store version + generation), then one record
                          per journaled state transition

Recovery sequence:

1. read ``snapshot.bin`` (if present): integrity-check the wrapper
   record, refuse foreign store versions, learn the generation ``g``;
2. open ``wal-g.log``: truncate any torn tail, verify its genesis stamp
   matches the snapshot's version *and* generation -- a mismatch means
   the directory holds halves of two different histories
   (:class:`~repro.errors.StoreVersionError`), never silently replayable;
3. expose the snapshot payload plus the journaled tail; the entity
   adapter in :mod:`repro.store.persist` applies both to a live object.

Compaction (``save_snapshot``) is crash-safe by ordering: the
generation-``g+1`` WAL (genesis only) is created first, then the new
snapshot is atomically renamed into place, then stale WALs are deleted.
A crash between any two steps leaves exactly one coherent
(snapshot, WAL) pair to recover from.
"""

from __future__ import annotations

import os
import re
from typing import List, Optional

from repro.errors import LogCorruptionError, StoreVersionError
from repro.store.wal import WalRecord, WriteAheadLog, decode_record, encode_record
from repro.wire.codec import (
    DEFAULT_MAX_FRAME_PAYLOAD,
    Cursor,
    SerializationError,
    pack_bytes,
    pack_u8,
    pack_u16,
    pack_u32,
)

__all__ = ["STORE_VERSION", "SNAPSHOT_WRAPPER_TYPE", "WAL_GENESIS_TYPE", "StateStore"]

#: Bumped on any incompatible change to the wrapper/genesis layout or the
#: snapshot encodings; recovery refuses foreign versions loudly.
#: Version 2: PublisherSnapshot carries the publish-path GKM strategy and
#: bucket layout, so a v1 data dir refuses with a clear StoreVersionError
#: instead of a corruption-shaped parse failure.
STORE_VERSION = 2

#: Record type of the snapshot file's single wrapper record.
SNAPSHOT_WRAPPER_TYPE = 254
#: Record type of the stamp opening every WAL file.
WAL_GENESIS_TYPE = 255

SNAPSHOT_FILE = "snapshot.bin"
_WAL_RE = re.compile(r"^wal-(\d{8})\.log$")


def _genesis_payload(generation: int) -> bytes:
    return pack_u16(STORE_VERSION) + pack_u32(generation)


def _read_versioned(cursor: Cursor, what: str) -> int:
    """Read and validate the ``store version`` field; returns generation."""
    version = cursor.read_u16()
    if version != STORE_VERSION:
        raise StoreVersionError(
            "%s was written by store version %d (speaking %d)"
            % (what, version, STORE_VERSION)
        )
    return cursor.read_u32()


class StateStore:
    """Durable snapshot + WAL pair for one entity's data directory."""

    #: Cap on the snapshot file's wrapper record.  Deliberately far above
    #: the per-frame wire cap: a WAL record is sized like one protocol
    #: message, but a snapshot aggregates an entity's *whole* state (the
    #: CSS table grows O(subscribers)), and it is a trusted local file
    #: guarded by a CRC -- rejecting it at 16 MiB would wedge compaction
    #: for exactly the large deployments durability exists for.
    DEFAULT_MAX_SNAPSHOT_PAYLOAD = 1 << 30

    def __init__(
        self,
        data_dir: str,
        sync: bool = True,
        max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD,
        max_snapshot_payload: Optional[int] = None,
    ):
        self.data_dir = data_dir
        self.sync = sync
        self.max_payload = max_payload
        self.max_snapshot_payload = (
            max_snapshot_payload
            if max_snapshot_payload is not None
            else max(self.DEFAULT_MAX_SNAPSHOT_PAYLOAD, max_payload)
        )
        os.makedirs(data_dir, exist_ok=True)
        #: The recovered snapshot record (entity type id + payload), if any.
        self.snapshot: Optional[WalRecord] = None
        #: Entity records journaled after the snapshot, in append order.
        self.tail: List[WalRecord] = []
        self.generation = 0
        self._wal: Optional[WriteAheadLog] = None
        self._recovered = False
        self._recover()
        self._recovered = self.snapshot is not None or bool(self.tail)

    # -- recovery ----------------------------------------------------------

    def _snapshot_path(self) -> str:
        return os.path.join(self.data_dir, SNAPSHOT_FILE)

    def _wal_path(self, generation: int) -> str:
        return os.path.join(self.data_dir, "wal-%08d.log" % generation)

    def _recover(self) -> None:
        snap_path = self._snapshot_path()
        if os.path.exists(snap_path):
            with open(snap_path, "rb") as handle:
                wrapper = decode_record(handle.read(), self.max_snapshot_payload)
            if wrapper.type_id != SNAPSHOT_WRAPPER_TYPE:
                raise LogCorruptionError(
                    "snapshot file holds record type %d, not a snapshot wrapper"
                    % wrapper.type_id
                )
            try:
                cursor = Cursor(wrapper.payload)
                self.generation = _read_versioned(cursor, "snapshot")
                inner_type = cursor.read_u8()
                inner_payload = cursor.read_bytes()
                cursor.expect_end()
            except SerializationError as exc:
                raise LogCorruptionError(
                    "malformed snapshot wrapper: %s" % exc
                ) from exc
            self.snapshot = WalRecord(type_id=inner_type, payload=inner_payload)
            wal_path = self._wal_path(self.generation)
            if not os.path.exists(wal_path) or os.path.getsize(wal_path) == 0:
                # save_snapshot creates the generation's WAL (with its
                # genesis stamp) *before* the snapshot rename, so a
                # snapshot whose WAL is missing/empty means the log was
                # lost externally -- and with it, possibly revocations.
                # Guessing "nothing happened since the snapshot" would
                # resurrect revoked access; refuse instead.
                raise LogCorruptionError(
                    "snapshot generation %d has no write-ahead log; the "
                    "journaled transitions since that snapshot are lost"
                    % self.generation
                )

        self._wal = WriteAheadLog(
            self._wal_path(self.generation),
            max_payload=self.max_payload,
            sync=self.sync,
        )
        recovered = self._wal.recovered
        if recovered:
            genesis = recovered[0]
            if genesis.type_id != WAL_GENESIS_TYPE:
                raise LogCorruptionError(
                    "WAL does not open with a genesis stamp (type %d)"
                    % genesis.type_id
                )
            try:
                cursor = Cursor(genesis.payload)
                wal_generation = _read_versioned(cursor, "WAL")
                cursor.expect_end()
            except SerializationError as exc:
                raise LogCorruptionError(
                    "malformed WAL genesis stamp: %s" % exc
                ) from exc
            if wal_generation != self.generation:
                raise StoreVersionError(
                    "WAL generation %d does not match snapshot generation %d"
                    % (wal_generation, self.generation)
                )
            self.tail = list(recovered[1:])
        else:
            self._wal.append(WAL_GENESIS_TYPE, _genesis_payload(self.generation))
            self.tail = []
        self._remove_stray_wals()

    def _remove_stray_wals(self) -> None:
        """Drop WALs of other generations (pre-compaction leftovers)."""
        for name in os.listdir(self.data_dir):
            match = _WAL_RE.match(name)
            if match and int(match.group(1)) != self.generation:
                os.remove(os.path.join(self.data_dir, name))

    # -- state -------------------------------------------------------------

    @property
    def recovered(self) -> bool:
        """True when the directory held previous state (snapshot or tail)."""
        return self._recovered

    def release_recovered(self) -> None:
        """Drop the in-memory copies of the recovered snapshot and tail.

        Recovery applies them to a live entity exactly once; a
        long-running server must not carry the whole pre-crash log (and a
        possibly multi-MiB snapshot) for the rest of its life.
        :attr:`recovered` keeps answering for the original directory state.
        """
        self.snapshot = None
        self.tail = []
        if self._wal is not None:
            self._wal.recovered = []

    @property
    def pending_records(self) -> int:
        """Entity records in the current WAL (the compaction pressure)."""
        assert self._wal is not None
        return max(0, self._wal.record_count - 1)  # minus the genesis stamp

    # -- journaling --------------------------------------------------------

    def append(self, type_id: int, payload: bytes) -> None:
        """Durably journal one state transition."""
        if self._wal is None:
            raise LogCorruptionError("append on a closed StateStore")
        self._wal.append(type_id, payload)

    def save_snapshot(self, type_id: int, payload: bytes) -> None:
        """Atomically replace the snapshot and rotate to a fresh WAL."""
        if self._wal is None:
            raise LogCorruptionError("save_snapshot on a closed StateStore")
        new_generation = self.generation + 1
        # 0. encode first: an over-cap/unencodable snapshot must fail
        #    before any file exists, leaving the current pair untouched.
        wrapper = (
            pack_u16(STORE_VERSION)
            + pack_u32(new_generation)
            + pack_u8(type_id)
            + pack_bytes(payload)
        )
        encoded = encode_record(
            SNAPSHOT_WRAPPER_TYPE, wrapper, self.max_snapshot_payload
        )
        # 1. the next generation's WAL exists before the snapshot points
        #    at it, so a crash in between recovers cleanly either way.  A
        #    leftover wal-(G+1) from an earlier *failed* attempt (e.g. the
        #    snapshot write hit ENOSPC) is discarded first -- appending a
        #    second genesis stamp to it would poison the next recovery.
        new_path = self._wal_path(new_generation)
        if os.path.exists(new_path):
            os.remove(new_path)
        new_wal = WriteAheadLog(
            new_path, max_payload=self.max_payload, sync=self.sync,
        )
        new_wal.append(WAL_GENESIS_TYPE, _genesis_payload(new_generation))
        # 2. atomic snapshot replacement.
        snap_path = self._snapshot_path()
        tmp_path = snap_path + ".tmp"
        try:
            with open(tmp_path, "wb") as handle:
                handle.write(encoded)
                handle.flush()
                if self.sync:
                    os.fsync(handle.fileno())
            os.replace(tmp_path, snap_path)
        except Exception:
            new_wal.close()  # the retry discards and recreates the file
            raise
        if self.sync:
            self._sync_dir()
        # 3. retire the old generation.
        old_wal, self._wal = self._wal, new_wal
        old_wal.close()
        self.generation = new_generation
        self.snapshot = WalRecord(type_id=type_id, payload=payload)
        self.tail = []
        self._remove_stray_wals()

    def _sync_dir(self) -> None:
        """fsync the directory so the rename itself is durable."""
        try:
            fd = os.open(self.data_dir, os.O_RDONLY)
        except OSError:
            return  # platform without directory fds
        try:
            os.fsync(fd)
        except OSError:
            pass
        finally:
            os.close(fd)

    def close(self) -> None:
        if self._wal is not None:
            self._wal.close()
            self._wal = None

    def __enter__(self) -> "StateStore":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
