"""Exception hierarchy for the :mod:`repro` package.

All library-specific errors derive from :class:`ReproError` so callers can
catch a single base class.  Subclasses are grouped by subsystem.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class MathError(ReproError):
    """Errors from the number-theory / linear-algebra substrate."""


class NotInvertibleError(MathError):
    """An element has no multiplicative inverse (gcd with modulus != 1)."""


class NoSquareRootError(MathError):
    """A field element is not a quadratic residue."""


class FieldMismatchError(MathError):
    """Operands belong to different fields / rings."""


class SingularMatrixError(MathError):
    """A linear-algebra routine required an invertible matrix."""


class GroupError(ReproError):
    """Errors from the cyclic-group backends."""


class NotOnCurveError(GroupError):
    """A point/divisor does not satisfy the curve equation."""


class InvalidParameterError(ReproError):
    """A supplied parameter violates a documented precondition."""


class CryptoError(ReproError):
    """Errors from symmetric/asymmetric primitives."""


class AuthenticationError(CryptoError):
    """A MAC or signature failed to verify."""


class DecryptionError(CryptoError):
    """Ciphertext could not be decrypted (bad key, padding, or tag)."""


class CommitmentError(CryptoError):
    """A commitment failed to open to the claimed value."""


class OCBEError(ReproError):
    """Protocol errors in the OCBE family."""


class ProtocolStateError(OCBEError):
    """An OCBE message was received in the wrong protocol state."""


class PredicateError(OCBEError):
    """Unsupported or malformed predicate."""


class PolicyError(ReproError):
    """Errors in the policy language."""


class PolicyParseError(PolicyError):
    """A policy/condition string could not be parsed."""


class GKMError(ReproError):
    """Errors from group-key-management schemes."""


class KeyDerivationError(GKMError):
    """A subscriber failed to derive a group key."""


class CapacityError(GKMError):
    """A GKM instance exceeded its configured maximum size N."""


class DocumentError(ReproError):
    """Errors from the document model / broadcast packaging."""


class SerializationError(ReproError):
    """Malformed serialized bytes."""


class StoreError(ReproError):
    """Errors from the durable state layer (:mod:`repro.store`)."""


class LogCorruptionError(StoreError):
    """A fully-present WAL/snapshot record failed its integrity checks
    (bad magic, CRC mismatch, oversized declaration, mid-log garbage).
    A *truncated final* record is not corruption -- it is the expected
    shape of a torn write and is silently dropped on replay."""


class StoreVersionError(StoreError):
    """On-disk state was written by an incompatible store format version,
    or a snapshot and its WAL do not belong to the same generation."""


class SnapshotMismatchError(StoreError):
    """A recovered snapshot disagrees with the live entity it is being
    applied to (wrong entity name, different policy set, ...)."""


class BenchError(ReproError):
    """The benchmark harness could not record a result (unwritable output
    directory, a result file that cannot be replaced, ...)."""


class LoadScenarioError(ReproError):
    """A load scenario could not be run as specified (malformed spec,
    a phase operating on members that do not exist, driver misuse)."""


class InvariantViolation(ReproError):
    """A load-scenario invariant failed after a phase: a revoked member
    still derives the group key, a current member cannot, or a rekey
    produced unicast traffic.  Always a real bug, never noise."""


class SystemError_(ReproError):
    """Errors in the system layer (entities, transport, registration)."""


class NetworkError(SystemError_):
    """A socket-transport operation failed (connect, handshake, I/O,
    broker unreachable, or a peer closed the connection)."""


class SlowConsumerError(NetworkError):
    """A connection's outbound backlog exceeded its bound.

    The broker/relay slow-consumer policy: rather than queue without
    limit for a downstream that has stopped reading, the server
    disconnects the connection, counts the event (surfaced in
    ``StatsReply.counters``), and lets the entity's traffic fall back to
    its bounded offline inbox at the root."""


class RegistrationError(SystemError_):
    """Identity-token registration was rejected by the publisher."""


class SignatureError(SystemError_):
    """An identity token carries an invalid IdMgr signature."""
