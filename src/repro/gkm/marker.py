"""The reviewer's XOR/marker GKM scheme (Section VIII-D).

For a (sub)document with policies ``acp_1..acp_alpha`` the publisher picks
a random ``z`` and broadcasts, for every qualified (policy, subscriber)
row, the value ``(k || m) xor H(r_1 || ... || r_w || z)`` where ``m`` is a
well-known marker.  A subscriber hashes its CSS tuple with ``z`` and XORs
against every broadcast value; the one revealing the marker yields ``k``.

The paper accepts this scheme is plausible but highlights two drawbacks
which this implementation faithfully exhibits (and the test suite
demonstrates):

* the key must be strictly shorter than the hash output, and
* reusing ``z`` across two documents with the same user base leaks
  ``k1 xor k2`` to an attacker who knows ``k1``
  (``X1 xor X2 = (k1||m) xor (k2||m) xor 0``), whereas ACV-BGKM can reuse
  its nonces with independent ACVs safely.
"""

from __future__ import annotations

import random
import secrets
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashes import HashFunction, default_hash
from repro.errors import (
    InvalidParameterError,
    KeyDerivationError,
    SerializationError,
)
from repro.gkm.base import BroadcastGkm, RekeyBroadcast

__all__ = ["MarkerHeader", "MarkerBgkm", "MarkerBroadcastGkm", "DEFAULT_MARKER"]

#: "Well-known marker that is long enough to avoid collision" (Sec. VIII-D).
DEFAULT_MARKER = b"\xa5REPRO-MARK\x5a"

_MAGIC = b"MRK1"


@dataclass(frozen=True)
class MarkerHeader:
    """The broadcast payload: nonce ``z`` plus the XOR-masked values."""

    z: bytes
    masked: Tuple[bytes, ...]

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">H", len(self.z))
        out += self.z
        out += struct.pack(">I", len(self.masked))
        for value in self.masked:
            out += struct.pack(">H", len(value))
            out += value
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "MarkerHeader":
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (z_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            z = data[offset : offset + z_len]
            offset += z_len
            (count,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if count * 2 > len(data):
                raise SerializationError("masked-value count exceeds payload")
            masked: List[bytes] = []
            for _ in range(count):
                (m_len,) = struct.unpack_from(">H", data, offset)
                offset += 2
                if offset + m_len > len(data):
                    raise SerializationError("truncated masked value")
                masked.append(data[offset : offset + m_len])
                offset += m_len
            return cls(z=z, masked=tuple(masked))
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated marker header") from exc

    def byte_size(self) -> int:
        return len(self.to_bytes())


class MarkerBgkm:
    """Core marker-scheme operations (policy-aware row interface)."""

    def __init__(
        self,
        hash_fn: Optional[HashFunction] = None,
        marker: bytes = DEFAULT_MARKER,
        key_len: int = 16,
        z_bytes: int = 16,
    ):
        self.hash_fn = hash_fn or default_hash()
        self.marker = marker
        self.key_len = key_len
        self.z_bytes = z_bytes
        # Section VIII-D restriction: key || marker must fit in one digest.
        if key_len + len(marker) > self.hash_fn.digest_size:
            raise InvalidParameterError(
                "key (%d) + marker (%d) exceed hash output (%d); "
                "the marker scheme cannot carry keys this long"
                % (key_len, len(marker), self.hash_fn.digest_size)
            )

    def _pad(self, css: Sequence[bytes], z: bytes) -> bytes:
        buf = bytearray()
        for part in css:
            buf += struct.pack(">I", len(part))
            buf += bytes(part)
        buf += struct.pack(">I", len(z))
        buf += z
        return self.hash_fn.digest(bytes(buf))[: self.key_len + len(self.marker)]

    def generate(
        self,
        rows: Sequence[Sequence[bytes]],
        rng: Optional[random.Random] = None,
        z: Optional[bytes] = None,
        key: Optional[bytes] = None,
    ) -> Tuple[bytes, MarkerHeader]:
        """One rekey: returns ``(key_bytes, header)``.

        ``z``/``key`` may be pinned by the caller -- used by the tests that
        demonstrate the nonce-reuse weakness the paper points out.
        """
        if key is None:
            if rng is not None:
                key = bytes(rng.randrange(256) for _ in range(self.key_len))
            else:
                key = secrets.token_bytes(self.key_len)
        if len(key) != self.key_len:
            raise InvalidParameterError("key must be %d bytes" % self.key_len)
        if z is None:
            if rng is not None:
                z = bytes(rng.randrange(256) for _ in range(self.z_bytes))
            else:
                z = secrets.token_bytes(self.z_bytes)
        plain = key + self.marker
        masked = tuple(
            bytes(a ^ b for a, b in zip(plain, self._pad(css, z))) for css in rows
        )
        return key, MarkerHeader(z=z, masked=masked)

    def derive(self, header: MarkerHeader, css: Sequence[bytes]) -> bytes:
        """Try all masked values; return the key whose marker matches."""
        pad = self._pad(css, header.z)
        for value in header.masked:
            if len(value) != len(pad):
                continue
            plain = bytes(a ^ b for a, b in zip(value, pad))
            if plain[self.key_len :] == self.marker:
                return plain[: self.key_len]
        raise KeyDerivationError("no masked value revealed the marker")


class MarkerBroadcastGkm(BroadcastGkm):
    """Flat-membership adapter for the benchmark sweeps."""

    name = "marker"

    def __init__(self, hash_fn: Optional[HashFunction] = None, key_len: int = 16):
        super().__init__()
        self._core = MarkerBgkm(hash_fn=hash_fn, key_len=key_len)

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        rows = [(secret,) for _, secret in sorted(self._members.items())]
        key, header = self._core.generate(rows, rng=rng)
        return key, RekeyBroadcast(
            scheme=self.name, payload=header.to_bytes(), parts=header
        )

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        header = (
            broadcast.parts
            if isinstance(broadcast.parts, MarkerHeader)
            else MarkerHeader.from_bytes(broadcast.payload)
        )
        return self._core.derive(header, (secret,))
