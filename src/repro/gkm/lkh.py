"""Logical key hierarchy (LKH) baseline (references [17], [18]).

The key server maintains a binary tree of key-encryption keys; each member
holds the keys on its leaf-to-root path, and the root key is the group key.
A membership change refreshes the keys on one path and broadcasts each new
key encrypted under the keys of its children: ``O(log n)`` messages.

The paper's criticism -- which this implementation makes measurable -- is
that members are **stateful**: each member must track ``O(log n)``
auxiliary keys and apply every rekey broadcast, whereas ACV-BGKM members
keep nothing but their CSSs.  Member state is modelled explicitly here
(`_views`): ``derive`` replays a broadcast against the member's persistent
key view exactly like a real LKH client would.
"""

from __future__ import annotations

import itertools
import random
import secrets
import struct
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.crypto.symmetric import SymmetricCipher, default_cipher
from repro.errors import DecryptionError, GKMError, KeyDerivationError
from repro.gkm.base import BroadcastGkm, RekeyBroadcast

__all__ = ["LkhGkm"]

_node_ids = itertools.count(1)


@dataclass
class _Node:
    """A node of the key tree (stable ``node_id`` across restructuring)."""

    key: bytes
    node_id: int = field(default_factory=lambda: next(_node_ids))
    left: Optional["_Node"] = None
    right: Optional["_Node"] = None
    parent: Optional["_Node"] = None
    member_id: Optional[str] = None  # leaves only

    @property
    def is_leaf(self) -> bool:
        return self.left is None and self.right is None

    def depth(self) -> int:
        d, node = 0, self
        while node.parent is not None:
            d += 1
            node = node.parent
        return d


@dataclass(frozen=True)
class _RekeyMessage:
    """``new key for node_id``, encrypted under one child's current key."""

    node_id: int
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        return (
            struct.pack(">II", self.node_id, len(self.ciphertext)) + self.ciphertext
        )


class LkhGkm(BroadcastGkm):
    """Key-tree GKM with O(log n) rekey messages per membership change."""

    name = "lkh"

    def __init__(self, key_len: int = 16, cipher: Optional[SymmetricCipher] = None):
        super().__init__()
        self.key_len = key_len
        self.cipher = cipher or default_cipher()
        self._root: Optional[_Node] = None
        self._leaf: Dict[str, _Node] = {}
        self._views: Dict[str, Dict[int, bytes]] = {}  # member-side key state
        self._pending: List[_RekeyMessage] = []
        self._rng: Optional[random.Random] = None

    # -- internals ----------------------------------------------------------

    def _new_key(self) -> bytes:
        if self._rng is not None:
            return bytes(self._rng.randrange(256) for _ in range(self.key_len))
        return secrets.token_bytes(self.key_len)

    def _shallowest_leaf(self) -> _Node:
        assert self._root is not None
        queue = [self._root]
        while queue:
            node = queue.pop(0)
            if node.is_leaf:
                return node
            queue.extend(c for c in (node.left, node.right) if c is not None)
        raise GKMError("tree has no leaves")

    def _refresh_ancestors(self, node: Optional[_Node]) -> None:
        """Fresh keys for ``node`` and all its ancestors, bottom-up, with one
        broadcast message per (refreshed node, child)."""
        while node is not None:
            node.key = self._new_key()
            for child in (node.left, node.right):
                if child is not None:
                    self._pending.append(
                        _RekeyMessage(
                            node_id=node.node_id,
                            ciphertext=self.cipher.encrypt(child.key, node.key),
                        )
                    )
            node = node.parent

    # -- membership hooks ----------------------------------------------------

    def _on_join(self, member_id: str, secret: bytes) -> None:
        leaf = _Node(key=secret, member_id=member_id)
        self._leaf[member_id] = leaf
        self._views[member_id] = {leaf.node_id: secret}
        if self._root is None:
            self._root = leaf
            return
        split = self._shallowest_leaf()
        internal = _Node(key=b"", parent=split.parent)
        if split.parent is None:
            self._root = internal
        elif split.parent.left is split:
            split.parent.left = internal
        else:
            split.parent.right = internal
        internal.left = split
        internal.right = leaf
        split.parent = internal
        leaf.parent = internal
        # Fresh keys from the new internal node up to the root: the joiner
        # learns only post-join keys (backward secrecy).
        self._refresh_ancestors(internal)

    def _on_leave(self, member_id: str) -> None:
        leaf = self._leaf.pop(member_id, None)
        self._views.pop(member_id, None)
        if leaf is None:
            raise GKMError("member %r has no leaf" % member_id)
        parent = leaf.parent
        if parent is None:
            self._root = None
            return
        sibling = parent.right if parent.left is leaf else parent.left
        assert sibling is not None
        grandparent = parent.parent
        sibling.parent = grandparent
        if grandparent is None:
            self._root = sibling
        elif grandparent.left is parent:
            grandparent.left = sibling
        else:
            grandparent.right = sibling
        # Fresh keys on the remaining path (forward secrecy).
        self._refresh_ancestors(grandparent)

    # -- keying -----------------------------------------------------------------

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        """Flush pending membership rekeys; also refresh the root key."""
        self._rng = rng
        if self._root is None:
            raise GKMError("cannot rekey an empty group")
        if not self._root.is_leaf:
            self._root.key = self._new_key()
            for child in (self._root.left, self._root.right):
                if child is not None:
                    self._pending.append(
                        _RekeyMessage(
                            node_id=self._root.node_id,
                            ciphertext=self.cipher.encrypt(child.key, self._root.key),
                        )
                    )
        messages = tuple(self._pending)
        self._pending = []
        self._rng = None
        payload = b"".join(m.to_bytes() for m in messages)
        # LKH members are stateful: every client must process every rekey
        # broadcast or lose the ability to chain to the root (the paper's
        # reliability criticism of hierarchy schemes).  We model reliable
        # delivery: each current member's view absorbs the broadcast now;
        # derive() then replays it idempotently.
        for view in self._views.values():
            self._apply_broadcast(view, messages)
        return self._root.key, RekeyBroadcast(
            scheme=self.name, payload=payload, parts=messages
        )

    def _apply_broadcast(self, view: Dict[int, bytes], messages) -> None:
        """Decrypt every reachable message into ``view`` (multi-pass)."""
        pending = list(messages or ())
        progress = True
        while progress and pending:
            progress = False
            remaining = []
            for message in pending:
                decrypted = None
                for known_key in list(view.values()):
                    try:
                        decrypted = self.cipher.decrypt(known_key, message.ciphertext)
                        break
                    except DecryptionError:
                        continue
                if decrypted is None:
                    remaining.append(message)
                else:
                    view[message.node_id] = decrypted
                    progress = True
            pending = remaining

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        """Replay the broadcast against the member's persistent key view."""
        member_id = next(
            (mid for mid, s in self._members.items() if s == secret), None
        )
        if member_id is None or member_id not in self._views:
            raise KeyDerivationError("secret does not belong to a member")
        view = self._views[member_id]
        self._apply_broadcast(view, broadcast.parts)
        assert self._root is not None
        root_key = view.get(self._root.node_id)
        if root_key is None:
            if self._root.is_leaf and self._root.member_id == member_id:
                return secret
            raise KeyDerivationError("could not reach the root key")
        return root_key

    # -- introspection -------------------------------------------------------

    def member_state_size(self, member_id: str) -> int:
        """Bytes of key material the member currently stores (the O(log n)
        client-state cost the paper contrasts with ACV-BGKM's O(1))."""
        view = self._views.get(member_id, {})
        return sum(len(k) for k in view.values())

    def tree_depth(self) -> int:
        """Maximum leaf depth (sanity metric for balance)."""
        if self._root is None:
            return 0
        return max(leaf.depth() for leaf in self._leaf.values())
