"""Secure lock (Chiou & Chen 1989, reference [19]): CRT-based rekeying.

Every member ``i`` holds a private prime modulus ``N_i`` and a secret
``s_i``.  To rekey, the publisher masks the key for each member as
``R_i = K xor PRF(s_i, nonce)`` and broadcasts the single *lock*

    ``L = CRT(R_1 mod N_1, ..., R_n mod N_n)``

A member recovers ``K = (L mod N_i) xor PRF(s_i, nonce)``.

The paper's related-work section notes why this loses to ACV-BGKM at
scale: the lock is a number of ``sum_i log2 N_i`` bits and the CRT
computation grows quadratically with the member count -- which is exactly
what the ablation benchmark shows.
"""

from __future__ import annotations

import random
import secrets
import struct
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.crypto.mac import hmac_digest
from repro.errors import KeyDerivationError, SerializationError
from repro.gkm.base import BroadcastGkm, RekeyBroadcast
from repro.mathx.modular import crt
from repro.mathx.primes import random_prime

__all__ = ["SecureLockGkm"]

_MAGIC = b"SLK1"


@dataclass(frozen=True)
class _LockHeader:
    nonce: bytes
    lock: int

    def to_bytes(self) -> bytes:
        lock_raw = self.lock.to_bytes((self.lock.bit_length() + 7) // 8 or 1, "big")
        return (
            _MAGIC
            + struct.pack(">H", len(self.nonce))
            + self.nonce
            + struct.pack(">I", len(lock_raw))
            + lock_raw
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "_LockHeader":
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (n_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            nonce = data[offset : offset + n_len]
            offset += n_len
            (l_len,) = struct.unpack_from(">I", data, offset)
            offset += 4
            lock = int.from_bytes(data[offset : offset + l_len], "big")
            return cls(nonce=nonce, lock=lock)
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated lock header") from exc


class SecureLockGkm(BroadcastGkm):
    """The CRT secure-lock baseline.

    A member's ``secret`` doubles as PRF key; the per-member modulus is
    derived deterministically from the secret (a random prime seeded by
    it), so the flat ``derive(secret, broadcast)`` interface suffices.
    """

    name = "secure-lock"

    def __init__(self, key_len: int = 16, modulus_bits: int = 160):
        super().__init__()
        if 8 * (modulus_bits // 8) <= key_len * 8:
            raise SerializationError("modulus must exceed key length")
        self.key_len = key_len
        self.modulus_bits = modulus_bits
        self._moduli: Dict[str, int] = {}

    # -- helpers -----------------------------------------------------------

    def _modulus_for(self, secret: bytes) -> int:
        """Per-member prime modulus derived from the member secret."""
        seed = int.from_bytes(
            hmac_digest(secret, b"repro/secure-lock/modulus"), "big"
        )
        return random_prime(self.modulus_bits, random.Random(seed))

    def _mask(self, secret: bytes, nonce: bytes) -> int:
        pad = hmac_digest(secret, b"repro/secure-lock/pad" + nonce)[: self.key_len]
        return int.from_bytes(pad, "big")

    def _on_join(self, member_id: str, secret: bytes) -> None:
        self._moduli[member_id] = self._modulus_for(secret)

    def _on_leave(self, member_id: str) -> None:
        self._moduli.pop(member_id, None)

    # -- keying -------------------------------------------------------------

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        if rng is not None:
            key = bytes(rng.randrange(256) for _ in range(self.key_len))
            nonce = bytes(rng.randrange(256) for _ in range(16))
        else:
            key = secrets.token_bytes(self.key_len)
            nonce = secrets.token_bytes(16)
        key_int = int.from_bytes(key, "big")
        residues = []
        moduli = []
        for member_id, secret in sorted(self._members.items()):
            residues.append(key_int ^ self._mask(secret, nonce))
            moduli.append(self._moduli[member_id])
        if moduli:
            lock, _ = crt(residues, moduli)
        else:
            lock = 0
        header = _LockHeader(nonce=nonce, lock=lock)
        return key, RekeyBroadcast(
            scheme=self.name, payload=header.to_bytes(), parts=header
        )

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        header = (
            broadcast.parts
            if isinstance(broadcast.parts, _LockHeader)
            else _LockHeader.from_bytes(broadcast.payload)
        )
        modulus = self._modulus_for(secret)
        residue = header.lock % modulus
        key_int = residue ^ self._mask(secret, header.nonce)
        if key_int.bit_length() > 8 * self.key_len:
            raise KeyDerivationError("residue out of key range (not a member?)")
        return key_int.to_bytes(self.key_len, "big")
