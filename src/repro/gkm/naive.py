"""The "simplistic approach" of Section VIII-B: per-member key delivery.

On every rekey the publisher encrypts the fresh group key *individually*
for every member under that member's long-lived secret and sends the
bundle.  Functionally correct, trivially secure -- and exactly the scheme
the paper's introduction rejects: the publisher must reach every member on
every key change, members accumulate one key per policy configuration, and
the "broadcast" degenerates into n unicasts.

The implementation still packages the n ciphertexts as one payload so the
benchmarks can compare bytes-on-the-wire and publisher compute uniformly.
"""

from __future__ import annotations

import random
import secrets
import struct
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.crypto.symmetric import SymmetricCipher, default_cipher
from repro.errors import DecryptionError, KeyDerivationError, SerializationError
from repro.gkm.base import BroadcastGkm, RekeyBroadcast

__all__ = ["NaiveGkm"]

_MAGIC = b"NKD1"


@dataclass(frozen=True)
class _NaiveHeader:
    envelopes: Tuple[bytes, ...]

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">I", len(self.envelopes))
        for env in self.envelopes:
            out += struct.pack(">I", len(env))
            out += env
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "_NaiveHeader":
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (count,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if count * 4 > len(data):
                raise SerializationError("envelope count exceeds payload")
            envelopes = []
            for _ in range(count):
                (e_len,) = struct.unpack_from(">I", data, offset)
                offset += 4
                if offset + e_len > len(data):
                    raise SerializationError("truncated envelope")
                envelopes.append(data[offset : offset + e_len])
                offset += e_len
            return cls(envelopes=tuple(envelopes))
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated naive header") from exc


class NaiveGkm(BroadcastGkm):
    """One encrypted copy of the key per member, per rekey."""

    name = "naive-delivery"

    def __init__(self, key_len: int = 16, cipher: Optional[SymmetricCipher] = None):
        super().__init__()
        self.key_len = key_len
        self.cipher = cipher or default_cipher()

    @property
    def unicast_count(self) -> int:
        """Number of point-to-point messages a rekey costs (= n)."""
        return len(self._members)

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        if rng is not None:
            key = bytes(rng.randrange(256) for _ in range(self.key_len))
        else:
            key = secrets.token_bytes(self.key_len)
        envelopes = tuple(
            self.cipher.encrypt(secret, key)
            for _, secret in sorted(self._members.items())
        )
        header = _NaiveHeader(envelopes=envelopes)
        return key, RekeyBroadcast(
            scheme=self.name, payload=header.to_bytes(), parts=header
        )

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        header = (
            broadcast.parts
            if isinstance(broadcast.parts, _NaiveHeader)
            else _NaiveHeader.from_bytes(broadcast.payload)
        )
        for envelope in header.envelopes:
            try:
                return self.cipher.decrypt(secret, envelope)
            except DecryptionError:
                continue
        raise KeyDerivationError("no envelope decrypted (not a member?)")
