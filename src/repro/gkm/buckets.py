"""Bucketized ACV-BGKM (the Section VIII-C scalability strategy).

Solving ``A Y = 0`` is cubic in the capacity ``N``, so for very large
subscriber populations the paper proposes splitting subscribers into
buckets of a manageable size, computing an independent ACV per bucket for
the *same* key ``K``, and broadcasting all bucket headers.  Subscribers
derive from the header of their bucket; bucket assignment can follow any
criterion (the paper mentions policies or physical locations -- here it is
simply row order, which is what the cost model depends on).

Generation across buckets is embarrassingly parallel in the paper's C++
system; this implementation keeps it sequential but the per-bucket cubic
cost, which the ablation benchmark measures, is the point being
reproduced:  ``B`` buckets of size ``N/B`` cost ``B * (N/B)^3 = N^3/B^2``.
"""

from __future__ import annotations

import math
import random
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashes import HashFunction
from repro.errors import (
    CapacityError,
    InvalidParameterError,
    KeyDerivationError,
    SerializationError,
)
from repro.gkm.acv import PAPER_FIELD, AcvBgkm, AcvHeader
from repro.gkm.base import BroadcastGkm, RekeyBroadcast
from repro.mathx.field import PrimeField

__all__ = [
    "BucketedHeader",
    "BucketedAcvBgkm",
    "BucketedBroadcastGkm",
    "MAX_BUCKETS",
    "auto_bucket_size",
]

_MAGIC = b"BKT1"

#: Hard cap on buckets per header.  Far above any sane layout (the auto
#: policy yields ~sqrt(m) buckets) but small enough that a forged count
#: can never drive parse loops or per-bucket allocations to absurdity.
MAX_BUCKETS = 65535


@dataclass(frozen=True)
class BucketedHeader:
    """One :class:`AcvHeader` per bucket, all carrying the same key."""

    buckets: Tuple[AcvHeader, ...]

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">I", len(self.buckets))
        for header in self.buckets:
            raw = header.to_bytes()
            out += struct.pack(">I", len(raw))
            out += raw
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BucketedHeader":
        """Parse :meth:`to_bytes` output; canonical encodings only.

        Counts and lengths are attacker-controlled (this rides inside
        every bucketed broadcast): every declared size is checked against
        the actual payload *before* any allocation, inflated or duplicate
        or empty buckets are refused, and every failure is a typed
        :class:`SerializationError` -- never ``struct.error``.
        """
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (count,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if count == 0:
                raise SerializationError("empty bucket list")
            if count > MAX_BUCKETS:
                raise SerializationError(
                    "bucket count %d exceeds the cap of %d" % (count, MAX_BUCKETS)
                )
            if count * 4 > len(data):
                raise SerializationError("bucket count exceeds payload")
            buckets: List[AcvHeader] = []
            seen = set()
            for _ in range(count):
                (h_len,) = struct.unpack_from(">I", data, offset)
                offset += 4
                if offset + h_len > len(data):
                    raise SerializationError("truncated bucket header")
                raw = data[offset : offset + h_len]
                if raw in seen:
                    raise SerializationError("duplicate bucket header")
                seen.add(raw)
                header = AcvHeader.from_bytes(raw)
                if header.capacity < 1:
                    raise SerializationError("empty bucket (capacity 0)")
                buckets.append(header)
                offset += h_len
            if offset != len(data):
                raise SerializationError("trailing bytes after bucket list")
            return cls(buckets=tuple(buckets))
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated bucketed header") from exc

    def byte_size(self) -> int:
        return len(self.to_bytes())


def auto_bucket_size(row_count: int) -> int:
    """The no-configuration bucket-size policy: ``ceil(sqrt(m))`` rows per
    bucket, balancing the per-bucket cubic cost against header fan-out.

    The single definition shared by the publish-path strategy and the
    flat adapter, so the layout two components compute for one table can
    never diverge."""
    return max(1, math.isqrt(max(row_count - 1, 0)) + 1)


class BucketedAcvBgkm:
    """ACV-BGKM with per-bucket vectors and a shared key."""

    def __init__(
        self,
        bucket_size: int,
        field: PrimeField = PAPER_FIELD,
        hash_fn: Optional[HashFunction] = None,
    ):
        if bucket_size < 1:
            raise InvalidParameterError("bucket_size must be >= 1")
        self.bucket_size = bucket_size
        self._core = AcvBgkm(field, hash_fn)

    @property
    def field(self) -> PrimeField:
        """The underlying F_q."""
        return self._core.field

    def generate(
        self,
        rows: Sequence[Sequence[bytes]],
        rng: Optional[random.Random] = None,
        n_max: Optional[int] = None,
    ) -> Tuple[int, BucketedHeader]:
        """Split ``rows`` into buckets; same ``K``, one ACV each.

        The trick making a shared ``K`` possible: generate the first bucket
        normally, then for the remaining buckets solve with the *given* key
        by adding ``K`` into a fresh null-space vector of that bucket's
        matrix.  ``n_max`` is a *per-bucket* capacity (it must cover the
        largest bucket; ``None`` = each bucket's Eq.-1 minimum).
        """
        chunks = [
            rows[i : i + self.bucket_size]
            for i in range(0, max(len(rows), 1), self.bucket_size)
        ] or [[]]
        key: Optional[int] = None
        headers: List[AcvHeader] = []
        for chunk in chunks:
            if key is None:
                key, header = self._core.generate(list(chunk), n_max=n_max, rng=rng)
            else:
                header = self.generate_for_key(list(chunk), key, rng=rng, n_max=n_max)
            headers.append(header)
        assert key is not None
        return key, BucketedHeader(buckets=tuple(headers))

    def generate_for_key(
        self,
        rows: Sequence[Sequence[bytes]],
        key: int,
        rng: Optional[random.Random] = None,
        n_max: Optional[int] = None,
    ) -> AcvHeader:
        """An ACV header binding an *existing* key to ``rows``.

        Also used by the Section VIII-D comparison: one matrix, several
        independent ACVs for different keys over the same user base.
        """
        fresh_key, header = self._core.generate(list(rows), n_max=n_max, rng=rng)
        x = list(header.x)
        # Replace the embedded fresh key with the shared one.
        x[0] = (x[0] - fresh_key + key) % self._core.field.p
        return AcvHeader(q=header.q, x=tuple(x), zs=header.zs)

    def derive(
        self, header: BucketedHeader, css: Sequence[bytes], bucket: Optional[int] = None
    ) -> int:
        """Derive from the subscriber's bucket (or scan all buckets).

        When ``bucket`` is None every bucket is tried and the first
        non-zero result wins only if the caller verifies it downstream;
        since wrong buckets yield random elements, callers that do not
        know their bucket index must authenticate (as the document layer
        does).  Tests use explicit indices.
        """
        if bucket is not None:
            if not 0 <= bucket < len(header.buckets):
                raise KeyDerivationError("bucket index out of range")
            return self._core.derive(header.buckets[bucket], css)
        if not header.buckets:
            raise KeyDerivationError("empty bucketed header")
        return self._core.derive(header.buckets[0], css)

    def derive_candidates(
        self, header: BucketedHeader, css: Sequence[bytes]
    ) -> List[int]:
        """Candidate keys from every bucket (caller authenticates)."""
        return [self._core.derive(b, css) for b in header.buckets]


class BucketedBroadcastGkm(BroadcastGkm):
    """Flat-membership adapter over the bucketed scheme.

    The differential-testing twin of :class:`~repro.gkm.acv.AcvBroadcastGkm`:
    one member = one single-CSS row, rows in sorted member order, buckets
    assigned by row order.  ``bucket_size=None`` selects the auto policy
    ``ceil(sqrt(m))`` the publish path uses.  ``capacity`` is a
    *per-bucket* column count, the same semantics as the publish-path
    strategy's explicit capacity: it must cover the largest bucket, and
    padding columns hide the exact bucket fill the way the dense
    adapter's capacity hides the member count.

    ``derive`` resolves the member's bucket through the assignment
    recorded for *that broadcast* at ``rekey`` time (the adapter is
    publisher-side state, like ``AcvBroadcastGkm``), so deriving from an
    older broadcast uses the layout it was actually built with -- parity
    with the dense adapter, which works for any past header.  The
    history is bounded (:attr:`MAX_ASSIGNMENTS` rekeys, oldest evicted);
    a broadcast beyond it, or one this adapter never produced, raises
    :class:`KeyDerivationError` rather than guessing a bucket.  An
    unknown secret falls into bucket 0 and yields an unpredictable field
    element -- the same soft failure mode as the dense adapter, which
    the differential harness asserts.
    """

    #: Rekey broadcasts whose bucket assignment is kept for ``derive``.
    MAX_ASSIGNMENTS = 64

    name = "bucketed-acv-bgkm"

    def __init__(
        self,
        bucket_size: Optional[int] = None,
        field: PrimeField = PAPER_FIELD,
        capacity: Optional[int] = None,
        hash_fn: Optional[HashFunction] = None,
        key_len: int = 16,
    ):
        super().__init__()
        if bucket_size is not None and bucket_size < 1:
            raise InvalidParameterError("bucket_size must be >= 1 or None (auto)")
        self.bucket_size = bucket_size
        self.capacity = capacity
        self.key_len = key_len
        self._core = AcvBgkm(field, hash_fn)
        #: payload bytes -> {secret: bucket index}, insertion-ordered so
        #: the oldest rekey's assignment is evicted first.
        self._assignments: dict = {}

    def _resolve_bucket_size(self, member_count: int) -> int:
        if self.bucket_size is not None:
            return self.bucket_size
        return auto_bucket_size(member_count)

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        ordered = sorted(self._members.items())
        rows = [(secret,) for _, secret in ordered]
        size = self._resolve_bucket_size(len(rows))
        if self.capacity is not None and self.capacity < min(size, len(rows)):
            raise CapacityError(
                "per-bucket capacity %d below the bucket size %d"
                % (self.capacity, min(size, len(rows)))
            )
        scheme = BucketedAcvBgkm(size, self._core.field, self._core.hash_fn)
        key_int, header = scheme.generate(rows, rng=rng, n_max=self.capacity)
        payload = header.to_bytes()
        if len(self._assignments) >= self.MAX_ASSIGNMENTS:
            self._assignments.pop(next(iter(self._assignments)))
        self._assignments[payload] = {
            secret: index // size for index, (_, secret) in enumerate(ordered)
        }
        key = self._core.export_key(key_int, self.key_len)
        return key, RekeyBroadcast(
            scheme=self.name, payload=payload, parts=header
        )

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        header = (
            broadcast.parts
            if isinstance(broadcast.parts, BucketedHeader)
            else BucketedHeader.from_bytes(broadcast.payload)
        )
        bucket_of = self._assignments.get(broadcast.payload)
        if bucket_of is None:
            raise KeyDerivationError(
                "no recorded bucket assignment for this broadcast"
            )
        bucket = bucket_of.get(secret, 0)
        if bucket >= len(header.buckets):
            raise KeyDerivationError("assigned bucket missing from header")
        key_int = self._core.derive(header.buckets[bucket], (secret,))
        if key_int == 0:
            raise KeyDerivationError("derived the zero element")
        return self._core.export_key(key_int, self.key_len)
