"""Bucketized ACV-BGKM (the Section VIII-C scalability strategy).

Solving ``A Y = 0`` is cubic in the capacity ``N``, so for very large
subscriber populations the paper proposes splitting subscribers into
buckets of a manageable size, computing an independent ACV per bucket for
the *same* key ``K``, and broadcasting all bucket headers.  Subscribers
derive from the header of their bucket; bucket assignment can follow any
criterion (the paper mentions policies or physical locations -- here it is
simply row order, which is what the cost model depends on).

Generation across buckets is embarrassingly parallel in the paper's C++
system; this implementation keeps it sequential but the per-bucket cubic
cost, which the ablation benchmark measures, is the point being
reproduced:  ``B`` buckets of size ``N/B`` cost ``B * (N/B)^3 = N^3/B^2``.
"""

from __future__ import annotations

import random
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashes import HashFunction
from repro.errors import InvalidParameterError, KeyDerivationError, SerializationError
from repro.gkm.acv import PAPER_FIELD, AcvBgkm, AcvHeader
from repro.mathx.field import PrimeField

__all__ = ["BucketedHeader", "BucketedAcvBgkm"]

_MAGIC = b"BKT1"


@dataclass(frozen=True)
class BucketedHeader:
    """One :class:`AcvHeader` per bucket, all carrying the same key."""

    buckets: Tuple[AcvHeader, ...]

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">I", len(self.buckets))
        for header in self.buckets:
            raw = header.to_bytes()
            out += struct.pack(">I", len(raw))
            out += raw
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BucketedHeader":
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (count,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if count * 4 > len(data):
                raise SerializationError("bucket count exceeds payload")
            buckets: List[AcvHeader] = []
            for _ in range(count):
                (h_len,) = struct.unpack_from(">I", data, offset)
                offset += 4
                if offset + h_len > len(data):
                    raise SerializationError("truncated bucket header")
                buckets.append(AcvHeader.from_bytes(data[offset : offset + h_len]))
                offset += h_len
            return cls(buckets=tuple(buckets))
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated bucketed header") from exc

    def byte_size(self) -> int:
        return len(self.to_bytes())


class BucketedAcvBgkm:
    """ACV-BGKM with per-bucket vectors and a shared key."""

    def __init__(
        self,
        bucket_size: int,
        field: PrimeField = PAPER_FIELD,
        hash_fn: Optional[HashFunction] = None,
    ):
        if bucket_size < 1:
            raise InvalidParameterError("bucket_size must be >= 1")
        self.bucket_size = bucket_size
        self._core = AcvBgkm(field, hash_fn)

    @property
    def field(self) -> PrimeField:
        """The underlying F_q."""
        return self._core.field

    def generate(
        self,
        rows: Sequence[Sequence[bytes]],
        rng: Optional[random.Random] = None,
    ) -> Tuple[int, BucketedHeader]:
        """Split ``rows`` into buckets; same ``K``, one ACV each.

        The trick making a shared ``K`` possible: generate the first bucket
        normally, then for the remaining buckets solve with the *given* key
        by adding ``K`` into a fresh null-space vector of that bucket's
        matrix.
        """
        chunks = [
            rows[i : i + self.bucket_size]
            for i in range(0, max(len(rows), 1), self.bucket_size)
        ] or [[]]
        key: Optional[int] = None
        headers: List[AcvHeader] = []
        for chunk in chunks:
            if key is None:
                key, header = self._core.generate(list(chunk), rng=rng)
            else:
                header = self.generate_for_key(list(chunk), key, rng=rng)
            headers.append(header)
        assert key is not None
        return key, BucketedHeader(buckets=tuple(headers))

    def generate_for_key(
        self,
        rows: Sequence[Sequence[bytes]],
        key: int,
        rng: Optional[random.Random] = None,
    ) -> AcvHeader:
        """An ACV header binding an *existing* key to ``rows``.

        Also used by the Section VIII-D comparison: one matrix, several
        independent ACVs for different keys over the same user base.
        """
        fresh_key, header = self._core.generate(list(rows), rng=rng)
        x = list(header.x)
        # Replace the embedded fresh key with the shared one.
        x[0] = (x[0] - fresh_key + key) % self._core.field.p
        return AcvHeader(q=header.q, x=tuple(x), zs=header.zs)

    def derive(
        self, header: BucketedHeader, css: Sequence[bytes], bucket: Optional[int] = None
    ) -> int:
        """Derive from the subscriber's bucket (or scan all buckets).

        When ``bucket`` is None every bucket is tried and the first
        non-zero result wins only if the caller verifies it downstream;
        since wrong buckets yield random elements, callers that do not
        know their bucket index must authenticate (as the document layer
        does).  Tests use explicit indices.
        """
        if bucket is not None:
            if not 0 <= bucket < len(header.buckets):
                raise KeyDerivationError("bucket index out of range")
            return self._core.derive(header.buckets[bucket], css)
        if not header.buckets:
            raise KeyDerivationError("empty bucketed header")
        return self._core.derive(header.buckets[0], css)

    def derive_candidates(
        self, header: BucketedHeader, css: Sequence[bytes]
    ) -> List[int]:
        """Candidate keys from every bucket (caller authenticates)."""
        return [self._core.derive(b, css) for b in header.buckets]
