"""Access control polynomial (ACP) baseline (Zou, Dai & Bertino [14]).

The publisher encodes the group key in a polynomial over ``F_q``:

    ``P(x) = prod_{i in members} (x - H(s_i || z)) + K``

and broadcasts ``(z, coefficients of P)``.  A member evaluates ``P`` at
its personal point ``x_i = H(s_i || z)`` and reads off ``K``; an outsider
evaluates at a non-root and obtains a random-looking element.

The paper's related-work section notes that these "special polynomials"
are a vanishingly small subset of all degree-n polynomials and that the
scheme's security "is neither fully analyzed nor proven"; it serves here
as the O(n)-broadcast baseline with O(n^2) publisher cost (incremental
product construction).
"""

from __future__ import annotations

import random
import secrets
import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.crypto.hashes import HashFunction, default_hash, hash_concat
from repro.crypto.kdf import derive_key
from repro.errors import KeyDerivationError, SerializationError
from repro.gkm.base import BroadcastGkm, RekeyBroadcast
from repro.mathx.field import PrimeField

__all__ = ["AcPolyGkm"]

_MAGIC = b"ACP1"

_DEFAULT_FIELD = PrimeField(
    170141183460469231731687303715884105757, check_prime=False
)  # 128-bit


@dataclass(frozen=True)
class _PolyHeader:
    z: bytes
    coeffs: Tuple[int, ...]  # low-degree first

    def to_bytes(self, elem_len: int) -> bytes:
        out = bytearray(_MAGIC)
        out += struct.pack(">H", len(self.z))
        out += self.z
        out += struct.pack(">IH", len(self.coeffs), elem_len)
        for c in self.coeffs:
            out += c.to_bytes(elem_len, "big")
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "_PolyHeader":
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (z_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            z = data[offset : offset + z_len]
            offset += z_len
            count, elem_len = struct.unpack_from(">IH", data, offset)
            offset += 6
            if count * max(elem_len, 1) > len(data):
                raise SerializationError("coefficient count exceeds payload")
            coeffs = []
            for _ in range(count):
                if offset + elem_len > len(data):
                    raise SerializationError("truncated coefficient")
                coeffs.append(int.from_bytes(data[offset : offset + elem_len], "big"))
                offset += elem_len
            return cls(z=z, coeffs=tuple(coeffs))
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated ACP header") from exc


class AcPolyGkm(BroadcastGkm):
    """The access-control-polynomial baseline."""

    name = "ac-polynomial"

    def __init__(
        self,
        field: PrimeField = _DEFAULT_FIELD,
        hash_fn: Optional[HashFunction] = None,
        key_len: int = 16,
    ):
        super().__init__()
        self.field = field
        self.hash_fn = hash_fn or default_hash()
        self.key_len = key_len

    def _point(self, secret: bytes, z: bytes) -> int:
        return hash_concat(self.hash_fn, [secret, z], self.field.p)

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        p = self.field.p
        if rng is not None:
            key_int = rng.randrange(1, p)
            z = bytes(rng.randrange(256) for _ in range(16))
        else:
            key_int = secrets.randbelow(p - 1) + 1
            z = secrets.token_bytes(16)
        # Incrementally build prod (x - x_i); low-degree-first coefficients.
        coeffs: List[int] = [1]
        for _, secret in sorted(self._members.items()):
            root = self._point(secret, z)
            # Multiply by (x - root).
            new = [0] * (len(coeffs) + 1)
            for i, c in enumerate(coeffs):
                new[i + 1] = (new[i + 1] + c) % p
                new[i] = (new[i] - c * root) % p
            coeffs = new
        coeffs[0] = (coeffs[0] + key_int) % p
        header = _PolyHeader(z=z, coeffs=tuple(coeffs))
        key = self._export(key_int)
        return key, RekeyBroadcast(
            scheme=self.name,
            payload=header.to_bytes(self.field.byte_length),
            parts=header,
        )

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        header = (
            broadcast.parts
            if isinstance(broadcast.parts, _PolyHeader)
            else _PolyHeader.from_bytes(broadcast.payload)
        )
        p = self.field.p
        x = self._point(secret, header.z)
        acc = 0
        for c in reversed(header.coeffs):
            acc = (acc * x + c) % p
        if acc == 0:
            raise KeyDerivationError("evaluated to zero (not a member?)")
        return self._export(acc)

    def _export(self, key_int: int) -> bytes:
        raw = key_int.to_bytes(self.field.byte_length, "big")
        return derive_key(raw, self.key_len, info=b"repro/acp/doc-key")
