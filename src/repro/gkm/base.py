"""Common interface for flat-membership broadcast GKM schemes.

A :class:`BroadcastGkm` manages one logical group: members join and leave,
and every ``rekey()`` produces a fresh group key plus a broadcast payload
from which *current* members -- and only they -- can derive the key using
their long-lived personal secret.  This captures exactly the contract the
paper's evaluation compares schemes on:

* rekey computation time at the publisher,
* broadcast payload size,
* key-derivation time at a subscriber,
* forward/backward secrecy across membership changes.

ACV-BGKM's native API is policy-aware (rows of CSSs); the adapter in
:mod:`repro.gkm.acv` maps this flat interface onto it for head-to-head
benchmarks.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import GKMError

__all__ = ["RekeyBroadcast", "BroadcastGkm"]

_MEMBER_STATE_VERSION = 1


@dataclass(frozen=True)
class RekeyBroadcast:
    """One rekey's public payload.

    ``payload`` is the canonical wire encoding (used for size accounting);
    ``parts`` optionally keeps the structured form so ``derive`` does not
    have to re-parse.
    """

    scheme: str
    payload: bytes
    parts: object = None

    def byte_size(self) -> int:
        """Broadcast size in bytes."""
        return len(self.payload)


class BroadcastGkm(abc.ABC):
    """A key-managed group with join/leave/rekey/derive."""

    #: Human-readable scheme name (used in benchmark tables).
    name: str = "abstract"

    def __init__(self) -> None:
        self._members: Dict[str, bytes] = {}

    # -- membership ------------------------------------------------------------

    @property
    def members(self) -> Dict[str, bytes]:
        """Current member secrets, keyed by member id (publisher view)."""
        return dict(self._members)

    def join(self, member_id: str, secret: bytes) -> None:
        """Add a member with its long-lived personal secret."""
        if member_id in self._members:
            raise GKMError("member %r already present" % member_id)
        self._members[member_id] = secret
        self._on_join(member_id, secret)

    def leave(self, member_id: str) -> None:
        """Remove a member (its old secret must stop working after rekey)."""
        if member_id not in self._members:
            raise GKMError("member %r not present" % member_id)
        del self._members[member_id]
        self._on_leave(member_id)

    def _on_join(self, member_id: str, secret: bytes) -> None:
        """Hook for schemes with per-membership state (default: none)."""

    def _on_leave(self, member_id: str) -> None:
        """Hook for schemes with per-membership state (default: none)."""

    # -- durable membership ------------------------------------------------

    def member_state(self) -> bytes:
        """Canonical encoding of the membership (for snapshots).

        Uses the shared wire codec so the same bounds checking that guards
        the protocol surface guards checkpoint files; per-scheme derived
        state is rebuilt through the ``_on_join`` hook on restore.
        """
        from repro.wire.codec import pack_bytes, pack_str, pack_u8, pack_u32

        out = bytearray(pack_u8(_MEMBER_STATE_VERSION))
        out += pack_u32(len(self._members))
        for member_id in sorted(self._members):
            out += pack_str(member_id) + pack_bytes(self._members[member_id])
        return bytes(out)

    def restore_members(self, data: bytes) -> None:
        """Replace the membership with a :meth:`member_state` checkpoint.

        The checkpoint is fully parsed and validated *before* any state
        changes, and current members are torn down through the ordinary
        ``leave`` path first -- schemes with derived per-membership state
        (LKH's tree, Secure Lock's moduli) must not keep stale entries a
        restored-away member could still derive keys through.
        """
        from repro.errors import SerializationError
        from repro.wire.codec import Cursor

        cursor = Cursor(data)
        version = cursor.read_u8()
        if version != _MEMBER_STATE_VERSION:
            raise SerializationError(
                "unsupported GKM member-state version %d" % version
            )
        count = cursor.read_u32()
        members: Dict[str, bytes] = {}
        for _ in range(count):
            member_id, secret = cursor.read_str(), cursor.read_bytes()
            if member_id in members:
                raise SerializationError(
                    "duplicate member %r in checkpoint" % member_id
                )
            members[member_id] = secret
        cursor.expect_end()
        for member_id in list(self._members):
            self.leave(member_id)
        for member_id, secret in members.items():
            self.join(member_id, secret)

    # -- keying -----------------------------------------------------------------

    @abc.abstractmethod
    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        """Draw a fresh group key; return ``(key, broadcast)``."""

    @abc.abstractmethod
    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        """Member-side key derivation from a personal secret.

        Raises :class:`KeyDerivationError` when the secret does not belong
        to a current member.
        """

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return "%s(members=%d)" % (type(self).__name__, len(self._members))
