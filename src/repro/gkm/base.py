"""Common interface for flat-membership broadcast GKM schemes.

A :class:`BroadcastGkm` manages one logical group: members join and leave,
and every ``rekey()`` produces a fresh group key plus a broadcast payload
from which *current* members -- and only they -- can derive the key using
their long-lived personal secret.  This captures exactly the contract the
paper's evaluation compares schemes on:

* rekey computation time at the publisher,
* broadcast payload size,
* key-derivation time at a subscriber,
* forward/backward secrecy across membership changes.

ACV-BGKM's native API is policy-aware (rows of CSSs); the adapter in
:mod:`repro.gkm.acv` maps this flat interface onto it for head-to-head
benchmarks.
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

from repro.errors import GKMError, KeyDerivationError

__all__ = ["RekeyBroadcast", "BroadcastGkm"]


@dataclass(frozen=True)
class RekeyBroadcast:
    """One rekey's public payload.

    ``payload`` is the canonical wire encoding (used for size accounting);
    ``parts`` optionally keeps the structured form so ``derive`` does not
    have to re-parse.
    """

    scheme: str
    payload: bytes
    parts: object = None

    def byte_size(self) -> int:
        """Broadcast size in bytes."""
        return len(self.payload)


class BroadcastGkm(abc.ABC):
    """A key-managed group with join/leave/rekey/derive."""

    #: Human-readable scheme name (used in benchmark tables).
    name: str = "abstract"

    def __init__(self) -> None:
        self._members: Dict[str, bytes] = {}

    # -- membership ------------------------------------------------------------

    @property
    def members(self) -> Dict[str, bytes]:
        """Current member secrets, keyed by member id (publisher view)."""
        return dict(self._members)

    def join(self, member_id: str, secret: bytes) -> None:
        """Add a member with its long-lived personal secret."""
        if member_id in self._members:
            raise GKMError("member %r already present" % member_id)
        self._members[member_id] = secret
        self._on_join(member_id, secret)

    def leave(self, member_id: str) -> None:
        """Remove a member (its old secret must stop working after rekey)."""
        if member_id not in self._members:
            raise GKMError("member %r not present" % member_id)
        del self._members[member_id]
        self._on_leave(member_id)

    def _on_join(self, member_id: str, secret: bytes) -> None:
        """Hook for schemes with per-membership state (default: none)."""

    def _on_leave(self, member_id: str) -> None:
        """Hook for schemes with per-membership state (default: none)."""

    # -- keying -----------------------------------------------------------------

    @abc.abstractmethod
    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        """Draw a fresh group key; return ``(key, broadcast)``."""

    @abc.abstractmethod
    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        """Member-side key derivation from a personal secret.

        Raises :class:`KeyDerivationError` when the secret does not belong
        to a current member.
        """

    def __len__(self) -> int:
        return len(self._members)

    def __repr__(self) -> str:
        return "%s(members=%d)" % (type(self).__name__, len(self._members))
