"""Group key management (GKM) schemes.

The paper's contribution is **ACV-BGKM** (:mod:`repro.gkm.acv`): broadcast
group key management through access control vectors, where a subscriber
derives the group key from public values and its conditional subscription
secrets, and rekeying is a pure re-publish (no unicast).

Alongside it this package implements every scheme the paper positions
itself against, enabling the ablation benchmarks:

* :mod:`repro.gkm.buckets` -- the Section VIII-C scalability variant
  (subscribers split into buckets, one ACV each, same key);
* :mod:`repro.gkm.marker` -- the anonymous reviewer's XOR/marker scheme of
  Section VIII-D (including its key-reuse weakness, demonstrated in tests);
* :mod:`repro.gkm.secure_lock` -- Chiou & Chen's CRT secure lock [19];
* :mod:`repro.gkm.lkh` -- a logical-key-hierarchy tree (Wong-Lam style
  [17], [18]) with O(log n) rekey messages;
* :mod:`repro.gkm.acpoly` -- Zou et al.'s access control polynomial [14];
* :mod:`repro.gkm.naive` -- the "simplistic approach" of Section VIII-B
  (per-subscriber unicast key delivery).

All flat-membership schemes implement the common
:class:`~repro.gkm.base.BroadcastGkm` interface so benchmarks can sweep
them uniformly; ACV-BGKM additionally exposes its policy-aware core API.
"""

from repro.gkm.acv import (
    FAST_FIELD,
    PAPER_FIELD,
    AcvBgkm,
    AcvBroadcastGkm,
    AcvHeader,
)
from repro.gkm.acpoly import AcPolyGkm
from repro.gkm.base import BroadcastGkm, RekeyBroadcast
from repro.gkm.buckets import BucketedAcvBgkm, BucketedBroadcastGkm, BucketedHeader
from repro.gkm.strategy import (
    GKM_STRATEGIES,
    AcvBuildCache,
    BucketedGkmStrategy,
    DenseGkmStrategy,
    build_strategy,
    decode_keying_header,
)
from repro.gkm.lkh import LkhGkm
from repro.gkm.marker import MarkerBgkm, MarkerBroadcastGkm, MarkerHeader
from repro.gkm.naive import NaiveGkm
from repro.gkm.secure_lock import SecureLockGkm

__all__ = [
    "AcvBgkm",
    "AcvHeader",
    "AcvBroadcastGkm",
    "PAPER_FIELD",
    "FAST_FIELD",
    "BucketedAcvBgkm",
    "BucketedBroadcastGkm",
    "BucketedHeader",
    "GKM_STRATEGIES",
    "AcvBuildCache",
    "BucketedGkmStrategy",
    "DenseGkmStrategy",
    "build_strategy",
    "decode_keying_header",
    "BroadcastGkm",
    "RekeyBroadcast",
    "MarkerBgkm",
    "MarkerHeader",
    "MarkerBroadcastGkm",
    "SecureLockGkm",
    "LkhGkm",
    "AcPolyGkm",
    "NaiveGkm",
]
