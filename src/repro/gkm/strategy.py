"""Publish-path GKM strategies: dense vs bucketed ACV generation.

:class:`~repro.system.publisher.Publisher.publish` builds one keying
header per policy configuration.  The *strategy* decides how:

* **dense** -- one matrix over every qualified row, one
  :class:`~repro.gkm.acv.AcvHeader`.  This is the paper's Section V-C
  baseline and the historical publish path, byte for byte.
* **bucketed** -- the Section VIII-C scalability variant wired into the
  live pipeline: rows are split *in row order* (the order
  :meth:`~repro.system.css.CssTable.rows_for_policies` emits) into
  buckets of a configured size, one ACV is solved per bucket, and all
  buckets carry the same key ``K`` inside a
  :class:`~repro.gkm.buckets.BucketedHeader`.  ``B`` buckets turn the
  cubic elimination into ``B`` solves of size ``(m/B)^3`` -- a ``B^2``
  speedup on the step ROADMAP calls the rekey ceiling.

Both strategies share an :class:`AcvBuildCache`: solving ``A Y = 0`` only
depends on the member-row set and the nonces, so when consecutive
publishes see the *same* rows (same configuration, no membership change)
the cached ``(zs, Y)`` pair is recombined with a **fresh** key instead of
re-running the elimination.  The cache is keyed on the exact row tuples.
A *pure join* keeps entries (:meth:`AcvBuildCache.note_join`): untouched
configurations exact-hit, and a grown configuration extends the stored
:class:`~repro.gkm.acv.AcvFactorization` row by row -- O(m^2) per join
instead of the O(m^3) re-solve.  Every revoke / credential replacement /
policy change still invalidates outright, so a stale vector can never
outlive a membership it over-approximates.

Security envelope of the cache (documented in DESIGN.md): two headers
built from one cache entry share ``(zs, Y)`` and differ only in
``X[0] = Y[0] + K``, so their *difference* reveals ``K' - K``.  Within
one membership epoch every holder of ``K`` is entitled to ``K'`` as well
(the membership is unchanged by construction), so no lockout property is
weakened; any join or revoke starts a fresh epoch with fresh nonces.
"""

from __future__ import annotations

import random
import secrets
from collections import Counter, OrderedDict
from typing import Dict, List, Optional, Sequence, Tuple, Union

from repro.errors import InvalidParameterError, SerializationError
from repro.gkm.acv import AcvBgkm, AcvFactorization, AcvHeader
from repro.gkm.buckets import BucketedHeader, auto_bucket_size
from repro.obs.metrics import get_registry
from repro.obs.trace import stage

__all__ = [
    "GKM_STRATEGIES",
    "AcvBuildCache",
    "BucketedGkmStrategy",
    "DenseGkmStrategy",
    "KeyingHeader",
    "build_strategy",
    "decode_keying_header",
]

#: The publish-path strategy names a publisher (and a scenario) may pick.
GKM_STRATEGIES = ("dense", "bucketed")

#: What a :class:`~repro.documents.package.ConfigHeader` may carry.
KeyingHeader = Union[AcvHeader, BucketedHeader]

_ACV_MAGIC = b"ACV1"
_BKT_MAGIC = b"BKT1"


def decode_keying_header(data: bytes) -> KeyingHeader:
    """Parse a config header's keying payload, dense or bucketed.

    Subscribers dispatch on the magic tag, so a package may freely mix
    dense and bucketed configurations and old receivers of dense headers
    keep working unchanged.
    """
    magic = data[:4]
    if magic == _ACV_MAGIC:
        return AcvHeader.from_bytes(data)
    if magic == _BKT_MAGIC:
        return BucketedHeader.from_bytes(data)
    raise SerializationError("unknown keying header magic %r" % magic)


class AcvBuildCache:
    """Memoizes the expensive half of an ACV build: ``(zs, Y)`` + the
    carried elimination state.

    Entries are keyed on ``(member-row tuple, capacity)``.  A hit
    re-randomizes only the key: the header becomes ``X = Y + K e_0`` over
    the cached nonces -- no matrix, no elimination.  Eviction is true LRU
    over an :class:`~collections.OrderedDict`: a lookup hit refreshes
    recency, so under more than ``max_entries`` recurring configurations
    the *coldest* entry goes first.  (The cache used to evict in plain
    insertion order, which is exactly backwards at publish cadence: the
    hottest configuration was also the oldest insertion.)

    Membership changes split two ways:

    * :meth:`invalidate` -- revoke / credential replacement / policy or
      strategy change: advances the epoch and drops everything, because a
      removed or replaced row must never stay annihilated by a cached
      vector (fresh nonces are mandatory).
    * :meth:`note_join` -- a *pure join* (a brand-new CSS cell): advances
      the epoch but keeps entries.  A configuration the join did not
      touch recurs with the identical row tuple and may exact-hit -- its
      membership is unchanged by construction.  A configuration the join
      did touch now has a strict row superset, which
      :meth:`take_extendable` serves as an O(m^2)-per-row incremental
      extension of the stored factorization instead of a fresh
      elimination (see :class:`~repro.gkm.acv.AcvFactorization` for the
      security argument: extension only ever adds entitlements that the
      join itself granted).
    """

    def __init__(self, max_entries: int = 256):
        if max_entries < 1:
            raise InvalidParameterError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: "OrderedDict[tuple, Tuple[Tuple[bytes, ...], Tuple[int, ...], Optional[AcvFactorization]]]" = OrderedDict()
        self.epoch = 0
        self.hits = 0
        self.misses = 0
        self.extends = 0

    def lookup(
        self, rows: tuple, n_max: int
    ) -> Optional[Tuple[Tuple[bytes, ...], Tuple[int, ...]]]:
        entry = self._entries.get((rows, n_max))
        if entry is None:
            self.misses += 1
            get_registry().inc("gkm.acv_cache.miss")
            return None
        self._entries.move_to_end((rows, n_max))
        self.hits += 1
        get_registry().inc("gkm.acv_cache.hit")
        return entry[0], entry[1]

    def take_extendable(
        self, rows: tuple, n_max: int
    ) -> Optional[Tuple[AcvFactorization, List[Tuple[bytes, ...]]]]:
        """Pop the best join-delta base for ``(rows, n_max)``.

        Most-recently-used first, an entry qualifies when it carries a
        factorization, holds a nonempty *strict sub-multiset* of ``rows``
        and its capacity fits inside ``n_max`` (capacity only ever grows
        -- shrinking would drop nonces that published headers already
        used).  Returns ``(factorization, missing_rows)``; the entry is
        removed because extension mutates it (the extended state is
        re-stored under the new key by the builder).
        """
        if n_max < len(rows):
            return None
        needed = Counter(rows)
        for key in reversed(self._entries):
            old_rows, old_n = key
            entry = self._entries[key]
            if entry[2] is None or not old_rows:
                continue
            if len(old_rows) >= len(rows) or old_n > n_max:
                continue
            missing = needed.copy()
            missing.subtract(old_rows)
            if any(count < 0 for count in missing.values()):
                continue
            self._entries.pop(key)
            self.extends += 1
            get_registry().inc("gkm.acv_cache.extend")
            extra = [row for row, count in missing.items() for _ in range(count)]
            return entry[2], extra
        return None

    def store(
        self,
        rows: tuple,
        n_max: int,
        zs: Tuple[bytes, ...],
        y: Tuple[int, ...],
        factorization: Optional[AcvFactorization] = None,
    ) -> None:
        key = (rows, n_max)
        if key not in self._entries and len(self._entries) >= self.max_entries:
            self._entries.popitem(last=False)
        self._entries[key] = (zs, y, factorization)
        self._entries.move_to_end(key)

    def note_join(self) -> None:
        """A pure join happened: new epoch, entries stay extendable."""
        self.epoch += 1

    def invalidate(self) -> None:
        """A row was removed or replaced: new epoch, no entry survives."""
        self.epoch += 1
        self._entries.clear()

    def stats(self) -> Dict[str, int]:
        """Counters for tests, metrics and reports."""
        return {
            "hits": self.hits,
            "misses": self.misses,
            "extends": self.extends,
            "epoch": self.epoch,
            "entries": len(self._entries),
        }


def _draw_key(p: int, rng: Optional[random.Random]) -> int:
    """A fresh group key, uniform in ``F_q^*`` (same draw as the core)."""
    if rng is not None:
        return rng.randrange(1, p)
    return secrets.randbelow(p - 1) + 1


class _CachedAcvBuilder:
    """Shared per-chunk build step: cache hit -> recombine, miss -> solve."""

    def __init__(self, core: AcvBgkm, cache: Optional[AcvBuildCache]):
        self.core = core
        self.cache = cache

    def build(
        self,
        rows: Sequence[Tuple[bytes, ...]],
        n_max: int,
        rng: Optional[random.Random],
        key: Optional[int] = None,
        use_cache: bool = True,
    ) -> Tuple[int, AcvHeader]:
        """``(key, header)`` for ``rows``; pass ``key`` to bind an
        existing one (bucket 2..B of a shared-key build).

        The null-space combination ``Y`` never depends on the key --
        ``X = Y + K e_0`` -- so one cached ``(zs, Y)`` serves any key,
        and a cache miss with ``key=None`` is byte-identical to a plain
        :meth:`AcvBgkm.generate` call (same RNG draws, in order).
        ``use_cache=False`` forces a fresh solve (still stored): a
        repeated chunk within one bucketed build must NOT be rebound
        from the entry its twin just stored, or the two buckets come
        out byte-identical and the header's own canonical decoding
        (which refuses duplicate buckets) would reject the broadcast.
        """
        p = self.core.field.p
        rows_key = tuple(rows)
        if self.cache is not None and use_cache:
            cached = self.cache.lookup(rows_key, n_max)
            if cached is not None:
                zs, y = cached
                if key is None:
                    key = _draw_key(p, rng)
                x = list(y)
                x[0] = (x[0] + key) % p
                return key, AcvHeader(q=p, x=tuple(x), zs=zs)
            base = self.cache.take_extendable(rows_key, n_max)
            if base is not None:
                fact, extra = base
                with stage("acv.update", rows=len(rows), added=len(extra)):
                    with get_registry().timer("gkm.acv_update_seconds"):
                        fact.extend(
                            extra, added_capacity=n_max - fact.capacity, rng=rng
                        )
                        key, header = self.core.rekey_from_factorization(
                            fact, rng=rng, key=key
                        )
                y = list(header.x)
                y[0] = (y[0] - key) % p
                self.cache.store(rows_key, n_max, header.zs, tuple(y), fact)
                return key, header
        with stage("acv.solve", rows=len(rows)):
            with get_registry().timer("gkm.acv_solve_seconds"):
                if self.cache is not None:
                    fresh_key, header, fact = self.core.generate_with_factorization(
                        rows, n_max=n_max, rng=rng
                    )
                else:
                    fresh_key, header = self.core.generate(rows, n_max=n_max, rng=rng)
                    fact = None
        if self.cache is not None:
            y = list(header.x)
            y[0] = (y[0] - fresh_key) % p
            self.cache.store(rows_key, n_max, header.zs, tuple(y), fact)
        if key is None or key == fresh_key:
            return fresh_key, header
        x = list(header.x)
        x[0] = (x[0] - fresh_key + key) % p
        return key, AcvHeader(q=p, x=tuple(x), zs=header.zs)


class DenseGkmStrategy:
    """One matrix per configuration -- the paper's Section V-C baseline."""

    name = "dense"

    def __init__(self, core: AcvBgkm, cache: Optional[AcvBuildCache] = None):
        self.core = core
        self._builder = _CachedAcvBuilder(core, cache)

    def build(
        self,
        rows: Sequence[Tuple[bytes, ...]],
        capacity: Optional[int],
        slack: int,
        rng: Optional[random.Random],
    ) -> Tuple[int, AcvHeader]:
        n_max = capacity if capacity is not None else max(len(rows), 1) + slack
        return self._builder.build(rows, n_max, rng)


class BucketedGkmStrategy:
    """Row-order buckets, one ACV each, one shared key (Section VIII-C).

    ``bucket_size`` is the fixed rows-per-bucket knob; ``None`` selects
    the auto policy ``ceil(sqrt(m))`` for ``m`` rows, which balances the
    per-bucket cubic cost against header fan-out without configuration.
    An explicit ``capacity`` is interpreted *per bucket* (it must cover
    the largest bucket); otherwise each bucket gets the Eq.-1 minimum
    for its own rows plus the publisher's ``capacity_slack``.
    """

    name = "bucketed"

    def __init__(
        self,
        core: AcvBgkm,
        cache: Optional[AcvBuildCache] = None,
        bucket_size: Optional[int] = None,
    ):
        if bucket_size is not None and bucket_size < 1:
            raise InvalidParameterError("bucket_size must be >= 1 or None (auto)")
        self.core = core
        self.bucket_size = bucket_size
        self._builder = _CachedAcvBuilder(core, cache)

    def resolve_bucket_size(self, row_count: int) -> int:
        """The effective rows-per-bucket for ``row_count`` rows."""
        if self.bucket_size is not None:
            return self.bucket_size
        return auto_bucket_size(row_count)

    def chunk(
        self, rows: Sequence[Tuple[bytes, ...]]
    ) -> List[List[Tuple[bytes, ...]]]:
        """Row-order bucket assignment (the layout subscribers scan)."""
        size = self.resolve_bucket_size(len(rows))
        return [
            list(rows[i : i + size]) for i in range(0, max(len(rows), 1), size)
        ] or [[]]

    def build(
        self,
        rows: Sequence[Tuple[bytes, ...]],
        capacity: Optional[int],
        slack: int,
        rng: Optional[random.Random],
    ) -> Tuple[int, BucketedHeader]:
        key: Optional[int] = None
        headers = []
        seen_chunks = set()
        for chunk in self.chunk(rows):
            n_max = (
                capacity if capacity is not None else max(len(chunk), 1) + slack
            )
            chunk_id = (tuple(chunk), n_max)
            key, header = self._builder.build(
                chunk, n_max, rng, key=key,
                use_cache=chunk_id not in seen_chunks,
            )
            seen_chunks.add(chunk_id)
            headers.append(header)
        assert key is not None
        return key, BucketedHeader(buckets=tuple(headers))


def build_strategy(
    gkm: str,
    core: AcvBgkm,
    cache: Optional[AcvBuildCache] = None,
    bucket_size: Optional[int] = None,
):
    """Instantiate the named publish-path strategy."""
    if gkm == "dense":
        return DenseGkmStrategy(core, cache)
    if gkm == "bucketed":
        return BucketedGkmStrategy(core, cache, bucket_size=bucket_size)
    raise InvalidParameterError(
        "gkm strategy must be one of %s, got %r" % (GKM_STRATEGIES, gkm)
    )
