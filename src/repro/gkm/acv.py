"""ACV-BGKM: broadcast group key management with access control vectors.

This is the paper's core contribution (Section V-C).  For one policy
configuration the publisher:

1. collects, for every access control policy ``acp_k`` and every subscriber
   qualified for it, the ordered tuple of CSS values ``(r_{i,1}..r_{i,m_k})``
   matching ``acp_k``'s conditions -- one *row* per (policy, subscriber);
2. draws nonces ``z_1..z_N`` (``tau * N > 160`` bits total, Section V-C) and
   forms the matrix ``A`` with rows ``(1, a_{i,1}, ..., a_{i,N})`` where
   ``a_{i,j} = H(r_{i,1} || ... || r_{i,m_k} || z_j) mod q``   (Eq. 2);
3. solves ``A Y = 0`` for a nonzero access control vector ``Y`` and
   publishes ``X = (K, 0, ..., 0)^T + Y`` together with the nonces.

A qualified subscriber recomputes its row -- the *key extraction vector*
``nu = (1, a_1, ..., a_N)`` -- and recovers ``K = nu . X``; everyone else
sees only uniformly random-looking values (Section VI-B).  Rekeying =
regenerate and re-publish; no unicast, no subscriber state change.

The published vector is serialized with zero-run-length compression, which
reproduces the paper's Figure 5 behaviour (ACV size growing with the number
of *current* subscribers, not just with the capacity ``N``): choosing the
ACV as a combination of few null-space basis vectors keeps it sparse when
the matrix has few rows.
"""

from __future__ import annotations

import random
import secrets
import struct
from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.crypto.hashes import HashFunction, default_hash, hash_concat
from repro.crypto.kdf import derive_key
from repro.errors import (
    CapacityError,
    GKMError,
    InvalidParameterError,
    KeyDerivationError,
    SerializationError,
)
from repro.gkm.base import BroadcastGkm, RekeyBroadcast
from repro.mathx.field import PrimeField
from repro.mathx.linalg import Matrix, RrefFactorization

__all__ = [
    "AcvHeader",
    "AcvBgkm",
    "AcvBroadcastGkm",
    "AcvFactorization",
    "PAPER_FIELD",
    "FAST_FIELD",
]

#: The paper's experiments use an 80-bit prime field for F_q.
PAPER_FIELD = PrimeField(604462909807314587353111, check_prime=False)
#: Word-sized field: elimination vectorises through the numpy kernel.
FAST_FIELD = PrimeField(1073741827, check_prime=False)

_MAGIC = b"ACV1"


def _auto_z_bytes(n: int) -> int:
    """Nonce width: the paper requires ``tau * N > 160`` bits in total.

    We additionally floor the width at 4 bytes so individual nonces stay
    collision-free up to tens of thousands of columns -- duplicate nonces
    are harmless for correctness but would make matrix columns coincide,
    distorting the size/derivation profile the benchmarks measure.
    """
    return max(4, -(-168 // (8 * max(n, 1))))


def _draw_nonces(
    count: int, width: int, rng: Optional[random.Random]
) -> Tuple[bytes, ...]:
    """``count`` nonces of ``width`` bytes, in the canonical draw order.

    Shared by :meth:`AcvBgkm.generate` and the incremental extension path so
    a seeded ``rng`` produces the same stream either way.
    """
    if rng is not None:
        return tuple(
            bytes(rng.randrange(256) for _ in range(width)) for _ in range(count)
        )
    return tuple(secrets.token_bytes(width) for _ in range(count))


def _draw_field_key(p: int, rng: Optional[random.Random]) -> int:
    """A uniform element of ``F_p^*`` from ``rng`` (or the system CSPRNG)."""
    if rng is not None:
        return rng.randrange(1, p)
    return secrets.randbelow(p - 1) + 1


@dataclass(frozen=True)
class AcvHeader:
    """The public rekey payload ``(X, z_1..z_N)`` broadcast with documents."""

    q: int
    x: Tuple[int, ...]
    zs: Tuple[bytes, ...]

    @property
    def capacity(self) -> int:
        """The maximum-user parameter N."""
        return len(self.zs)

    # -- serialization -----------------------------------------------------

    def to_bytes(self) -> bytes:
        """Canonical wire encoding with zero-run-length compressed ``X``."""
        q_raw = self.q.to_bytes((self.q.bit_length() + 7) // 8, "big")
        z_len = len(self.zs[0]) if self.zs else 0
        out = bytearray()
        out += _MAGIC
        out += struct.pack(">H", len(q_raw))
        out += q_raw
        out += struct.pack(">IH", len(self.zs), z_len)
        for z in self.zs:
            if len(z) != z_len:
                raise SerializationError("inconsistent nonce lengths")
            out += z
        elem_len = len(q_raw)
        i = 0
        n = len(self.x)
        out += struct.pack(">I", n)
        while i < n:
            if self.x[i] == 0:
                run = i
                while run < n and self.x[run] == 0:
                    run += 1
                out += b"\x00" + struct.pack(">I", run - i)
                i = run
            else:
                run = i
                while run < n and self.x[run] != 0 and run - i < 0xFFFF:
                    run += 1
                out += b"\x01" + struct.pack(">H", run - i)
                for j in range(i, run):
                    out += self.x[j].to_bytes(elem_len, "big")
                i = run
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "AcvHeader":
        """Parse :meth:`to_bytes` output."""
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            (q_len,) = struct.unpack_from(">H", data, offset)
            offset += 2
            q = int.from_bytes(data[offset : offset + q_len], "big")
            offset += q_len
            # The modulus is attacker-controlled: q < 2 would make derive()
            # divide by zero (or reduce everything to 0) instead of failing
            # typed.  No valid field has such a modulus, so refuse at parse.
            if q < 2:
                raise SerializationError("modulus q=%d is not a valid field" % q)
            n_z, z_len = struct.unpack_from(">IH", data, offset)
            offset += 6
            # Zero-width (or absent) nonces would collapse every matrix
            # column into the same hash; the publisher never emits them
            # (z_bytes >= 4, capacity >= 1), so they only appear in hostile
            # headers.
            if n_z == 0 or z_len == 0:
                raise SerializationError("header must carry nonzero-width nonces")
            # Bounds sanity: counts are attacker-controlled; never allocate
            # more than the payload could possibly encode.
            if n_z * z_len > len(data):
                raise SerializationError("nonce count exceeds payload")
            zs = []
            for _ in range(n_z):
                if offset + z_len > len(data):
                    raise SerializationError("truncated nonce")
                zs.append(data[offset : offset + z_len])
                offset += z_len
            (n_x,) = struct.unpack_from(">I", data, offset)
            offset += 4
            if n_x > 8 * len(data) + 64:
                raise SerializationError("X arity exceeds payload")
            x: List[int] = []
            while len(x) < n_x:
                token = data[offset]
                offset += 1
                if token == 0:
                    (run,) = struct.unpack_from(">I", data, offset)
                    offset += 4
                    if run > n_x - len(x):
                        raise SerializationError("zero run exceeds X arity")
                    x.extend([0] * run)
                elif token == 1:
                    (count,) = struct.unpack_from(">H", data, offset)
                    offset += 2
                    if offset + count * q_len > len(data):
                        raise SerializationError("literal run exceeds payload")
                    for _ in range(count):
                        x.append(int.from_bytes(data[offset : offset + q_len], "big"))
                        offset += q_len
                else:
                    raise SerializationError("bad RLE token %d" % token)
            if len(x) != n_x:
                raise SerializationError("X over-run")
            return cls(q=q, x=tuple(x), zs=tuple(zs))
        except (IndexError, struct.error) as exc:
            raise SerializationError("truncated ACV header") from exc

    def byte_size(self) -> int:
        """Compressed wire size (what Figure 5 measures)."""
        return len(self.to_bytes())


class AcvBgkm:
    """Publisher- and subscriber-side ACV-BGKM operations for one field."""

    def __init__(
        self,
        field: PrimeField = PAPER_FIELD,
        hash_fn: Optional[HashFunction] = None,
        compress_terms: Optional[int] = 1,
    ):
        """``compress_terms`` controls how many null-space basis vectors are
        mixed into the ACV: ``1`` (default) keeps it as sparse as the current
        membership allows (the paper's "compressed" broadcast); ``None``
        mixes all of them (dense)."""
        if compress_terms is not None and compress_terms < 1:
            raise InvalidParameterError("compress_terms must be >= 1 or None")
        self.field = field
        self.hash_fn = hash_fn or default_hash()
        self.compress_terms = compress_terms

    # -- publisher side -----------------------------------------------------

    def build_matrix(
        self,
        rows: Sequence[Sequence[bytes]],
        zs: Sequence[bytes],
    ) -> Matrix:
        """The matrix ``A`` of Section V-C.1 for given CSS rows and nonces."""
        q = self.field.p
        h = self.hash_fn
        data = []
        for css_tuple in rows:
            parts = [bytes(c) for c in css_tuple]
            data.append(
                [1] + [hash_concat(h, parts + [z], q) for z in zs]
            )
        return Matrix(self.field, data)

    def generate(
        self,
        rows: Sequence[Sequence[bytes]],
        n_max: Optional[int] = None,
        rng: Optional[random.Random] = None,
        z_bytes: Optional[int] = None,
    ) -> Tuple[int, AcvHeader]:
        """Run one rekey: returns ``(K, header)`` with ``K`` uniform in
        ``F_q^*``.

        ``rows`` holds one CSS tuple per (policy, qualified subscriber)
        pair; ``n_max`` is the capacity ``N`` (defaults to ``len(rows)``,
        the tightest capacity Eq. 1 allows).
        """
        m = len(rows)
        n = n_max if n_max is not None else max(m, 1)
        if n < m:
            raise CapacityError(
                "capacity N=%d below the %d qualified rows (Eq. 1)" % (n, m)
            )
        zb = z_bytes if z_bytes is not None else _auto_z_bytes(n)
        zs = _draw_nonces(n, zb, rng)
        key = _draw_field_key(self.field.p, rng)

        if rows:
            matrix = self.build_matrix(rows, zs)
            basis = matrix.null_space()
        else:
            # No qualified subscriber: any nonzero vector is a valid ACV.
            basis = [
                tuple(1 if j == i else 0 for j in range(n + 1)) for i in range(n + 1)
            ]
        if not basis:
            raise GKMError("null space unexpectedly trivial")
        y = self._random_combination(basis, n + 1, rng)
        x = list(y)
        x[0] = (x[0] + key) % self.field.p
        return key, AcvHeader(q=self.field.p, x=tuple(x), zs=zs)

    def factorize(
        self, rows: Sequence[Sequence[bytes]], zs: Sequence[bytes]
    ) -> "AcvFactorization":
        """The carried elimination state for ``rows`` under nonces ``zs``."""
        if len(rows) > len(zs):
            raise CapacityError(
                "capacity N=%d below the %d qualified rows (Eq. 1)"
                % (len(zs), len(rows))
            )
        if rows:
            rref = self.build_matrix(rows, zs).rref_factorization()
        else:
            rref = RrefFactorization(self.field, len(zs) + 1)
        return AcvFactorization(self, rows, zs, rref)

    def generate_with_factorization(
        self,
        rows: Sequence[Sequence[bytes]],
        n_max: Optional[int] = None,
        rng: Optional[random.Random] = None,
        z_bytes: Optional[int] = None,
    ) -> Tuple[int, AcvHeader, "AcvFactorization"]:
        """:meth:`generate`, additionally returning the elimination state.

        Draw order (nonces, key, combination coefficients) and the
        null-space basis (RREF is canonical) match :meth:`generate` exactly,
        so for the same seeded ``rng`` the header is byte-identical -- the
        factorization rides along for free, ready for later
        :meth:`AcvFactorization.extend` calls.
        """
        m = len(rows)
        n = n_max if n_max is not None else max(m, 1)
        if n < m:
            raise CapacityError(
                "capacity N=%d below the %d qualified rows (Eq. 1)" % (n, m)
            )
        zb = z_bytes if z_bytes is not None else _auto_z_bytes(n)
        zs = _draw_nonces(n, zb, rng)
        key = _draw_field_key(self.field.p, rng)
        fact = self.factorize(rows, zs)
        y = self._random_combination(fact.null_basis(), n + 1, rng)
        x = list(y)
        x[0] = (x[0] + key) % self.field.p
        return key, AcvHeader(q=self.field.p, x=tuple(x), zs=zs), fact

    def rekey_from_factorization(
        self,
        fact: "AcvFactorization",
        rng: Optional[random.Random] = None,
        key: Optional[int] = None,
    ) -> Tuple[int, AcvHeader]:
        """Publish a fresh ``(K, header)`` from a maintained factorization.

        The expensive part -- the null space of the access matrix -- is
        already carried by ``fact``; this only draws a key (unless the
        caller supplies one for a shared-key bucket group) and a fresh
        random combination, mirroring the tail of :meth:`generate`.
        """
        p = self.field.p
        if key is None:
            key = _draw_field_key(p, rng)
        y = self._random_combination(fact.null_basis(), fact.capacity + 1, rng)
        x = list(y)
        x[0] = (x[0] + key) % p
        return key, AcvHeader(q=p, x=tuple(x), zs=fact.zs)

    def _random_combination(
        self,
        basis: Sequence[Tuple[int, ...]],
        width: int,
        rng: Optional[random.Random],
    ) -> List[int]:
        """A random nonzero combination of (a subset of) the basis."""
        p = self.field.p
        if self.compress_terms is not None and len(basis) > self.compress_terms:
            if rng is not None:
                chosen = rng.sample(range(len(basis)), self.compress_terms)
            else:
                sysrand = random.SystemRandom()
                chosen = sysrand.sample(range(len(basis)), self.compress_terms)
            basis = [basis[i] for i in chosen]
        while True:
            if rng is not None:
                coeffs = [rng.randrange(1, p) for _ in basis]
            else:
                coeffs = [secrets.randbelow(p - 1) + 1 for _ in basis]
            y = [0] * width
            for c, b in zip(coeffs, basis):
                for j, bj in enumerate(b):
                    if bj:
                        y[j] = (y[j] + c * bj) % p
            if any(y):
                return y

    # -- subscriber side -----------------------------------------------------

    def key_extraction_vector(
        self, header: AcvHeader, css: Sequence[bytes]
    ) -> Tuple[int, ...]:
        """The subscriber's KEV ``(1, a_1, ..., a_N)`` for its CSS tuple.

        Entries multiplying a zero coordinate of ``X`` are skipped (left 0),
        which both mirrors the compressed broadcast and speeds derivation.

        The arity/modulus checks live here (not only in :meth:`derive`)
        because the bucketed candidate scan calls this directly with
        attacker-influenced headers: a short ``X`` must fail typed, not
        with a bare ``IndexError``.
        """
        if len(header.x) != header.capacity + 1:
            raise KeyDerivationError("header X has wrong arity")
        if header.q < 2:
            raise KeyDerivationError("header modulus is not a valid field")
        q = header.q
        h = self.hash_fn
        parts = [bytes(c) for c in css]
        kev = [1] + [0] * header.capacity
        for j, z in enumerate(header.zs):
            if header.x[j + 1] != 0:
                kev[j + 1] = hash_concat(h, parts + [z], q)
        return tuple(kev)

    def derive(self, header: AcvHeader, css: Sequence[bytes]) -> int:
        """Derive ``K = KEV . X`` (Section V-C "Decryption Key Derivation").

        The result is only the *correct* key when the CSS tuple matches a
        qualified row; otherwise it is an unpredictable field element --
        callers detect failure through authenticated decryption.
        """
        q = header.q
        kev = self.key_extraction_vector(header, css)
        return sum(a * b for a, b in zip(kev, header.x)) % q

    def export_key(self, key: int, key_len: int = 16) -> bytes:
        """Map the group key ``K in F_q`` to symmetric key bytes."""
        raw = key.to_bytes(self.field.byte_length, "big")
        return derive_key(raw, key_len, info=b"repro/acv-bgkm/doc-key")


class AcvFactorization:
    """Carried elimination state of one configuration (or one bucket).

    Bundles the CSS rows (in matrix feed order), the nonce tuple, and a
    tracked :class:`~repro.mathx.linalg.RrefFactorization` of the access
    matrix ``A``, so a membership *join* -- a pure row/column extension --
    costs ``O(m^2)`` instead of the ``O(m^3)`` from-scratch elimination.

    Security envelope: reusing the nonces across an extension is safe
    precisely because a join only ever *adds* rows -- every previously
    qualified CSS tuple stays qualified, and no tuple loses entitlement.
    A revoke or credential replacement removes/changes a row, which
    demands fresh nonces and a full re-solve; callers enforce that by
    dropping the factorization (see ``AcvBuildCache.invalidate``).
    """

    __slots__ = ("_core", "rows", "zs", "_rref", "_basis")

    def __init__(
        self,
        core: AcvBgkm,
        rows: Sequence[Sequence[bytes]],
        zs: Sequence[bytes],
        rref: RrefFactorization,
    ):
        self._core = core
        self.rows: List[Tuple[bytes, ...]] = [tuple(r) for r in rows]
        self.zs: Tuple[bytes, ...] = tuple(zs)
        self._rref = rref
        self._basis: Optional[List[Tuple[int, ...]]] = None

    @property
    def capacity(self) -> int:
        """The maximum-user parameter N carried by this state."""
        return len(self.zs)

    def extend(
        self,
        new_rows: Sequence[Sequence[bytes]],
        added_capacity: int = 0,
        rng: Optional[random.Random] = None,
    ) -> None:
        """Fold a join in: grow capacity by ``added_capacity`` fresh nonces,
        then reduce each new CSS row against the carried pivots.

        Fresh nonces are drawn at the *existing* nonce width (the header
        wire format requires uniform lengths), each contributing one new
        matrix column mapped through the carried row transform; each new
        row then costs one reduction pass.  Existing rows, nonces, and the
        annihilation property for every old row are untouched.
        """
        if added_capacity < 0:
            raise InvalidParameterError("negative capacity extension")
        total = len(self.rows) + len(new_rows)
        if total > self.capacity + added_capacity:
            raise CapacityError(
                "capacity N=%d below the %d qualified rows (Eq. 1)"
                % (self.capacity + added_capacity, total)
            )
        q = self._core.field.p
        h = self._core.hash_fn
        width = len(self.zs[0]) if self.zs else _auto_z_bytes(
            self.capacity + added_capacity
        )
        fresh = _draw_nonces(added_capacity, width, rng)
        for z in fresh:
            column = [
                hash_concat(h, [bytes(c) for c in row] + [z], q) for row in self.rows
            ]
            self._rref.extend_column(column)
        self.zs = self.zs + fresh
        for row in new_rows:
            parts = [bytes(c) for c in row]
            matrix_row = [1] + [hash_concat(h, parts + [z], q) for z in self.zs]
            self._rref.extend_row(matrix_row)
            self.rows.append(tuple(row))
        self._basis = None

    def null_basis(self) -> List[Tuple[int, ...]]:
        """The null-space basis of the carried matrix (cached per state)."""
        if self._basis is None:
            basis = self._rref.null_space()
            if not basis:
                raise GKMError("null space unexpectedly trivial")
            self._basis = basis
        return self._basis


class AcvBroadcastGkm(BroadcastGkm):
    """Flat-membership adapter: one member = one single-CSS row.

    Lets ACV-BGKM compete in the baseline benchmarks that treat a group as
    a set of (id, secret) members without policy structure.
    """

    name = "acv-bgkm"

    def __init__(
        self,
        field: PrimeField = PAPER_FIELD,
        capacity: Optional[int] = None,
        hash_fn: Optional[HashFunction] = None,
        key_len: int = 16,
    ):
        super().__init__()
        self._core = AcvBgkm(field, hash_fn)
        self.capacity = capacity
        self.key_len = key_len
        self._last_header: Optional[AcvHeader] = None

    def rekey(self, rng: Optional[random.Random] = None) -> Tuple[bytes, RekeyBroadcast]:
        rows = [(secret,) for _, secret in sorted(self._members.items())]
        n_max = self.capacity
        if n_max is not None and n_max < len(rows):
            raise CapacityError("more members than configured capacity")
        key_int, header = self._core.generate(rows, n_max=n_max, rng=rng)
        self._last_header = header
        key = self._core.export_key(key_int, self.key_len)
        return key, RekeyBroadcast(
            scheme=self.name, payload=header.to_bytes(), parts=header
        )

    def derive(self, secret: bytes, broadcast: RekeyBroadcast) -> bytes:
        header = (
            broadcast.parts
            if isinstance(broadcast.parts, AcvHeader)
            else AcvHeader.from_bytes(broadcast.payload)
        )
        key_int = self._core.derive(header, (secret,))
        if key_int == 0:
            raise KeyDerivationError("derived the zero element")
        return self._core.export_key(key_int, self.key_len)
