"""The asyncio broker: socket routing with in-memory-router semantics.

:class:`BrokerServer` is ``InMemoryTransport`` behind a TCP listener --
literally: it *contains* one, and every routing and accounting decision
(per-entity FIFO inboxes, ``"*"`` multicast fan-out, byte accounting of
each transmission) is delegated to it, so the network deployment and the
single-process tests share one behaviour by construction.  The paper's
bandwidth claims (O(l'N) broadcast frames, zero unicast on rekey) and the
privacy-audit log therefore remain measurable on the real network path:
clients fetch the accounting with a ``StatsRequest``.

Connection lifecycle (protocol in :mod:`repro.net.protocol`):

1. first frame must be :class:`~repro.net.protocol.Hello`; the name must
   not be in use (one live connection per entity -- spoof-on-connect is
   refused) and is answered with ``Welcome``;
2. queued traffic for the entity (accumulated while offline) is pushed,
   then new deliveries as they arrive, each as a ``NetDeliver`` frame;
3. every routed frame's declared sender must equal the connection's
   entity -- a client cannot forge another entity's outgoing traffic;
4. any malformed frame, oversized length declaration, or protocol
   violation drops the connection (a byte stream cannot be resynchronized
   after garbage) without disturbing other connections or routed state.

Disconnection keeps the entity's inbox: a reconnecting entity drains the
backlog.  Deliveries pushed but unacked at disconnect time are forgotten
(at-most-once delivery); per-entity inboxes are bounded by ``max_inbox``
(oldest dropped first), so hostile or dead peers cannot grow broker
memory without bound.  A *connected* peer that stops reading trips the
slow-consumer policy instead: once its outbound backlog crosses the
bound the broker disconnects it and counts the event
(``slow_consumer_disconnects`` in stats), converting the stall into the
already-bounded offline case.

Relay federation: a connection may open with ``RelayHello`` instead of
``Hello``, binding it as a downstream *relay link* (see
:mod:`repro.net.relay`).  The root broker stays the single authority --
entities below relays are admitted through ``RelayAttach`` against the
same global name table, every frame a relay forwards up is routed and
accounted here exactly as if the entity were directly connected, and
broadcasts go down each relay link as one ``RelayBroadcast`` carrying a
root-assigned sequence id for per-hop dedup.  Relays never receive key
material: the link carries only opaque routed payloads.

Run standalone::

    python -m repro.net.broker --port 7812 [--port-file PATH]

With ``--port 0`` the bound endpoint is printed on stdout as a
machine-parseable ``ENDPOINT host:port`` line (and optionally written to
``--port-file``), so supervisors can chain processes without port races.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os
import signal
import sys
from collections import deque
from typing import Deque, Dict, Optional, Set, Tuple, Union

from repro.errors import NetworkError, ReproError, SerializationError
from repro.net._cli import write_port_file
from repro.net.protocol import (
    ENVELOPE_OVERHEAD,
    MAX_NAME_LEN,
    Ack,
    Hello,
    MetricsReport,
    MetricsRequest,
    NetBroadcast,
    NetDeliver,
    NetMessage,
    RelayAttach,
    RelayAttachReply,
    RelayBroadcast,
    RelayDetach,
    RelayHello,
    RelayStatsReply,
    RelayStatsRequest,
    RelayWelcome,
    Shutdown,
    StatsReply,
    StatsRequest,
    TrafficRecord,
    Welcome,
    decode_net_payload,
)
from repro.net.stream import FrameStream
from repro.obs.metrics import (
    MetricsRegistry,
    merge_snapshots,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.trace import SpanWriter, tracing
from repro.system.transport import BROADCAST, Delivery, InMemoryTransport
from repro.wire.codec import DEFAULT_MAX_FRAME_PAYLOAD

__all__ = ["BrokerServer", "main"]

logger = logging.getLogger("repro.net.broker")

#: Deliveries pushed per inbox poll (bounds per-connection burst size).
PUSH_BATCH = 32


class _Connection:
    """Broker-side state for one live entity connection."""

    __slots__ = ("entity", "stream", "in_flight", "mail", "pusher")

    def __init__(self, entity: str, stream: FrameStream):
        self.entity = entity
        self.stream = stream
        #: Deliveries pushed down this connection but not yet acked
        #: (i.e. not yet processed by the remote endpoint).
        self.in_flight = 0
        self.mail = asyncio.Event()
        self.pusher: Optional[asyncio.Task] = None


class _RelayLink:
    """Broker-side state for one downstream relay connection.

    Unlike a leaf :class:`_Connection` (which drains a router inbox), a
    relay link has its own bounded outbound queue: frames for *many*
    entities share it, and overflow means the relay process itself has
    stalled -- the slow-consumer policy drops the whole link rather than
    queue without bound.
    """

    __slots__ = (
        "relay_id", "stream", "outbound", "wake", "in_flight",
        "sender_task", "entities", "closed", "last_metrics",
    )

    def __init__(self, relay_id: str, stream: FrameStream):
        self.relay_id = relay_id
        self.stream = stream
        #: The latest metrics snapshot this relay pushed up (its whole
        #: subtree, pre-merged relay-side); None until the first push.
        self.last_metrics: Optional[dict] = None
        #: (message, counted) pairs awaiting transmission.  ``counted``
        #: marks routed units that participate in quiescence accounting
        #: (NetDeliver/RelayBroadcast); control replies are uncounted.
        self.outbound: Deque[Tuple[NetMessage, bool]] = deque()
        self.wake = asyncio.Event()
        #: Counted units queued/sent down this link but not yet acked by
        #: the relay (which acks only once its whole subtree processed
        #: them) -- incremented at *queue* time so a frame is never in
        #: neither ``pending`` nor ``in_flight``.
        self.in_flight = 0
        self.sender_task: Optional[asyncio.Task] = None
        #: Entity names attached below this link (global table mirror).
        self.entities: Set[str] = set()
        self.closed = False


async def _send(stream: FrameStream, message: NetMessage) -> None:
    await stream.send(message.TYPE_ID, message.payload_bytes())


class BrokerServer:
    """Routes wire frames between named entities over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = DEFAULT_MAX_FRAME_PAYLOAD,
        max_inbox: int = 10_000,
        max_entities: int = 10_000,
        handshake_timeout: float = 10.0,
        max_log: int = 100_000,
        max_backlog: int = 10_000,
        max_relays: int = 256,
        metrics_interval: float = 0.0,
        obs_path: Optional[str] = None,
    ):
        self.host = host
        self.port = port  # updated to the bound port by start()
        self.max_frame = max_frame
        self.max_inbox = max_inbox
        #: Bound on distinct entity names (inboxes): together with
        #: ``max_inbox`` and ``max_frame`` this caps total queued state, so
        #: a connected peer cannot grow broker memory by spraying
        #: deliveries at fabricated receiver names.
        self.max_entities = max_entities
        #: A connection must complete its Hello within this budget, or a
        #: peer could park unlimited pre-authentication connections (each
        #: holding a socket and buffers) that none of the entity bounds
        #: ever see.
        self.handshake_timeout = handshake_timeout
        #: Accounting-log record bound: a long-running broker trims the
        #: oldest records (flagged via ``log_complete=False`` in stats)
        #: rather than growing per-delivery state forever.
        self.max_log = max_log
        #: Slow-consumer policy: a connected peer whose outbound backlog
        #: (inbox for leaves, link queue for relays) crosses this bound
        #: is disconnected and counted, never queued for without limit.
        self.max_backlog = max_backlog
        #: Bound on simultaneously connected downstream relay links.
        self.max_relays = max_relays
        #: Seconds between periodic metrics span records (0 = off).  The
        #: broker is the federation root, so it has nowhere to push
        #: reports *to*; its interval drives local ``obs.jsonl`` metrics
        #: lines instead (relays additionally push up on theirs).
        self.metrics_interval = metrics_interval
        #: Per-instance registry: multiple brokers in one test process
        #: must not share counters.
        self.metrics = MetricsRegistry()
        self._obs = SpanWriter(obs_path, "broker") if obs_path else None
        self._metrics_task: Optional[asyncio.Task] = None
        #: Routing + accounting: the same router the in-process tests use.
        self.route = InMemoryTransport()
        self.delivered_total = 0
        self.dropped_total = 0
        self.slow_consumer_disconnects = 0
        self.relay_broadcasts_down = 0
        self.bounced_requeues = 0
        self._broadcast_seq = 0
        self._log_trimmed = False
        self._connections: Dict[str, _Connection] = {}
        self._relays: Dict[str, _RelayLink] = {}
        #: Entity name -> the relay link it is attached below.  A name in
        #: this table is live (refused at Hello/RelayAttach) and its
        #: root-side inbox stays empty: traffic routes down the link.
        self._via_relay: Dict[str, _RelayLink] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        if self.metrics_interval > 0 and self._obs is not None:
            self._metrics_task = asyncio.get_running_loop().create_task(
                self._metrics_loop()
            )
        logger.info("broker listening on %s:%d", self.host, self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a Shutdown frame) then close."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.aclose()

    def shutdown(self) -> None:
        """Request a graceful stop (idempotent, callable from any task)."""
        self._shutdown.set()

    async def aclose(self) -> None:
        """Stop accepting, drop every connection, cancel pushers."""
        self._shutdown.set()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            self._metrics_task = None
        if self._obs is not None:
            self._obs.metrics(self._metrics_snapshot())  # final flush
            self._obs.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            if conn.pusher is not None:
                conn.pusher.cancel()
            await conn.stream.aclose()
        self._connections.clear()
        for link in list(self._relays.values()):
            link.closed = True
            if link.sender_task is not None:
                link.sender_task.cancel()
            await link.stream.aclose()
        self._relays.clear()
        self._via_relay.clear()

    # -- per-connection handling ---------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Envelope headroom: an application frame at exactly max_frame must
        # survive NetDeliver wrapping; the routed payload itself is bounded
        # separately in _require_payload.
        stream = FrameStream(reader, writer, self.max_frame + ENVELOPE_OVERHEAD)
        conn: Optional[_Connection] = None
        link: Optional[_RelayLink] = None
        try:
            peer = await asyncio.wait_for(
                self._handshake(stream), self.handshake_timeout
            )
            if peer is None:
                return
            if isinstance(peer, _RelayLink):
                link = peer
                await self._relay_read_loop(link)
            else:
                conn = peer
                await self._read_loop(conn)
        except asyncio.TimeoutError:
            logger.warning(
                "dropping connection %s: no Hello within %.1fs",
                stream.peername(), self.handshake_timeout,
            )
        except (ReproError, ConnectionError, OSError) as exc:
            # Hostile/garbage input or a vanished peer: drop this
            # connection, never the broker.
            who = "pre-hello"
            if conn is not None:
                who = conn.entity
            elif link is not None:
                who = "relay %s" % link.relay_id
            logger.warning(
                "dropping connection %s (%s): %s",
                stream.peername(), who, exc,
            )
        finally:
            if conn is not None:
                self._unregister(conn)
            if link is not None:
                self._drop_relay_link(link, "connection closed")
            await stream.aclose()

    async def _handshake(
        self, stream: FrameStream
    ) -> Optional[Union[_Connection, _RelayLink]]:
        first = await stream.recv()
        if first is None:
            return None  # connected and left; not an error
        hello = decode_net_payload(*first)
        if isinstance(hello, RelayHello):
            return await self._relay_handshake(stream, hello)
        if not isinstance(hello, Hello):
            raise SerializationError(
                "first frame must be Hello, got %s" % type(hello).__name__
            )
        entity = hello.entity
        refusal = self._admission_refusal(entity)
        if refusal is not None:
            logger.warning("refusing hello from %s: %s", stream.peername(), refusal)
            await _send(stream, Welcome(ok=False, entity=entity, reason=refusal))
            return None
        self.route.register(entity)
        conn = _Connection(entity, stream)
        self._connections[entity] = conn
        try:
            await _send(stream, Welcome(ok=True, entity=entity))
        except BaseException:
            # Covers the handshake deadline cancelling us mid-send: the
            # name was already claimed above and must not stay bound to a
            # connection the caller will never learn about.
            self._unregister(conn)
            raise
        conn.pusher = asyncio.get_running_loop().create_task(self._push_loop(conn))
        conn.mail.set()  # flush any backlog queued while offline
        self.metrics.inc("broker.connect")
        if self._obs is not None:
            self._obs.span("connect", peer=entity)
        logger.info("entity %r connected from %s", entity, stream.peername())
        return conn

    def _admission_refusal(self, entity: str) -> Optional[str]:
        """Why ``entity`` may not come live now (None = admitted).

        One rule for both admission paths -- direct Hello and
        RelayAttach forwarded up a relay chain -- so a name can be live
        on at most one connection anywhere in the federation tree.
        """
        if not entity:
            return "entity name must be non-empty"
        if len(entity) > MAX_NAME_LEN:
            return "entity name of %d bytes exceeds %d" % (
                len(entity), MAX_NAME_LEN,
            )
        if entity == BROADCAST:
            return "entity name %r is reserved for multicast" % BROADCAST
        if entity in self._connections or entity in self._via_relay:
            # Spoof-on-connect: the name is bound to a live connection
            # (directly here, or below some relay).
            return "entity %r is already connected" % entity
        if (
            not self.route.registered(entity)
            and self.route.entity_count() >= self.max_entities
        ):
            # The same bound _admit_entity applies to receivers: inboxes
            # survive disconnects, so churning Hellos under fresh names
            # must not mint unbounded broker state either.
            return "entity bound (%d) reached" % self.max_entities
        return None

    async def _relay_handshake(
        self, stream: FrameStream, hello: RelayHello
    ) -> Optional[_RelayLink]:
        relay_id = hello.relay_id
        refusal = None
        if not relay_id:
            refusal = "relay id must be non-empty"
        elif len(relay_id) > MAX_NAME_LEN:
            refusal = "relay id of %d bytes exceeds %d" % (
                len(relay_id), MAX_NAME_LEN,
            )
        elif relay_id == BROADCAST:
            refusal = "relay id %r is reserved for multicast" % BROADCAST
        elif relay_id in self._relays:
            refusal = "relay %r is already connected" % relay_id
        elif len(self._relays) >= self.max_relays:
            refusal = "relay bound (%d) reached" % self.max_relays
        if refusal is not None:
            logger.warning(
                "refusing relay hello from %s: %s", stream.peername(), refusal
            )
            await _send(
                stream,
                RelayWelcome(ok=False, relay_id=relay_id[:MAX_NAME_LEN],
                             reason=refusal),
            )
            return None
        link = _RelayLink(relay_id, stream)
        self._relays[relay_id] = link
        try:
            # The root's path is empty: the connecting relay appends
            # itself to form the path it hands its own downstreams.
            await _send(stream, RelayWelcome(ok=True, relay_id=relay_id, path=()))
        except BaseException:
            self._drop_relay_link(link, "handshake interrupted")
            raise
        link.sender_task = asyncio.get_running_loop().create_task(
            self._link_send_loop(link)
        )
        self.metrics.inc("broker.relay.connect")
        if self._obs is not None:
            self._obs.span("relay_connect", relay=relay_id)
        logger.info(
            "relay %r connected from %s", relay_id, stream.peername()
        )
        return link

    def _unregister(self, conn: _Connection) -> None:
        if self._connections.get(conn.entity) is conn:
            del self._connections[conn.entity]
        if conn.pusher is not None:
            conn.pusher.cancel()
        # in_flight pushes die with the connection (at-most-once); the
        # entity's unpushed inbox survives for a reconnect.
        self.metrics.inc("broker.disconnect")
        logger.info("entity %r disconnected", conn.entity)

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            frame = await conn.stream.recv()
            if frame is None:
                return
            message = decode_net_payload(*frame)
            if isinstance(message, NetDeliver):
                self._require_sender(conn, message.sender)
                self._require_payload(message.payload)
                self._route_unicast(message)
            elif isinstance(message, NetBroadcast):
                self._require_sender(conn, message.sender)
                self._require_payload(message.payload)
                self._fan_broadcast(message)
            elif isinstance(message, Ack):
                conn.in_flight = max(0, conn.in_flight - message.count)
            elif isinstance(message, StatsRequest):
                await _send(conn.stream, self._stats(message.include_log))
            elif isinstance(message, MetricsRequest):
                await _send(
                    conn.stream,
                    MetricsReport(
                        source="broker",
                        snapshot=snapshot_to_json(self._metrics_snapshot()),
                        trace=message.trace,
                    ),
                )
            elif isinstance(message, Shutdown):
                logger.info("shutdown requested by %r", conn.entity)
                self.shutdown()
                return
            else:
                raise SerializationError(
                    "client may not send %s" % type(message).__name__
                )

    # -- relay links -----------------------------------------------------------

    async def _relay_read_loop(self, link: _RelayLink) -> None:
        """Dispatch frames a downstream relay forwards up.

        The sender-spoof rule generalizes: a relay may only speak *for*
        entities attached below it, so ``sender`` must be bound via this
        very link -- with one deliberate exception.  A ``NetDeliver``
        whose sender is *not* attached below the link is a **bounce**: a
        frame this broker routed down that the subtree could no longer
        deliver (its entity detached while the frame was in flight), now
        returning behind the ``RelayDetach`` on the same FIFO link.  It
        is requeued toward the entity's current location *without* a
        second accounting record -- the bytes were accounted when first
        routed, and the audit log must stay topology-independent.  (A
        hostile relay could shape forgeries like bounces; the relay tier
        is routing infrastructure, trusted exactly as far as the root
        broker itself is for metadata -- never for content, which stays
        self-protecting.)  ``RelayBroadcast`` travelling *up* is a
        protocol violation -- no downstream node may inject multicast
        traffic.
        """
        while True:
            frame = await link.stream.recv()
            if frame is None:
                return
            message = decode_net_payload(*frame)
            if isinstance(message, NetDeliver):
                self._require_payload(message.payload)
                if self._via_relay.get(message.sender) is link:
                    self._route_unicast(message)
                else:
                    self._requeue_bounced(message)
            elif isinstance(message, NetBroadcast):
                self._require_attached(link, message.sender)
                self._require_payload(message.payload)
                self._fan_broadcast(message)
            elif isinstance(message, RelayAttach):
                self._attach(link, message.entity)
            elif isinstance(message, RelayDetach):
                self._detach(link, message.entity)
            elif isinstance(message, Ack):
                link.in_flight = max(0, link.in_flight - message.count)
            elif isinstance(message, RelayStatsRequest):
                self._route_stats(message)
            elif isinstance(message, MetricsReport):
                # Periodic push from the relay: its whole subtree, already
                # merged relay-side.  Kept (not forwarded) for the root
                # aggregate a MetricsRequest answers.
                link.last_metrics = snapshot_from_json(message.snapshot)
                self.metrics.inc("broker.relay.metrics_reports")
            elif isinstance(message, Shutdown):
                logger.info("shutdown requested via relay %r", link.relay_id)
                self.shutdown()
                return
            else:
                raise SerializationError(
                    "relay may not send %s" % type(message).__name__
                )

    def _require_attached(self, link: _RelayLink, sender: str) -> None:
        if self._via_relay.get(sender) is not link:
            raise SerializationError(
                "relay %r forwarded traffic for unattached sender %r"
                % (link.relay_id, sender)
            )

    def _requeue_bounced(self, message: NetDeliver) -> None:
        """Requeue a frame a subtree returned undeliverable.

        The ``RelayDetach`` that caused the bounce precedes it on the
        FIFO link, so the stale binding is already gone: the frame goes
        to the entity's root-side inbox (front -- it predates anything
        queued since the detach) or down its *new* link if it reattached
        elsewhere meanwhile.  No accounting, no ``delivered_total``: both
        were recorded when the frame was first routed.
        """
        self.bounced_requeues += 1
        self.metrics.inc("broker.bounce")
        if not self._admit_entity(message.receiver):
            return
        link = self._via_relay.get(message.receiver)
        if link is not None:
            self._queue_to_link(link, message, counted=True)
            return
        self.route.requeue(
            message.receiver,
            [Delivery(sender=message.sender, receiver=message.receiver,
                      kind=message.kind, payload=message.payload,
                      note=message.note,
                      trace=message.trace if any(message.trace) else b"")],
        )
        self._trim_inbox(message.receiver)
        self._kick(message.receiver)

    def _attach(self, link: _RelayLink, entity: str) -> None:
        """Admit an entity that said Hello somewhere below ``link``."""
        refusal = self._admission_refusal(entity)
        if refusal is not None:
            logger.warning(
                "refusing attach of %r via relay %r: %s",
                entity, link.relay_id, refusal,
            )
            self._queue_to_link(
                link,
                RelayAttachReply(ok=False, entity=entity[:MAX_NAME_LEN],
                                 reason=refusal),
                counted=False,
            )
            return
        self.route.register(entity)
        self._via_relay[entity] = link
        link.entities.add(entity)
        self._queue_to_link(
            link, RelayAttachReply(ok=True, entity=entity), counted=False
        )
        # Flush-on-attach: the offline backlog queued at the root drains
        # down the link, after the reply (the link queue is FIFO, so the
        # entity sees Welcome before its backlog -- same order a direct
        # reconnect observes).
        for delivery in self.route.poll(entity, None):
            self._queue_to_link(
                link,
                NetDeliver(
                    sender=delivery.sender,
                    receiver=delivery.receiver,
                    kind=delivery.kind,
                    note=delivery.note,
                    payload=delivery.payload,
                    trace=delivery.trace,
                ),
                counted=True,
            )
        if self._obs is not None:
            self._obs.span("attach", peer=entity, relay=link.relay_id)
        logger.info("entity %r attached via relay %r", entity, link.relay_id)

    def _detach(self, link: _RelayLink, entity: str) -> None:
        if self._via_relay.get(entity) is link:
            del self._via_relay[entity]
            link.entities.discard(entity)
            # The inbox survives: traffic for the name queues at the
            # root again (offline semantics) until it reattaches.
            logger.info("entity %r detached from relay %r", entity, link.relay_id)

    def _route_stats(self, message: RelayStatsRequest) -> None:
        link = self._via_relay.get(message.entity)
        if link is None:
            return  # raced a detach; nobody is waiting anymore
        reply = self._stats(message.include_log)
        self._queue_to_link(
            link,
            RelayStatsReply(entity=message.entity, reply=reply.payload_bytes()),
            counted=False,
        )

    def _queue_to_link(
        self, link: _RelayLink, message: NetMessage, counted: bool
    ) -> bool:
        """Enqueue one frame down a relay link, enforcing the backlog bound."""
        if link.closed:
            return False
        if len(link.outbound) >= self.max_backlog:
            self.slow_consumer_disconnects += 1
            self._drop_relay_link(
                link,
                "outbound backlog over %d frames (slow consumer)"
                % self.max_backlog,
            )
            return False
        link.outbound.append((message, counted))
        if counted:
            link.in_flight += 1
        link.wake.set()
        return True

    def _drop_relay_link(self, link: _RelayLink, reason: str) -> None:
        """Tear down a relay link and everything bound through it."""
        if link.closed:
            return
        link.closed = True
        if self._relays.get(link.relay_id) is link:
            del self._relays[link.relay_id]
        for entity in list(link.entities):
            if self._via_relay.get(entity) is link:
                del self._via_relay[entity]
        link.entities.clear()
        if link.sender_task is not None:
            link.sender_task.cancel()
        asyncio.get_running_loop().create_task(link.stream.aclose())
        self.metrics.inc("broker.relay.drop")
        logger.warning("dropping relay link %r: %s", link.relay_id, reason)

    async def _link_send_loop(self, link: _RelayLink) -> None:
        """Drain the link's outbound queue in order.

        At-most-once on link death: unsent frames are dropped with the
        link -- every entity they address just became unreachable, and
        its name unbinds back to offline queueing at the root.
        """
        while True:
            await link.wake.wait()
            link.wake.clear()
            while link.outbound:
                message, counted = link.outbound[0]
                try:
                    await _send(link.stream, message)
                except SerializationError:
                    if counted:
                        link.in_flight = max(0, link.in_flight - 1)
                    self.dropped_total += 1
                    logger.warning(
                        "dropping undeliverable frame for relay %r "
                        "(envelope over the cap)", link.relay_id,
                    )
                except (NetworkError, ConnectionError, OSError):
                    return  # the read loop observes EOF and cleans up
                link.outbound.popleft()

    # -- routing ---------------------------------------------------------------

    def _route_unicast(self, message: NetDeliver) -> None:
        """Route one admitted unicast to a leaf inbox or down a relay link."""
        if message.receiver == BROADCAST:
            raise SerializationError(
                "unicast frame addressed to %r" % BROADCAST
            )
        if not self._admit_entity(message.receiver):
            return  # over the name bound: accounted as dropped
        self.metrics.inc("broker.deliver")
        if self._obs is not None:
            self._obs.span(
                "deliver", trace=message.trace, sender=message.sender,
                receiver=message.receiver, kind=message.kind,
                size=len(message.payload),
            )
        link = self._via_relay.get(message.receiver)
        if link is None:
            # tracing(): the router stamps the *ambient* trace onto the
            # Delivery it queues, so the frame's id must be ambient here
            # for the push loop to carry it onward.
            with tracing(message.trace):
                self.route.deliver(
                    message.sender,
                    message.receiver,
                    message.kind,
                    message.payload,
                    note=message.note,
                )
            self.delivered_total += 1
            self._trim_inbox(message.receiver)
            self._kick(message.receiver)
        else:
            # Same accounting record as a direct delivery (the audit log
            # must not depend on topology), but the bytes travel down the
            # relay link instead of into a root-side inbox.
            self.route.send(
                message.sender, message.receiver, message.kind,
                len(message.payload), note=message.note,
            )
            self.delivered_total += 1
            self._trim_log()
            self._queue_to_link(link, message, counted=True)

    def _fan_broadcast(self, message: NetBroadcast) -> None:
        """One multicast: root inboxes directly, one frame per relay link.

        Relay-bound entities are excluded from local inbox delivery --
        they receive the broadcast through their link's single
        ``RelayBroadcast`` copy, keyed by a fresh sequence id so every
        hop can dedup.  The accounting stays exactly one ``"*"`` record.
        """
        self.metrics.inc("broker.broadcast")
        seq = None
        if self._relays:
            self._broadcast_seq += 1
            seq = self._broadcast_seq
        if self._obs is not None:
            self._obs.span(
                "broadcast", trace=message.trace, sender=message.sender,
                kind=message.kind, size=len(message.payload), seq=seq,
            )
        exclude = set(self._via_relay)
        before = self.route.pending()
        with tracing(message.trace):
            self.route.broadcast(
                message.sender, message.kind, message.payload,
                note=message.note, exclude=exclude,
            )
        self.delivered_total += self.route.pending() - before
        for entity in self.route.entities():
            if entity != message.sender and entity not in exclude:
                self._trim_inbox(entity)
                self._kick(entity)
        if self._relays:
            frame = RelayBroadcast(
                seq=seq,
                sender=message.sender,
                kind=message.kind,
                note=message.note,
                payload=message.payload,
                trace=message.trace,
            )
            for link in list(self._relays.values()):
                if self._queue_to_link(link, frame, counted=True):
                    self.delivered_total += 1
                    self.relay_broadcasts_down += 1

    @staticmethod
    def _require_sender(conn: _Connection, sender: str) -> None:
        if sender != conn.entity:
            raise SerializationError(
                "connection %r tried to send as %r" % (conn.entity, sender)
            )

    def _require_payload(self, payload: bytes) -> None:
        """The *routed* frame must fit ``max_frame`` on its own, so every
        admitted delivery survives re-wrapping toward any receiver name."""
        if len(payload) > self.max_frame:
            raise SerializationError(
                "routed payload of %d bytes exceeds the %d-byte cap"
                % (len(payload), self.max_frame)
            )

    def _admit_entity(self, receiver: str) -> bool:
        """Allow routing to ``receiver``, creating its inbox if room.

        ``route.deliver`` auto-registers unknown receivers; without this
        gate a hostile-but-authenticated peer could mint one bounded inbox
        per fabricated name, unbounded names.
        """
        if self.route.registered(receiver) or self.route.entity_count() < self.max_entities:
            return True
        self.dropped_total += 1
        logger.warning(
            "dropping delivery to %r: entity bound (%d) reached",
            receiver, self.max_entities,
        )
        return False

    def _trim_inbox(self, entity: str) -> None:
        """Hold the per-entity queue bound by discarding the oldest.

        For a *connected* entity an over-bound inbox means its pusher is
        stuck behind a peer that stopped reading: the slow-consumer
        policy disconnects it (counted in stats) so the stall degrades to
        the ordinary bounded offline case instead of unbounded growth.
        """
        excess = self.route.pending(entity) - self.max_inbox
        if excess > 0:
            conn = self._connections.get(entity)
            if conn is not None:
                self.slow_consumer_disconnects += 1
                logger.warning(
                    "slow consumer %r: inbox over bound while connected, "
                    "disconnecting", entity,
                )
                self._unregister(conn)
                asyncio.get_running_loop().create_task(conn.stream.aclose())
            self.route.poll(entity, excess)
            self.dropped_total += excess
            logger.warning("inbox %r over bound: dropped %d oldest", entity, excess)
        self._trim_log()

    def _trim_log(self) -> None:
        log_excess = len(self.route.messages) - self.max_log
        if log_excess > 0:
            del self.route.messages[:log_excess]
            self._log_trimmed = True

    def _kick(self, entity: str) -> None:
        conn = self._connections.get(entity)
        if conn is not None:
            conn.mail.set()

    async def _push_loop(self, conn: _Connection) -> None:
        """Drain the entity's router inbox down its connection, in order.

        ``send`` awaits ``drain()``, so a slow consumer backpressures this
        task while its inbox absorbs (bounded) backlog -- exactly the
        failure containment a per-entity queue is for.
        """
        pending: list = []
        try:
            while True:
                await conn.mail.wait()
                conn.mail.clear()
                while True:
                    pending = self.route.poll(conn.entity, PUSH_BATCH)
                    if not pending:
                        break
                    while pending:
                        delivery = pending[0]
                        conn.in_flight += 1  # before send: the ack may race it
                        try:
                            await _send(
                                conn.stream,
                                NetDeliver(
                                    sender=delivery.sender,
                                    receiver=delivery.receiver,
                                    kind=delivery.kind,
                                    note=delivery.note,
                                    payload=delivery.payload,
                                    trace=delivery.trace,
                                ),
                            )
                        except SerializationError:
                            # The routed payload fit under the inbound cap
                            # but the outbound envelope (payload + routing
                            # fields) does not.  Drop this one delivery and
                            # keep the connection: the sender, not this
                            # receiver, is at fault.
                            conn.in_flight -= 1
                            self.dropped_total += 1
                            logger.warning(
                                "dropping undeliverable frame for %r "
                                "(envelope over the %d-byte cap)",
                                conn.entity, self.max_frame,
                            )
                        except (NetworkError, ConnectionError, OSError):
                            # Never transmitted: the whole remainder
                            # (current delivery included) survives for a
                            # reconnect.
                            conn.in_flight -= 1
                            self.route.requeue(conn.entity, pending)
                            return
                        pending.pop(0)
        except asyncio.CancelledError:
            # Cancelled by _unregister while a send was in flight: the
            # current delivery may be partially written (at-most-once --
            # forget it), but the rest was never touched and must not be
            # silently lost.
            self.route.requeue(conn.entity, pending[1:])
            raise

    # -- metrics -------------------------------------------------------------

    def _metrics_snapshot(self) -> dict:
        """The root subtree aggregate: own registry + every relay's last
        pushed report.

        Routing state and lifetime totals already tracked as plain
        attributes are folded in as gauges at snapshot time (one source
        of truth; no double bookkeeping on the hot path).
        """
        self.metrics.set_gauge("broker.pending", self.route.pending())
        self.metrics.set_gauge(
            "broker.in_flight",
            sum(c.in_flight for c in self._connections.values())
            + sum(link.in_flight for link in self._relays.values()),
        )
        self.metrics.set_gauge("broker.leaf_connections", len(self._connections))
        self.metrics.set_gauge("broker.relay_links", len(self._relays))
        self.metrics.set_gauge("broker.relay_entities", len(self._via_relay))
        self.metrics.set_gauge("broker.delivered_total", self.delivered_total)
        self.metrics.set_gauge("broker.dropped_total", self.dropped_total)
        self.metrics.set_gauge(
            "broker.slow_consumer_disconnects", self.slow_consumer_disconnects
        )
        self.metrics.set_gauge("broker.bounced_requeues", self.bounced_requeues)
        self.metrics.set_gauge(
            "broker.relay_broadcasts_down", self.relay_broadcasts_down
        )
        own = self.metrics.snapshot()
        reports = [
            link.last_metrics
            for link in self._relays.values()
            if link.last_metrics is not None
        ]
        if reports:
            return merge_snapshots([own] + reports)
        return own

    async def _metrics_loop(self) -> None:
        """Periodic ``obs.jsonl`` metrics lines (the root has no upstream
        to push reports to)."""
        while True:
            await asyncio.sleep(self.metrics_interval)
            self._obs.metrics(self._metrics_snapshot())

    # -- stats ---------------------------------------------------------------

    def _stats(self, include_log: bool) -> StatsReply:
        log: tuple = ()
        log_complete = not self._log_trimmed
        if include_log:
            # The reply must itself fit one frame: fill a byte budget from
            # the newest record backwards and flag truncation rather than
            # blow the cap (which would drop the requester's connection).
            # The slack covers the fixed header, the counters, and the
            # RelayStatsReply wrapper a forwarded reply rides in (both
            # sides' streams allow ENVELOPE_OVERHEAD beyond max_frame,
            # which absorbs the floor at tiny frame caps).
            budget = max(self.max_frame - 512, self.max_frame // 2)
            records = []
            for m in reversed(self.route.messages):
                record = TrafficRecord(m.sender, m.receiver, m.kind, m.size, m.note)
                budget -= len(record.to_bytes())
                if budget < 0:
                    log_complete = False
                    break
                records.append(record)
            log = tuple(reversed(records))
        return StatsReply(
            pending=self.route.pending(),
            in_flight=(
                sum(c.in_flight for c in self._connections.values())
                + sum(link.in_flight for link in self._relays.values())
            ),
            delivered_total=self.delivered_total,
            dropped=self.dropped_total,
            log_complete=log_complete,
            log=log,
            counters=(
                ("leaf_connections", len(self._connections)),
                ("relay_links", len(self._relays)),
                ("relay_entities", len(self._via_relay)),
                ("relay_broadcasts_down", self.relay_broadcasts_down),
                ("broadcast_seq", self._broadcast_seq),
                ("slow_consumer_disconnects", self.slow_consumer_disconnects),
                ("bounced_requeues", self.bounced_requeues),
            ),
        )


# -- CLI ---------------------------------------------------------------------


async def _amain(args: argparse.Namespace) -> int:
    obs_path = None
    if args.obs_dir:
        obs_path = os.path.join(args.obs_dir, "obs.jsonl")
    broker = BrokerServer(
        args.host, args.port, max_frame=args.max_frame,
        max_inbox=args.max_inbox, max_entities=args.max_entities,
        handshake_timeout=args.handshake_timeout,
        max_backlog=args.max_backlog, max_relays=args.max_relays,
        metrics_interval=args.metrics_interval, obs_path=obs_path,
    )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, broker.shutdown)
    host, port = await broker.start()
    if args.port_file:
        write_port_file(args.port_file, host, port)
    # Machine-parseable first (supervisors/tests chain processes off this
    # line -- essential with --port 0), human-readable second.
    print("ENDPOINT %s:%d" % (host, port), flush=True)
    print("broker listening on %s:%d" % (host, port), flush=True)
    try:
        await broker.serve_forever()
    finally:
        await broker.aclose()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.broker",
        description="Run the frame broker all networked entities connect to.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral; see --port-file)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound host:port here once listening")
    parser.add_argument("--max-frame", type=int, default=DEFAULT_MAX_FRAME_PAYLOAD,
                        help="maximum accepted frame payload in bytes")
    parser.add_argument("--max-inbox", type=int, default=10_000,
                        help="per-entity queued-delivery bound")
    parser.add_argument("--max-entities", type=int, default=10_000,
                        help="bound on distinct entity names (inboxes)")
    parser.add_argument("--handshake-timeout", type=float, default=10.0,
                        help="seconds a connection gets to send its Hello")
    parser.add_argument("--max-backlog", type=int, default=10_000,
                        help="per-connection outbound backlog bound "
                             "(slow consumers are disconnected beyond it)")
    parser.add_argument("--max-relays", type=int, default=256,
                        help="bound on connected downstream relay links")
    parser.add_argument("--metrics-interval", type=float, default=0.0,
                        help="seconds between periodic metrics span records "
                             "in obs.jsonl (0 = off; needs --obs-dir)")
    parser.add_argument("--obs-dir", default=None,
                        help="directory for the obs.jsonl span log "
                             "(off when unset)")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
