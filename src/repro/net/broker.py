"""The asyncio broker: socket routing with in-memory-router semantics.

:class:`BrokerServer` is ``InMemoryTransport`` behind a TCP listener --
literally: it *contains* one, and every routing and accounting decision
(per-entity FIFO inboxes, ``"*"`` multicast fan-out, byte accounting of
each transmission) is delegated to it, so the network deployment and the
single-process tests share one behaviour by construction.  The paper's
bandwidth claims (O(l'N) broadcast frames, zero unicast on rekey) and the
privacy-audit log therefore remain measurable on the real network path:
clients fetch the accounting with a ``StatsRequest``.

Connection lifecycle (protocol in :mod:`repro.net.protocol`):

1. first frame must be :class:`~repro.net.protocol.Hello`; the name must
   not be in use (one live connection per entity -- spoof-on-connect is
   refused) and is answered with ``Welcome``;
2. queued traffic for the entity (accumulated while offline) is pushed,
   then new deliveries as they arrive, each as a ``NetDeliver`` frame;
3. every routed frame's declared sender must equal the connection's
   entity -- a client cannot forge another entity's outgoing traffic;
4. any malformed frame, oversized length declaration, or protocol
   violation drops the connection (a byte stream cannot be resynchronized
   after garbage) without disturbing other connections or routed state.

Disconnection keeps the entity's inbox: a reconnecting entity drains the
backlog.  Deliveries pushed but unacked at disconnect time are forgotten
(at-most-once delivery); per-entity inboxes are bounded by ``max_inbox``
(oldest dropped first), so hostile or dead peers cannot grow broker
memory without bound.

Run standalone::

    python -m repro.net.broker --port 7812 [--port-file PATH]
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os
import signal
import sys
from typing import Dict, Optional, Tuple

from repro.errors import NetworkError, ReproError, SerializationError
from repro.net.protocol import (
    ENVELOPE_OVERHEAD,
    Ack,
    Hello,
    NetBroadcast,
    NetDeliver,
    NetMessage,
    Shutdown,
    StatsReply,
    StatsRequest,
    TrafficRecord,
    Welcome,
    decode_net_payload,
)
from repro.net.stream import FrameStream
from repro.system.transport import BROADCAST, InMemoryTransport
from repro.wire.codec import DEFAULT_MAX_FRAME_PAYLOAD

__all__ = ["BrokerServer", "main"]

logger = logging.getLogger("repro.net.broker")

#: Deliveries pushed per inbox poll (bounds per-connection burst size).
PUSH_BATCH = 32


class _Connection:
    """Broker-side state for one live entity connection."""

    __slots__ = ("entity", "stream", "in_flight", "mail", "pusher")

    def __init__(self, entity: str, stream: FrameStream):
        self.entity = entity
        self.stream = stream
        #: Deliveries pushed down this connection but not yet acked
        #: (i.e. not yet processed by the remote endpoint).
        self.in_flight = 0
        self.mail = asyncio.Event()
        self.pusher: Optional[asyncio.Task] = None


async def _send(stream: FrameStream, message: NetMessage) -> None:
    await stream.send(message.TYPE_ID, message.payload_bytes())


class BrokerServer:
    """Routes wire frames between named entities over TCP."""

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = DEFAULT_MAX_FRAME_PAYLOAD,
        max_inbox: int = 10_000,
        max_entities: int = 10_000,
        handshake_timeout: float = 10.0,
        max_log: int = 100_000,
    ):
        self.host = host
        self.port = port  # updated to the bound port by start()
        self.max_frame = max_frame
        self.max_inbox = max_inbox
        #: Bound on distinct entity names (inboxes): together with
        #: ``max_inbox`` and ``max_frame`` this caps total queued state, so
        #: a connected peer cannot grow broker memory by spraying
        #: deliveries at fabricated receiver names.
        self.max_entities = max_entities
        #: A connection must complete its Hello within this budget, or a
        #: peer could park unlimited pre-authentication connections (each
        #: holding a socket and buffers) that none of the entity bounds
        #: ever see.
        self.handshake_timeout = handshake_timeout
        #: Accounting-log record bound: a long-running broker trims the
        #: oldest records (flagged via ``log_complete=False`` in stats)
        #: rather than growing per-delivery state forever.
        self.max_log = max_log
        #: Routing + accounting: the same router the in-process tests use.
        self.route = InMemoryTransport()
        self.delivered_total = 0
        self.dropped_total = 0
        self._log_trimmed = False
        self._connections: Dict[str, _Connection] = {}
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Bind and start serving; returns the (host, port) actually bound."""
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        logger.info("broker listening on %s:%d", self.host, self.port)
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or a Shutdown frame) then close."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.aclose()

    def shutdown(self) -> None:
        """Request a graceful stop (idempotent, callable from any task)."""
        self._shutdown.set()

    async def aclose(self) -> None:
        """Stop accepting, drop every connection, cancel pushers."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for conn in list(self._connections.values()):
            if conn.pusher is not None:
                conn.pusher.cancel()
            await conn.stream.aclose()
        self._connections.clear()

    # -- per-connection handling ---------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        # Envelope headroom: an application frame at exactly max_frame must
        # survive NetDeliver wrapping; the routed payload itself is bounded
        # separately in _require_payload.
        stream = FrameStream(reader, writer, self.max_frame + ENVELOPE_OVERHEAD)
        conn: Optional[_Connection] = None
        try:
            conn = await asyncio.wait_for(
                self._handshake(stream), self.handshake_timeout
            )
            if conn is None:
                return
            await self._read_loop(conn)
        except asyncio.TimeoutError:
            logger.warning(
                "dropping connection %s: no Hello within %.1fs",
                stream.peername(), self.handshake_timeout,
            )
        except (ReproError, ConnectionError, OSError) as exc:
            # Hostile/garbage input or a vanished peer: drop this
            # connection, never the broker.
            logger.warning(
                "dropping connection %s (%s): %s",
                stream.peername(),
                conn.entity if conn else "pre-hello",
                exc,
            )
        finally:
            if conn is not None:
                self._unregister(conn)
            await stream.aclose()

    async def _handshake(self, stream: FrameStream) -> Optional[_Connection]:
        first = await stream.recv()
        if first is None:
            return None  # connected and left; not an error
        hello = decode_net_payload(*first)
        if not isinstance(hello, Hello):
            raise SerializationError(
                "first frame must be Hello, got %s" % type(hello).__name__
            )
        entity = hello.entity
        refusal = None
        if not entity:
            refusal = "entity name must be non-empty"
        elif entity == BROADCAST:
            refusal = "entity name %r is reserved for multicast" % BROADCAST
        elif entity in self._connections:
            # Spoof-on-connect: the name is bound to a live connection.
            refusal = "entity %r is already connected" % entity
        elif (
            not self.route.registered(entity)
            and self.route.entity_count() >= self.max_entities
        ):
            # The same bound _admit_entity applies to receivers: inboxes
            # survive disconnects, so churning Hellos under fresh names
            # must not mint unbounded broker state either.
            refusal = "entity bound (%d) reached" % self.max_entities
        if refusal is not None:
            logger.warning("refusing hello from %s: %s", stream.peername(), refusal)
            await _send(stream, Welcome(ok=False, entity=entity, reason=refusal))
            return None
        self.route.register(entity)
        conn = _Connection(entity, stream)
        self._connections[entity] = conn
        try:
            await _send(stream, Welcome(ok=True, entity=entity))
        except BaseException:
            # Covers the handshake deadline cancelling us mid-send: the
            # name was already claimed above and must not stay bound to a
            # connection the caller will never learn about.
            self._unregister(conn)
            raise
        conn.pusher = asyncio.get_running_loop().create_task(self._push_loop(conn))
        conn.mail.set()  # flush any backlog queued while offline
        logger.info("entity %r connected from %s", entity, stream.peername())
        return conn

    def _unregister(self, conn: _Connection) -> None:
        if self._connections.get(conn.entity) is conn:
            del self._connections[conn.entity]
        if conn.pusher is not None:
            conn.pusher.cancel()
        # in_flight pushes die with the connection (at-most-once); the
        # entity's unpushed inbox survives for a reconnect.
        logger.info("entity %r disconnected", conn.entity)

    async def _read_loop(self, conn: _Connection) -> None:
        while True:
            frame = await conn.stream.recv()
            if frame is None:
                return
            message = decode_net_payload(*frame)
            if isinstance(message, NetDeliver):
                self._require_sender(conn, message.sender)
                self._require_payload(message.payload)
                if message.receiver == BROADCAST:
                    raise SerializationError(
                        "unicast frame addressed to %r" % BROADCAST
                    )
                if not self._admit_entity(message.receiver):
                    continue  # over the name bound: accounted as dropped
                self.route.deliver(
                    message.sender,
                    message.receiver,
                    message.kind,
                    message.payload,
                    note=message.note,
                )
                self.delivered_total += 1
                self._trim_inbox(message.receiver)
                self._kick(message.receiver)
            elif isinstance(message, NetBroadcast):
                self._require_sender(conn, message.sender)
                self._require_payload(message.payload)
                before = self.route.pending()
                self.route.broadcast(
                    message.sender, message.kind, message.payload, note=message.note
                )
                self.delivered_total += self.route.pending() - before
                for entity in self.route.entities():
                    if entity != message.sender:
                        self._trim_inbox(entity)
                        self._kick(entity)
            elif isinstance(message, Ack):
                conn.in_flight = max(0, conn.in_flight - message.count)
            elif isinstance(message, StatsRequest):
                await _send(conn.stream, self._stats(message.include_log))
            elif isinstance(message, Shutdown):
                logger.info("shutdown requested by %r", conn.entity)
                self.shutdown()
                return
            else:
                raise SerializationError(
                    "client may not send %s" % type(message).__name__
                )

    @staticmethod
    def _require_sender(conn: _Connection, sender: str) -> None:
        if sender != conn.entity:
            raise SerializationError(
                "connection %r tried to send as %r" % (conn.entity, sender)
            )

    def _require_payload(self, payload: bytes) -> None:
        """The *routed* frame must fit ``max_frame`` on its own, so every
        admitted delivery survives re-wrapping toward any receiver name."""
        if len(payload) > self.max_frame:
            raise SerializationError(
                "routed payload of %d bytes exceeds the %d-byte cap"
                % (len(payload), self.max_frame)
            )

    def _admit_entity(self, receiver: str) -> bool:
        """Allow routing to ``receiver``, creating its inbox if room.

        ``route.deliver`` auto-registers unknown receivers; without this
        gate a hostile-but-authenticated peer could mint one bounded inbox
        per fabricated name, unbounded names.
        """
        if self.route.registered(receiver) or self.route.entity_count() < self.max_entities:
            return True
        self.dropped_total += 1
        logger.warning(
            "dropping delivery to %r: entity bound (%d) reached",
            receiver, self.max_entities,
        )
        return False

    def _trim_inbox(self, entity: str) -> None:
        """Hold the per-entity queue bound by discarding the oldest."""
        excess = self.route.pending(entity) - self.max_inbox
        if excess > 0:
            self.route.poll(entity, excess)
            self.dropped_total += excess
            logger.warning("inbox %r over bound: dropped %d oldest", entity, excess)
        log_excess = len(self.route.messages) - self.max_log
        if log_excess > 0:
            del self.route.messages[:log_excess]
            self._log_trimmed = True

    def _kick(self, entity: str) -> None:
        conn = self._connections.get(entity)
        if conn is not None:
            conn.mail.set()

    async def _push_loop(self, conn: _Connection) -> None:
        """Drain the entity's router inbox down its connection, in order.

        ``send`` awaits ``drain()``, so a slow consumer backpressures this
        task while its inbox absorbs (bounded) backlog -- exactly the
        failure containment a per-entity queue is for.
        """
        pending: list = []
        try:
            while True:
                await conn.mail.wait()
                conn.mail.clear()
                while True:
                    pending = self.route.poll(conn.entity, PUSH_BATCH)
                    if not pending:
                        break
                    while pending:
                        delivery = pending[0]
                        conn.in_flight += 1  # before send: the ack may race it
                        try:
                            await _send(
                                conn.stream,
                                NetDeliver(
                                    sender=delivery.sender,
                                    receiver=delivery.receiver,
                                    kind=delivery.kind,
                                    note=delivery.note,
                                    payload=delivery.payload,
                                ),
                            )
                        except SerializationError:
                            # The routed payload fit under the inbound cap
                            # but the outbound envelope (payload + routing
                            # fields) does not.  Drop this one delivery and
                            # keep the connection: the sender, not this
                            # receiver, is at fault.
                            conn.in_flight -= 1
                            self.dropped_total += 1
                            logger.warning(
                                "dropping undeliverable frame for %r "
                                "(envelope over the %d-byte cap)",
                                conn.entity, self.max_frame,
                            )
                        except (NetworkError, ConnectionError, OSError):
                            # Never transmitted: the whole remainder
                            # (current delivery included) survives for a
                            # reconnect.
                            conn.in_flight -= 1
                            self.route.requeue(conn.entity, pending)
                            return
                        pending.pop(0)
        except asyncio.CancelledError:
            # Cancelled by _unregister while a send was in flight: the
            # current delivery may be partially written (at-most-once --
            # forget it), but the rest was never touched and must not be
            # silently lost.
            self.route.requeue(conn.entity, pending[1:])
            raise

    # -- stats ---------------------------------------------------------------

    def _stats(self, include_log: bool) -> StatsReply:
        log: tuple = ()
        log_complete = not self._log_trimmed
        if include_log:
            # The reply must itself fit one frame: fill a byte budget from
            # the newest record backwards and flag truncation rather than
            # blow the cap (which would drop the requester's connection).
            budget = self.max_frame - 64
            records = []
            for m in reversed(self.route.messages):
                record = TrafficRecord(m.sender, m.receiver, m.kind, m.size, m.note)
                budget -= len(record.to_bytes())
                if budget < 0:
                    log_complete = False
                    break
                records.append(record)
            log = tuple(reversed(records))
        return StatsReply(
            pending=self.route.pending(),
            in_flight=sum(c.in_flight for c in self._connections.values()),
            delivered_total=self.delivered_total,
            dropped=self.dropped_total,
            log_complete=log_complete,
            log=log,
        )


# -- CLI ---------------------------------------------------------------------


def _write_port_file(path: str, host: str, port: int) -> None:
    """Atomically publish the bound endpoint (readers poll for the file)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write("%s:%d\n" % (host, port))
    os.replace(tmp, path)


async def _amain(args: argparse.Namespace) -> int:
    broker = BrokerServer(
        args.host, args.port, max_frame=args.max_frame,
        max_inbox=args.max_inbox, max_entities=args.max_entities,
        handshake_timeout=args.handshake_timeout,
    )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, broker.shutdown)
    host, port = await broker.start()
    if args.port_file:
        _write_port_file(args.port_file, host, port)
    print("broker listening on %s:%d" % (host, port), flush=True)
    try:
        await broker.serve_forever()
    finally:
        await broker.aclose()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.broker",
        description="Run the frame broker all networked entities connect to.",
    )
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral; see --port-file)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound host:port here once listening")
    parser.add_argument("--max-frame", type=int, default=DEFAULT_MAX_FRAME_PAYLOAD,
                        help="maximum accepted frame payload in bytes")
    parser.add_argument("--max-inbox", type=int, default=10_000,
                        help="per-entity queued-delivery bound")
    parser.add_argument("--max-entities", type=int, default=10_000,
                        help="bound on distinct entity names (inboxes)")
    parser.add_argument("--handshake-timeout", type=float, default=10.0,
                        help="seconds a connection gets to send its Hello")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
