"""``python -m repro.net.subscriber``: one subscriber as a client process.

Runs a full subscriber lifecycle against the broker: request a token for
every attribute the scenario gives this user, register each token for
every matching condition (the Section V-B privacy practice), then wait
for ``--expect-broadcasts`` broadcast packages, decrypting whatever the
hidden attribute values authorize.  Finally writes a JSON report (per
broadcast: which segments decrypted) that the orchestrating example
asserts on -- the only channel back, since everything else this process
knows is private.
"""

from __future__ import annotations

import argparse
import json

from repro.net._cli import add_common_arguments, install_stop_signals, parse_endpoint
from repro.net.bootstrap import (
    build_subscriber,
    conditions_per_attribute,
    load_scenario,
    read_bundle,
    write_json,
)
from repro.net.runtime import StopRequested, pump_until, wait_for_file
from repro.net.transport import TcpTransport
from repro.system.service import SubscriberClient

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.subscriber",
        description="Run one subscriber's lifecycle against the broker.",
    )
    add_common_arguments(parser)
    parser.add_argument("--user", required=True,
                        help="which scenario user this process plays")
    parser.add_argument("--expect-broadcasts", type=int, default=1,
                        help="exit after receiving this many broadcasts")
    parser.add_argument("--report", default=None,
                        help="write the lifecycle report JSON here")
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    attributes = scenario["users"].get(args.user)
    if attributes is None:
        raise SystemExit("user %r is not in the scenario" % args.user)
    wait_for_file(args.bundle, timeout=args.timeout)
    bundle = read_bundle(args.bundle)
    subscriber = build_subscriber(scenario, bundle, args.user)

    stop = install_stop_signals()
    host, port = parse_endpoint(args.broker)
    with TcpTransport(host, port) as transport:
        client = SubscriberClient(
            subscriber,
            transport,
            publisher_name=scenario["publisher"],
            idmgr_name=scenario["idmgr"],
        )
        print("subscriber %r connected as nym %r" % (args.user, subscriber.nym),
              flush=True)

        try:
            for attribute in sorted(attributes):
                client.request_token(
                    attribute, assertion=bundle.assertions[args.user][attribute]
                )
            pump_until(
                [client],
                lambda: set(subscriber.attribute_tags()) == set(attributes),
                timeout=args.timeout,
                stop=stop,
            )
            print("tokens held: %s" % subscriber.attribute_tags(), flush=True)

            client.register_all_attributes()
            # Done when every session finished AND each attribute saw as
            # many condition outcomes as the policies define for it -- an
            # attribute no condition mentions expects zero, so a scenario
            # containing one cannot wedge this phase.
            expected = conditions_per_attribute(scenario)
            pump_until(
                [client],
                lambda: not client.registering()
                and all(
                    len(client.results.get(a, {})) >= expected.get(a, 0)
                    for a in attributes
                ),
                timeout=args.timeout,
                stop=stop,
            )
            print("registrations done (outcomes stay private to this process)",
                  flush=True)

            pump_until(
                [client],
                lambda: len(client.packages) >= args.expect_broadcasts,
                timeout=args.timeout,
                stop=stop,
            )
        except StopRequested:
            print("stop signal received; exiting without a report", flush=True)
            return 0
        transport.flush_acks()

        report = {
            "user": args.user,
            "nym": subscriber.nym,
            "results": client.results,
            "failures": client.failures,
            "broadcasts": [
                {
                    "document": package.document,
                    "segments": {
                        name: content.decode("utf-8", "replace")
                        for name, content in plaintexts.items()
                    },
                }
                for package, plaintexts in zip(client.packages, client.broadcasts)
            ],
        }
        if args.report:
            write_json(args.report, report)
        print(json.dumps(report, indent=2, sort_keys=True), flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
