"""``python -m repro.net.subscriber``: one subscriber as a client process.

Runs a full subscriber lifecycle against the broker: request a token for
every attribute the scenario gives this user, register each token for
every matching condition (the Section V-B privacy practice), then wait
for ``--expect-broadcasts`` broadcast packages, decrypting whatever the
hidden attribute values authorize.  Finally writes a JSON report (per
broadcast: which segments decrypted) that the orchestrating example
asserts on -- the only channel back, since everything else this process
knows is private.

With ``--data-dir`` the wallet (tokens + openings) and every extracted
CSS are durable: a restarted subscriber recovers them, requests no new
tokens and -- because a held CSS is a completed registration -- runs no
OCBE exchange, resuming directly at broadcast decryption.
"""

from __future__ import annotations

import argparse
import json

from repro.net._cli import add_common_arguments, install_stop_signals, parse_endpoint
from repro.net.bootstrap import (
    build_subscriber,
    conditions_per_attribute,
    load_scenario,
    publisher_for_user,
    read_bundle,
    write_json,
)
from repro.net.runtime import StopRequested, pump_until, wait_for_file
from repro.net.transport import TcpTransport
from repro.obs.metrics import get_registry
from repro.obs.trace import set_span_writer, writer_for
from repro.store import SubscriberPersistence
from repro.system.service import SubscriberClient

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.subscriber",
        description="Run one subscriber's lifecycle against the broker.",
    )
    add_common_arguments(parser)
    parser.add_argument("--user", required=True,
                        help="which scenario user this process plays")
    parser.add_argument("--expect-broadcasts", type=int, default=1,
                        help="exit after receiving this many broadcasts")
    parser.add_argument("--report", default=None,
                        help="write the lifecycle report JSON here")
    parser.add_argument("--history-limit", type=int, default=256,
                        help="retain at most this many per-broadcast "
                             "histories (a long-lived server must not grow "
                             "memory with every broadcast)")
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    attributes = scenario["users"].get(args.user)
    if attributes is None:
        raise SystemExit("user %r is not in the scenario" % args.user)
    wait_for_file(args.bundle, timeout=args.timeout)
    bundle = read_bundle(args.bundle)
    subscriber = build_subscriber(scenario, bundle, args.user)

    persistence = None
    if args.data_dir:
        persistence = SubscriberPersistence.attach(args.data_dir, subscriber)
        if persistence.recovered:
            print("recovered subscriber state: %d tokens, %d CSSs"
                  % (len(subscriber.attribute_tags()), len(subscriber.css_store)),
                  flush=True)

    stop = install_stop_signals()
    host, port = parse_endpoint(args.broker)
    obs = writer_for(args.data_dir, subscriber.nym)
    # Global install (restored below) so the decrypt/wal stage spans of
    # this process land in its obs.jsonl alongside the hop events.
    previous_writer = set_span_writer(obs)
    try:
        with TcpTransport(host, port) as transport:
            client = SubscriberClient(
                subscriber,
                transport,
                publisher_name=publisher_for_user(scenario, args.user),
                idmgr_name=scenario["idmgr"],
                history_limit=args.history_limit,
                persistence=persistence,
                # A recovered CSS is a completed registration; a fresh run
                # (or no data dir) must run every OCBE exchange.
                reuse_css=persistence is not None and persistence.recovered,
            )
            client.span_writer = obs
            print("subscriber %r connected as nym %r"
                  % (args.user, subscriber.nym), flush=True)
            return _run_lifecycle(
                args, scenario, bundle, subscriber, client, transport, stop,
                attributes,
            )
    finally:
        set_span_writer(previous_writer)
        if obs is not None:
            obs.metrics(get_registry().snapshot())
            obs.close()
        if persistence is not None:
            persistence.close()


def _run_lifecycle(args, scenario, bundle, subscriber, client, transport, stop,
                   attributes) -> int:
    try:
        # A recovered wallet already holds tokens; only request what is
        # missing (re-requesting would be harmless but noisy).
        held = set(subscriber.attribute_tags())
        for attribute in sorted(set(attributes) - held):
            client.request_token(
                attribute, assertion=bundle.assertions[args.user][attribute]
            )
        pump_until(
            [client],
            lambda: set(subscriber.attribute_tags()) == set(attributes),
            timeout=args.timeout,
            stop=stop,
        )
        print("tokens held: %s" % subscriber.attribute_tags(), flush=True)

        # register_all_attributes skips any condition whose CSS is already
        # held durably (client.reuse_css): a recovered subscriber sends
        # condition queries but not one registration frame.
        client.register_all_attributes()
        # Done when every session finished AND each attribute saw as
        # many condition outcomes as the policies define for it -- an
        # attribute no condition mentions expects zero, so a scenario
        # containing one cannot wedge this phase.
        expected = conditions_per_attribute(
            scenario, publisher=publisher_for_user(scenario, args.user)
        )
        pump_until(
            [client],
            lambda: not client.registering()
            and all(
                len(client.results.get(a, {})) >= expected.get(a, 0)
                for a in attributes
            ),
            timeout=args.timeout,
            stop=stop,
        )
        print("registrations done (outcomes stay private to this process)",
              flush=True)

        pump_until(
            [client],
            lambda: len(client.packages) >= args.expect_broadcasts,
            timeout=args.timeout,
            stop=stop,
        )
    except StopRequested:
        print("stop signal received; exiting without a report", flush=True)
        return 0
    transport.flush_acks()

    report = {
        "user": args.user,
        "nym": subscriber.nym,
        "results": client.results,
        "failures": client.failures,
        "broadcasts": [
            {
                "document": package.document,
                "segments": {
                    name: content.decode("utf-8", "replace")
                    for name, content in plaintexts.items()
                },
            }
            for package, plaintexts in zip(client.packages, client.broadcasts)
        ],
    }
    if args.report:
        write_json(args.report, report)
    print(json.dumps(report, indent=2, sort_keys=True), flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
