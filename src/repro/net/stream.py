"""Frame streams: the wire codec's frames over byte streams.

Two layers, so the same parsing rules serve every I/O style:

* :class:`FrameDecoder` is sans-I/O: feed it arbitrary chunks of bytes as
  they arrive and it yields complete ``(type_id, payload)`` frames.  It
  validates the header (magic, version) as soon as 8 bytes are buffered
  and rejects an oversized *declared* length immediately -- before any
  payload arrives -- so a hostile peer cannot make a receiver wait on or
  allocate gigabytes.  Malformed input raises
  :class:`~repro.errors.SerializationError`; a byte stream cannot be
  resynchronized after garbage, so callers must drop the connection.
* :class:`FrameStream` binds a decoder to an asyncio reader/writer pair:
  ``recv`` returns the next frame (``None`` on clean EOF), ``send``
  writes a frame and awaits ``drain()`` so a slow peer exerts real write
  backpressure instead of growing an unbounded buffer.

The frame format and the size cap live in :mod:`repro.wire.codec`
(``DEFAULT_MAX_FRAME_PAYLOAD``); this module adds no format of its own.
"""

from __future__ import annotations

import asyncio
from typing import List, Optional, Tuple

from repro.errors import NetworkError, SerializationError
from repro.wire.codec import (
    DEFAULT_MAX_FRAME_PAYLOAD,
    FRAME_HEADER_SIZE,
    check_frame_length,
    encode_frame,
    parse_frame_header,
)

__all__ = ["FrameDecoder", "FrameStream", "open_frame_stream", "READ_CHUNK"]

#: How much to read from the socket per iteration.
READ_CHUNK = 64 * 1024


class FrameDecoder:
    """Incremental, bounded parser of concatenated wire frames."""

    __slots__ = ("max_payload", "_buffer", "_expect", "_type_id")

    def __init__(self, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD):
        self.max_payload = max_payload
        self._buffer = bytearray()
        self._expect: Optional[int] = None  # payload length once header parsed
        self._type_id: Optional[int] = None

    def buffered(self) -> int:
        """Bytes held but not yet returned as frames."""
        return len(self._buffer)

    def at_frame_boundary(self) -> bool:
        """True iff no partial frame is buffered (a clean EOF point)."""
        return not self._buffer and self._expect is None

    def feed(self, data: bytes) -> List[Tuple[int, bytes]]:
        """Consume ``data``, returning every frame it completes.

        The header is validated the moment 8 bytes are available; a
        declared length above ``max_payload`` raises immediately.  After
        any raise the decoder is poisoned garbage-in-buffer and must be
        discarded along with the connection.
        """
        self._buffer += data
        frames: List[Tuple[int, bytes]] = []
        while True:
            if self._expect is None:
                if len(self._buffer) < FRAME_HEADER_SIZE:
                    break
                header = bytes(self._buffer[:FRAME_HEADER_SIZE])
                type_id, length = parse_frame_header(header)
                check_frame_length(length, self.max_payload)
                del self._buffer[:FRAME_HEADER_SIZE]
                self._type_id, self._expect = type_id, length
            if len(self._buffer) < self._expect:
                break
            payload = bytes(self._buffer[: self._expect])
            del self._buffer[: self._expect]
            frames.append((self._type_id, payload))
            self._type_id, self._expect = None, None
        return frames


class FrameStream:
    """Asyncio reader/writer pair speaking length-prefixed wire frames."""

    def __init__(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD,
    ):
        self.reader = reader
        self.writer = writer
        self._decoder = FrameDecoder(max_payload)
        self._ready: List[Tuple[int, bytes]] = []
        #: Serializes write+drain: two tasks sharing one connection (the
        #: broker's pusher and its read-loop stats replies, or two caller
        #: threads of a TcpTransport) must not await drain() concurrently
        #: -- asyncio's flow-control helper forbids a second waiter.
        self._write_lock = asyncio.Lock()

    @property
    def max_payload(self) -> int:
        return self._decoder.max_payload

    def peername(self) -> str:
        peer = self.writer.get_extra_info("peername")
        return "%s:%s" % peer[:2] if peer else "?"

    async def recv(self) -> Optional[Tuple[int, bytes]]:
        """The next ``(type_id, payload)`` frame, or ``None`` on clean EOF.

        EOF in the middle of a frame raises :class:`SerializationError`
        (a truncated frame is malformed input, not a clean close).
        """
        while not self._ready:
            chunk = await self.reader.read(READ_CHUNK)
            if not chunk:
                if self._decoder.at_frame_boundary():
                    return None
                raise SerializationError(
                    "connection closed mid-frame (%d bytes pending)"
                    % self._decoder.buffered()
                )
            self._ready.extend(self._decoder.feed(chunk))
        return self._ready.pop(0)

    async def send(self, type_id: int, payload: bytes) -> None:
        """Write one frame and wait for the transport buffer to drain."""
        frame = encode_frame(type_id, payload, self.max_payload)  # before the
        # lock: an oversized frame must not leave the stream half-written
        # or the lock held in an error path.
        async with self._write_lock:
            try:
                self.writer.write(frame)
                await self.writer.drain()
            except (ConnectionError, OSError) as exc:
                raise NetworkError("send failed: %s" % exc) from exc

    async def aclose(self) -> None:
        try:
            self.writer.close()
            await self.writer.wait_closed()
        except (ConnectionError, OSError):
            pass  # the peer may already be gone; closing is best-effort


async def open_frame_stream(
    host: str, port: int, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> FrameStream:
    """Connect to ``host:port`` and wrap the connection in a FrameStream."""
    try:
        reader, writer = await asyncio.open_connection(host, port)
    except (ConnectionError, OSError) as exc:
        raise NetworkError("cannot connect to %s:%d: %s" % (host, port, exc)) from exc
    return FrameStream(reader, writer, max_payload)
