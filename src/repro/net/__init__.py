"""The socket runtime: entities as OS processes over real TCP.

``repro.system`` pinned the :class:`~repro.system.transport.Transport`
protocol so a network backend could slot in under the endpoints without
touching the session layer; this package is that backend.

* :mod:`repro.net.stream` -- incremental frame parsing and asyncio frame
  streams over the :mod:`repro.wire.codec` frame format, with write
  backpressure and the shared max-frame-size cap.
* :mod:`repro.net.protocol` -- the net-level control messages (hello,
  routed delivery, multicast, acks, stats) that carry the application's
  wire frames between a client and the broker.  The broker never parses
  the inner frames: routed payloads stay opaque, so the privacy boundary
  of the wire protocol is preserved on the network path.
* :mod:`repro.net.broker` -- the asyncio :class:`BrokerServer` routing
  frames between named entities exactly like ``InMemoryTransport`` (FIFO
  inboxes, ``"*"`` multicast fan-out, byte accounting), plus
  ``python -m repro.net.broker``.
* :mod:`repro.net.transport` -- :class:`TcpTransport`, a synchronous
  ``Transport`` implementation over a background asyncio loop, so
  ``DisseminationService`` / ``SubscriberClient`` /
  ``IdentityManagerEndpoint`` run unchanged over sockets.
* :mod:`repro.net.runtime` -- process/thread supervision: in-process
  broker harness, endpoint pump loops, broker-quiescence waiting (the
  async analogue of :func:`repro.system.service.run_until_idle`), and a
  subprocess supervisor with graceful shutdown.
* :mod:`repro.net.bootstrap` -- the scenario/bundle files that let
  separate OS processes agree on public parameters.
* ``python -m repro.net.idmgr|publisher|subscriber`` -- runnable entity
  servers (see ``examples/networked_service.py`` for the full lifecycle).
"""

import importlib

__all__ = [
    "BrokerServer",
    "BrokerThread",
    "FrameDecoder",
    "FrameStream",
    "ProcessSupervisor",
    "TcpTransport",
    "pump_until",
    "wait_until_quiet",
]

_EXPORTS = {
    "BrokerServer": "repro.net.broker",
    "BrokerThread": "repro.net.runtime",
    "ProcessSupervisor": "repro.net.runtime",
    "pump_until": "repro.net.runtime",
    "wait_until_quiet": "repro.net.runtime",
    "FrameDecoder": "repro.net.stream",
    "FrameStream": "repro.net.stream",
    "TcpTransport": "repro.net.transport",
}


def __getattr__(name: str):
    # Lazy (PEP 562) so `python -m repro.net.broker` does not import the
    # broker module twice (once via this package, once as __main__).
    if name in _EXPORTS:
        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
