"""The relay node: keyless fan-out federation for the broker.

A :class:`RelayServer` is the second server role of the networked
deployment.  It maintains exactly one upstream link (toward the root
:class:`~repro.net.broker.BrokerServer`, possibly through further
relays) and accepts downstream connections from entities and from other
relays, forming a tree rooted at the broker:

.. code-block:: text

    publisher ──┐
    idmgr ──────┤ root broker ──link── relay r1 ──link── relay r2
    sub-a ──────┘      │                  │                 │
                  (direct leaves)      sub-b, sub-c      sub-d ...

The relay is deliberately *dumb* -- the paper's dissemination model
makes that possible.  Rekey and document traffic is zero-unicast
broadcast of self-protecting packages, so the distribution tier needs no
keys: a relay never parses a routed payload, holds no CSS or GKM state,
and its entire per-entity knowledge is the name-to-connection binding it
needs for routing.  Concretely:

* **Everything from below is forwarded up unmodified.**  Registrations,
  unicast, broadcast submissions and stats requests all travel to the
  root, which remains the single authority for admission
  (spoof-on-connect on one global name table, via ``RelayAttach``),
  routing and byte accounting -- the audit log and ``snapshot()`` are
  topology-independent by construction.
* **Broadcasts from above fan out below.**  The root sends one
  ``RelayBroadcast`` per link, carrying a root-assigned sequence id;
  each hop keeps a bounded seen-set of ids and drops duplicates
  (at-most-once per subtree even under replay), delivers one
  ``NetDeliver`` copy to every locally attached entity except the
  sender, and forwards the frame once to every downstream relay.
* **Loop refusal, both sides.**  An upstream answers ``RelayHello`` with
  its own root path; the connecting relay refuses the link if its id is
  already on that path, and refuses downstream ``RelayHello`` naming any
  id on its path.  A tree is the only shape that can come up.
* **Acks propagate up only when the subtree is done.**  Each counted
  unit received from upstream is acked after every downstream push
  derived from it has been acked (a disconnecting subtree counts as
  done: at-most-once).  The root's ``pending == 0 and in_flight == 0``
  therefore still means the *whole tree* is quiet, and
  ``wait_until_quiet`` works unchanged across any topology.
* **Slow consumers are disconnected, not buffered forever.**  The same
  bounded-outbound policy as the broker, counted in local stats.

Local observability: a connection whose *first* frame is a plain
``StatsRequest`` is a monitor -- it is answered from the relay's own
counters (never entering the name table, so probing a relay cannot
disturb admission or quiescence accounting).  :func:`request_local_stats`
is the synchronous client for it.

Run standalone::

    python -m repro.net.relay --relay-id r1 --upstream HOST:PORT --port 0

With ``--port 0`` the bound endpoint is printed on stdout as a
machine-parseable ``ENDPOINT host:port`` line (and optionally written to
``--port-file``), so supervisors can chain relay processes without port
races.  The relay exits when its upstream link closes, so shutting down
the root broker cascades down the tree.
"""

from __future__ import annotations

import argparse
import asyncio
import logging
import os
import signal
import socket
import sys
from collections import deque
from typing import Deque, Dict, List, Optional, Set, Tuple

from repro.errors import NetworkError, ReproError, SerializationError
from repro.net.protocol import (
    BROADCAST,
    ENVELOPE_OVERHEAD,
    MAX_NAME_LEN,
    MAX_RELAY_PATH,
    Ack,
    Hello,
    MetricsReport,
    MetricsRequest,
    NetBroadcast,
    NetDeliver,
    NetMessage,
    RelayAttach,
    RelayAttachReply,
    RelayBroadcast,
    RelayDetach,
    RelayHello,
    RelayStatsReply,
    RelayStatsRequest,
    RelayWelcome,
    Shutdown,
    StatsReply,
    StatsRequest,
    Welcome,
    decode_net_payload,
)
from repro.net.stream import FrameDecoder, FrameStream, open_frame_stream
from repro.obs.metrics import (
    MetricsRegistry,
    merge_snapshots,
    snapshot_from_json,
    snapshot_to_json,
)
from repro.obs.trace import SpanWriter
from repro.wire.codec import DEFAULT_MAX_FRAME_PAYLOAD

__all__ = [
    "RelayServer", "request_local_stats", "request_local_metrics",
    "main", "SEEN_CAP",
]

logger = logging.getLogger("repro.net.relay")

#: Default bound on the per-relay broadcast-sequence seen-set.  Dedup
#: only needs to cover ids that could still be in flight somewhere in
#: the tree; thousands of outstanding broadcasts would long since have
#: tripped backlog bounds, so a replayed id older than this window is
#: refused by its (monotonic) distance from the live window in practice.
SEEN_CAP = 4096


class _Unit:
    """One counted unit received from upstream, awaiting subtree acks.

    ``outstanding`` counts downstream pushes derived from the unit that
    are not yet acked; the unit is acked upstream exactly when it reaches
    zero (a unit that fans out to nothing is acked immediately).
    """

    __slots__ = ("outstanding",)

    def __init__(self) -> None:
        self.outstanding = 0


class _Down:
    """Relay-side state for one downstream connection (entity or relay)."""

    __slots__ = (
        "kind", "name", "stream", "outbound", "wake", "tokens",
        "entities", "sender_task", "closed", "last_metrics",
    )

    def __init__(self, kind: str, name: str, stream: FrameStream):
        self.kind = kind  # "entity" | "relay"
        self.name = name
        self.stream = stream
        #: For relay links: the latest metrics snapshot the downstream
        #: relay pushed up (its whole subtree); None until the first push.
        self.last_metrics: Optional[dict] = None
        #: (message, counted) awaiting transmission, FIFO.
        self.outbound: Deque[Tuple[NetMessage, bool]] = deque()
        self.wake = asyncio.Event()
        #: Upstream units backing the counted frames queued/sent on this
        #: connection, in the same FIFO order; each downstream ack pops
        #: one and may complete its unit.
        self.tokens: Deque[_Unit] = deque()
        #: For relay links: entity names bound through this link.
        self.entities: Set[str] = set()
        self.sender_task: Optional[asyncio.Task] = None
        self.closed = False


async def _send(stream: FrameStream, message: NetMessage) -> None:
    await stream.send(message.TYPE_ID, message.payload_bytes())


class RelayServer:
    """One relay node: single upstream link, fan-out to downstreams."""

    def __init__(
        self,
        relay_id: str,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        *,
        max_frame: int = DEFAULT_MAX_FRAME_PAYLOAD,
        max_backlog: int = 10_000,
        handshake_timeout: float = 10.0,
        seen_cap: int = SEEN_CAP,
        metrics_interval: float = 0.0,
        obs_path: Optional[str] = None,
    ):
        self.relay_id = relay_id
        self.upstream_host = upstream_host
        self.upstream_port = upstream_port
        self.host = host
        self.port = port  # updated to the bound port by start()
        self.max_frame = max_frame
        self.max_backlog = max_backlog
        self.handshake_timeout = handshake_timeout
        self.seen_cap = seen_cap
        #: Seconds between upstream MetricsReport pushes (0 = off).  Each
        #: push carries this node's whole subtree, pre-merged, so the
        #: root only ever aggregates its direct links.
        self.metrics_interval = metrics_interval
        #: Per-instance registry: multiple relays in one test process
        #: must not share counters.
        self.metrics = MetricsRegistry()
        self._obs = (
            SpanWriter(obs_path, "relay:%s" % relay_id) if obs_path else None
        )
        self._metrics_task: Optional[asyncio.Task] = None
        #: Relay-id chain from the root down to (and including) this
        #: node; set by the upstream handshake and handed to downstream
        #: relays for loop refusal.
        self.path: Tuple[str, ...] = ()
        # -- local counters (the per-hop invariant surface) ------------------
        self.broadcasts_down = 0  # RelayBroadcast frames accepted (fresh)
        self.broadcast_deliveries = 0  # local entity copies fanned out
        self.unicast_down = 0  # NetDeliver frames routed downward
        self.forwarded_up = 0  # routed frames forwarded toward the root
        self.bounced_up = 0  # downward frames returned (stale binding)
        self.dupes_dropped = 0  # broadcast sequence ids deduped
        self.slow_consumer_disconnects = 0
        self.dropped_total = 0  # frames lost with dropped connections
        self.delivered_total = 0  # counted frames queued downward
        # -- connection state ------------------------------------------------
        self._up: Optional[FrameStream] = None
        self._up_task: Optional[asyncio.Task] = None
        self._downs: Set[_Down] = set()
        #: Entity name -> downstream connection (direct, or the relay
        #: link below which it is attached).
        self._bind: Dict[str, _Down] = {}
        #: Attach requests forwarded up, awaiting the root's verdict:
        #: entity -> FIFO of ("hello", (_Down, Future)) | ("link", _Down).
        #: The upstream link is FIFO, so replies pop in request order.
        self._pending: Dict[str, Deque[Tuple[str, object]]] = {}
        self._seen: Set[int] = set()
        self._seen_order: Deque[int] = deque()
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    # -- lifecycle -----------------------------------------------------------

    async def start(self) -> Tuple[str, int]:
        """Join the tree upstream, then bind the downstream listener.

        Upstream first: a relay that cannot reach (or is refused by) its
        upstream must fail fast rather than accept downstreams it can
        never serve.  Returns the (host, port) actually bound.
        """
        stream = await open_frame_stream(
            self.upstream_host, self.upstream_port,
            self.max_frame + ENVELOPE_OVERHEAD,
        )
        try:
            await _send(stream, RelayHello(relay_id=self.relay_id))
            frame = await asyncio.wait_for(stream.recv(), self.handshake_timeout)
            if frame is None:
                raise NetworkError("upstream closed during the relay handshake")
            welcome = decode_net_payload(*frame)
            if not isinstance(welcome, RelayWelcome):
                raise NetworkError(
                    "upstream answered the relay handshake with %s"
                    % type(welcome).__name__
                )
            if not welcome.ok:
                raise NetworkError(
                    "upstream refused relay %r: %s"
                    % (self.relay_id, welcome.reason)
                )
            if self.relay_id in welcome.path:
                # Loop refusal, connecting side: joining here would make
                # this node its own ancestor.
                raise NetworkError(
                    "relay loop refused: %r is already on the upstream path %s"
                    % (self.relay_id, "/".join(welcome.path))
                )
            if len(welcome.path) >= MAX_RELAY_PATH:
                raise NetworkError(
                    "relay chain of %d hops reached the %d-hop bound"
                    % (len(welcome.path), MAX_RELAY_PATH)
                )
        except asyncio.TimeoutError:
            await stream.aclose()
            raise NetworkError(
                "upstream did not answer the relay handshake within %.1fs"
                % self.handshake_timeout
            )
        except BaseException:
            await stream.aclose()
            raise
        self._up = stream
        self.path = tuple(welcome.path) + (self.relay_id,)
        self._server = await asyncio.start_server(
            self._on_connect, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]
        self._up_task = asyncio.get_running_loop().create_task(
            self._upstream_loop()
        )
        if self.metrics_interval > 0:
            self._metrics_task = asyncio.get_running_loop().create_task(
                self._metrics_loop()
            )
        logger.info(
            "relay %r listening on %s:%d (path %s)",
            self.relay_id, self.host, self.port, "/".join(self.path),
        )
        return self.host, self.port

    async def serve_forever(self) -> None:
        """Serve until :meth:`shutdown` (or upstream loss) then close."""
        if self._server is None:
            await self.start()
        await self._shutdown.wait()
        await self.aclose()

    def shutdown(self) -> None:
        """Request a graceful stop (idempotent, callable from any task)."""
        self._shutdown.set()

    async def aclose(self) -> None:
        """Close the listener, the upstream link and every downstream."""
        self._shutdown.set()
        if self._metrics_task is not None:
            self._metrics_task.cancel()
            self._metrics_task = None
        if self._obs is not None:
            self._obs.metrics(self._metrics_snapshot())  # final flush
            self._obs.close()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        if self._up_task is not None and self._up_task is not asyncio.current_task():
            self._up_task.cancel()
        if self._up is not None:
            await self._up.aclose()
        for down in list(self._downs):
            down.closed = True
            if down.sender_task is not None:
                down.sender_task.cancel()
            await down.stream.aclose()
        self._downs.clear()
        self._bind.clear()
        self._pending.clear()

    # -- upstream ------------------------------------------------------------

    async def _send_up(self, message: NetMessage) -> bool:
        """Forward one frame toward the root; upstream loss ends the relay."""
        if self._up is None or self._shutdown.is_set():
            return False
        try:
            await _send(self._up, message)
            return True
        except (NetworkError, ConnectionError, OSError) as exc:
            logger.warning("upstream send failed: %s", exc)
            self.shutdown()
            return False

    async def _ack_up(self, count: int) -> None:
        if count > 0:
            await self._send_up(Ack(count=count))

    async def _upstream_loop(self) -> None:
        """Dispatch frames arriving from the root side."""
        try:
            while True:
                frame = await self._up.recv()
                if frame is None:
                    logger.info(
                        "upstream closed; relay %r shutting down", self.relay_id
                    )
                    return
                message = decode_net_payload(*frame)
                if isinstance(message, NetDeliver):
                    await self._down_unicast(message)
                elif isinstance(message, RelayBroadcast):
                    await self._down_broadcast(message)
                elif isinstance(message, RelayAttachReply):
                    await self._attach_reply(message)
                elif isinstance(message, RelayStatsReply):
                    await self._stats_reply_down(message)
                else:
                    raise SerializationError(
                        "upstream may not send %s" % type(message).__name__
                    )
        except asyncio.CancelledError:
            raise
        except (ReproError, ConnectionError, OSError) as exc:
            logger.warning("upstream link failed: %s", exc)
        finally:
            self.shutdown()

    async def _down_unicast(self, message: NetDeliver) -> None:
        down = self._bind.get(message.receiver)
        if down is None:
            # Stale root routing (our RelayDetach raced this frame on the
            # other direction of the link): bounce it back up.  The
            # detach precedes this bounce on the FIFO upstream link, so
            # the root re-routes from fresh state -- into the entity's
            # offline inbox -- and no ping-pong loop can form.
            self.bounced_up += 1
            await self._send_up(message)
            await self._ack_up(1)
            return
        self.unicast_down += 1
        if self._obs is not None:
            self._obs.span(
                "deliver", trace=message.trace, sender=message.sender,
                receiver=message.receiver, kind=message.kind,
                size=len(message.payload),
            )
        unit = _Unit()
        await self._push(down, message, unit)
        if unit.outstanding == 0:
            # Push refused (slow-consumer drop): the subtree is gone and
            # the unit is done as far as the upstream is concerned.
            await self._ack_up(1)

    async def _down_broadcast(self, message: RelayBroadcast) -> None:
        if message.seq in self._seen:
            # Per-hop dedup: replayed or multiply-routed multicast.
            self.dupes_dropped += 1
            await self._ack_up(1)
            return
        self._seen.add(message.seq)
        self._seen_order.append(message.seq)
        while len(self._seen_order) > self.seen_cap:
            self._seen.discard(self._seen_order.popleft())
        self.broadcasts_down += 1
        if self._obs is not None:
            self._obs.span(
                "broadcast", trace=message.trace, sender=message.sender,
                kind=message.kind, seq=message.seq,
                size=len(message.payload),
            )
        unit = _Unit()
        for down in list(self._downs):
            if down.kind == "entity":
                if down.name == message.sender:
                    continue  # the origin never receives its own multicast
                copy: NetMessage = NetDeliver(
                    sender=message.sender,
                    receiver=down.name,
                    kind=message.kind,
                    note=message.note,
                    payload=message.payload,
                    trace=message.trace,
                )
                if await self._push(down, copy, unit):
                    self.broadcast_deliveries += 1
            else:
                # One frame per downstream link, same sequence id: the
                # next hop dedups and fans out for its own subtree.
                await self._push(down, message, unit)
        if unit.outstanding == 0:
            await self._ack_up(1)

    async def _attach_reply(self, message: RelayAttachReply) -> None:
        entity = message.entity
        queue = self._pending.get(entity)
        if not queue:
            # Nobody is waiting (the connection vanished mid-handshake).
            # If the root admitted the name it now believes the entity
            # lives here: undo, or the name would be wedged.
            if message.ok:
                await self._send_up(RelayDetach(entity=entity))
            return
        kind, waiter = queue.popleft()
        if not queue:
            del self._pending[entity]
        if kind == "link":
            link = waiter
            if link.closed:
                if message.ok:
                    await self._send_up(RelayDetach(entity=entity))
                return
            if message.ok:
                self._bind[entity] = link
                link.entities.add(entity)
            await self._push(link, message)
            return
        # kind == "hello": a directly connecting entity's handshake.
        down, future = waiter
        dead = future.done() or down.closed  # timed out or already gone
        if message.ok and not dead:
            self._bind[entity] = down
            self._downs.add(down)
            down.sender_task = asyncio.get_running_loop().create_task(
                self._down_send_loop(down)
            )
            # Welcome goes through the same FIFO queue as the deliveries
            # the root flushes right behind its reply, so the entity sees
            # Welcome first -- the order a direct reconnect observes.
            await self._push(down, Welcome(ok=True, entity=entity))
            logger.info("entity %r attached (relay %r)", entity, self.relay_id)
        elif message.ok and dead:
            await self._send_up(RelayDetach(entity=entity))
        if not future.done():
            future.set_result(message)

    async def _stats_reply_down(self, message: RelayStatsReply) -> None:
        down = self._bind.get(message.entity)
        if down is None:
            return  # raced a detach; nobody is waiting anymore
        if down.kind == "entity":
            # Unwrap: the entity receives a plain StatsReply, identical
            # to what a direct broker connection would have sent.
            stats = decode_net_payload(StatsReply.TYPE_ID, message.reply)
            await self._push(down, stats)
        else:
            await self._push(down, message)

    # -- downstream connections ------------------------------------------------

    async def _on_connect(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        stream = FrameStream(reader, writer, self.max_frame + ENVELOPE_OVERHEAD)
        down: Optional[_Down] = None
        try:
            first = await asyncio.wait_for(stream.recv(), self.handshake_timeout)
            if first is None:
                return
            message = decode_net_payload(*first)
            if isinstance(message, Hello):
                down = await self._entity_handshake(stream, message)
                if down is None:
                    return
                await self._entity_loop(down)
            elif isinstance(message, RelayHello):
                down = await self._downstream_relay_handshake(stream, message)
                if down is None:
                    return
                await self._relay_loop(down)
            elif isinstance(message, StatsRequest):
                # Monitor connection: answered from local counters only,
                # without touching the name table or quiescence state.
                await _send(stream, self.local_stats())
                await self._monitor_loop(stream)
            elif isinstance(message, MetricsRequest):
                # Metrics monitor: same no-name-table path, answering
                # with this hop's subtree aggregate.
                await _send(stream, self._metrics_report(message.trace))
                await self._monitor_loop(stream)
            else:
                raise SerializationError(
                    "first frame must be Hello, RelayHello, StatsRequest"
                    " or MetricsRequest, got %s" % type(message).__name__
                )
        except asyncio.TimeoutError:
            logger.warning(
                "dropping connection %s: no handshake within %.1fs",
                stream.peername(), self.handshake_timeout,
            )
        except (ReproError, ConnectionError, OSError) as exc:
            who = "pre-hello"
            if down is not None:
                who = "%s %s" % (down.kind, down.name)
            logger.warning(
                "dropping connection %s (%s): %s", stream.peername(), who, exc
            )
        finally:
            if down is not None:
                await self._drop_down(down, "connection closed")
            await stream.aclose()

    async def _entity_handshake(
        self, stream: FrameStream, hello: Hello
    ) -> Optional[_Down]:
        """Forward the Hello up as RelayAttach; the root decides.

        Only trivially malformed names are refused locally -- admission
        stays a single-authority decision so an entity cannot bypass
        spoof-on-connect by picking a different attach point.
        """
        entity = hello.entity
        refusal = None
        if not entity:
            refusal = "entity name must be non-empty"
        elif len(entity) > MAX_NAME_LEN:
            refusal = "entity name of %d bytes exceeds %d" % (
                len(entity), MAX_NAME_LEN,
            )
        elif entity == BROADCAST:
            refusal = "entity name %r is reserved for multicast" % BROADCAST
        if refusal is not None:
            await _send(stream, Welcome(ok=False, entity=entity[:MAX_NAME_LEN],
                                        reason=refusal))
            return None
        down = _Down("entity", entity, stream)
        future = asyncio.get_running_loop().create_future()
        self._pending.setdefault(entity, deque()).append(("hello", (down, future)))
        if not await self._send_up(RelayAttach(entity=entity)):
            down.closed = True
            await _send(stream, Welcome(ok=False, entity=entity,
                                        reason="relay upstream unavailable"))
            return None
        try:
            reply = await asyncio.wait_for(future, self.handshake_timeout)
        except asyncio.TimeoutError:
            down.closed = True  # _attach_reply will detach if ok arrives late
            await _send(stream, Welcome(ok=False, entity=entity,
                                        reason="attach timed out"))
            return None
        if not reply.ok:
            await _send(stream, Welcome(ok=False, entity=entity,
                                        reason=reply.reason))
            return None
        # _attach_reply already bound us, started the sender task and
        # queued the Welcome ahead of any flushed backlog.
        return down

    async def _downstream_relay_handshake(
        self, stream: FrameStream, hello: RelayHello
    ) -> Optional[_Down]:
        relay_id = hello.relay_id
        refusal = None
        if not relay_id:
            refusal = "relay id must be non-empty"
        elif len(relay_id) > MAX_NAME_LEN:
            refusal = "relay id of %d bytes exceeds %d" % (
                len(relay_id), MAX_NAME_LEN,
            )
        elif relay_id == BROADCAST:
            refusal = "relay id %r is reserved for multicast" % BROADCAST
        elif relay_id in self.path:
            # Loop refusal, accepting side: the connecting node is an
            # ancestor of (or is) this relay.
            refusal = "relay loop refused: %r is on the path %s" % (
                relay_id, "/".join(self.path),
            )
        elif any(
            d.kind == "relay" and d.name == relay_id for d in self._downs
        ):
            refusal = "relay %r is already connected" % relay_id
        elif len(self.path) >= MAX_RELAY_PATH:
            refusal = "relay chain of %d hops reached the %d-hop bound" % (
                len(self.path), MAX_RELAY_PATH,
            )
        if refusal is not None:
            logger.warning(
                "refusing relay hello from %s: %s", stream.peername(), refusal
            )
            await _send(
                stream,
                RelayWelcome(ok=False, relay_id=relay_id[:MAX_NAME_LEN],
                             reason=refusal),
            )
            return None
        down = _Down("relay", relay_id, stream)
        self._downs.add(down)
        down.sender_task = asyncio.get_running_loop().create_task(
            self._down_send_loop(down)
        )
        await _send(
            stream, RelayWelcome(ok=True, relay_id=relay_id, path=self.path)
        )
        logger.info(
            "downstream relay %r connected (relay %r)", relay_id, self.relay_id
        )
        return down

    async def _entity_loop(self, down: _Down) -> None:
        entity = down.name
        while True:
            frame = await down.stream.recv()
            if frame is None:
                return
            message = decode_net_payload(*frame)
            if isinstance(message, (NetDeliver, NetBroadcast)):
                if message.sender != entity:
                    raise SerializationError(
                        "connection %r tried to send as %r"
                        % (entity, message.sender)
                    )
                self._require_payload(message.payload)
                self.forwarded_up += 1
                await self._send_up(message)
            elif isinstance(message, Ack):
                await self._pop_tokens(down, message.count)
            elif isinstance(message, StatsRequest):
                await self._send_up(
                    RelayStatsRequest(
                        entity=entity, include_log=message.include_log
                    )
                )
            elif isinstance(message, MetricsRequest):
                # Answered locally: an entity attached here observes this
                # hop's subtree aggregate (the root's view for entities
                # attached at the root).
                await self._push(
                    down,
                    MetricsReport(
                        source=self.relay_id,
                        snapshot=snapshot_to_json(self._metrics_snapshot()),
                        trace=message.trace,
                    ),
                )
            elif isinstance(message, Shutdown):
                # The root decides; its shutdown cascades back down as
                # upstream EOF on every relay.
                await self._send_up(message)
            else:
                raise SerializationError(
                    "client may not send %s" % type(message).__name__
                )

    async def _relay_loop(self, link: _Down) -> None:
        while True:
            frame = await link.stream.recv()
            if frame is None:
                return
            message = decode_net_payload(*frame)
            if isinstance(message, NetDeliver):
                # Either legitimate up-traffic (sender bound below the
                # link) or a bounce returning behind its RelayDetach; the
                # root, holding the authoritative table, tells them
                # apart.  Forwarded unmodified either way.
                self._require_payload(message.payload)
                self.forwarded_up += 1
                await self._send_up(message)
            elif isinstance(message, NetBroadcast):
                if self._bind.get(message.sender) is not link:
                    raise SerializationError(
                        "relay %r forwarded multicast for unattached "
                        "sender %r" % (link.name, message.sender)
                    )
                self._require_payload(message.payload)
                self.forwarded_up += 1
                await self._send_up(message)
            elif isinstance(message, RelayAttach):
                self._pending.setdefault(message.entity, deque()).append(
                    ("link", link)
                )
                await self._send_up(message)
            elif isinstance(message, RelayDetach):
                if self._bind.get(message.entity) is link:
                    del self._bind[message.entity]
                    link.entities.discard(message.entity)
                await self._send_up(message)
            elif isinstance(message, Ack):
                await self._pop_tokens(link, message.count)
            elif isinstance(message, RelayStatsRequest):
                await self._send_up(message)
            elif isinstance(message, MetricsReport):
                # Periodic push from the downstream relay: kept (not
                # forwarded as-is) -- our own push upstream merges it in,
                # so reports aggregate hop by hop toward the root.
                link.last_metrics = snapshot_from_json(message.snapshot)
            elif isinstance(message, RelayBroadcast):
                # Multicast only ever travels downstream; from below it
                # is a forged injection (or a loop the handshake should
                # have refused) and the link is hostile.
                raise SerializationError(
                    "RelayBroadcast travelling upstream from relay %r"
                    % link.name
                )
            elif isinstance(message, Shutdown):
                await self._send_up(message)
            else:
                raise SerializationError(
                    "relay may not send %s" % type(message).__name__
                )

    async def _monitor_loop(self, stream: FrameStream) -> None:
        while True:
            frame = await stream.recv()
            if frame is None:
                return
            message = decode_net_payload(*frame)
            if isinstance(message, StatsRequest):
                await _send(stream, self.local_stats())
            elif isinstance(message, MetricsRequest):
                await _send(stream, self._metrics_report(message.trace))
            else:
                raise SerializationError(
                    "monitor connection may only send StatsRequest "
                    "or MetricsRequest"
                )

    def _require_payload(self, payload: bytes) -> None:
        if len(payload) > self.max_frame:
            raise SerializationError(
                "routed payload of %d bytes exceeds the %d-byte cap"
                % (len(payload), self.max_frame)
            )

    # -- push / ack bookkeeping ------------------------------------------------

    async def _push(
        self, down: _Down, message: NetMessage, unit: Optional[_Unit] = None
    ) -> bool:
        """Queue one frame downstream, enforcing the backlog bound.

        ``unit`` marks a counted frame: its token joins the connection's
        FIFO *before* any await, so a concurrent drop can never see a
        token whose unit was not yet incremented.
        """
        if down.closed:
            return False
        if len(down.outbound) >= self.max_backlog:
            self.slow_consumer_disconnects += 1
            await self._drop_down(
                down,
                "outbound backlog over %d frames (slow consumer)"
                % self.max_backlog,
            )
            return False
        if unit is not None:
            unit.outstanding += 1
            down.tokens.append(unit)
            down.outbound.append((message, True))
            self.delivered_total += 1
        else:
            down.outbound.append((message, False))
        down.wake.set()
        return True

    async def _pop_tokens(self, down: _Down, count: int) -> None:
        """Apply a downstream Ack: complete units, propagate acks up."""
        done = 0
        for _ in range(min(count, len(down.tokens))):
            unit = down.tokens.popleft()
            unit.outstanding -= 1
            if unit.outstanding == 0:
                done += 1
        await self._ack_up(done)

    async def _drop_down(self, down: _Down, reason: str) -> None:
        """Tear one downstream connection out of every table.

        The subtree behind it is gone: its names detach upstream and all
        its unacked tokens count as done (at-most-once delivery), so the
        root's in-flight accounting drains instead of wedging.
        """
        if down.closed:
            return
        down.closed = True
        self._downs.discard(down)
        if down.sender_task is not None and (
            down.sender_task is not asyncio.current_task()
        ):
            down.sender_task.cancel()
        names: List[str] = []
        if down.kind == "entity":
            names = [down.name] if self._bind.get(down.name) is down else []
        else:
            names = sorted(
                name for name in down.entities
                if self._bind.get(name) is down
            )
        for name in names:
            del self._bind[name]
        down.entities.clear()
        self.dropped_total += sum(
            1 for _, counted in down.outbound if counted
        )
        down.outbound.clear()
        done = 0
        while down.tokens:
            unit = down.tokens.popleft()
            unit.outstanding -= 1
            if unit.outstanding == 0:
                done += 1
        await down.stream.aclose()
        for name in names:
            await self._send_up(RelayDetach(entity=name))
        await self._ack_up(done)
        logger.info(
            "dropped downstream %s %r: %s", down.kind, down.name, reason
        )

    async def _down_send_loop(self, down: _Down) -> None:
        """Drain one downstream connection's outbound queue in order."""
        while True:
            await down.wake.wait()
            down.wake.clear()
            while down.outbound:
                message, _counted = down.outbound[0]
                try:
                    await _send(down.stream, message)
                except SerializationError:
                    # Token FIFOs cannot survive a skipped counted frame
                    # (acks would misalign), and an envelope over the cap
                    # here means something upstream already violated its
                    # bounds: drop the connection, not just the frame.
                    await self._drop_down(
                        down, "undeliverable frame (envelope over the cap)"
                    )
                    return
                except (NetworkError, ConnectionError, OSError):
                    return  # the read loop observes the close and cleans up
                down.outbound.popleft()

    # -- metrics ---------------------------------------------------------------

    def _metrics_snapshot(self) -> dict:
        """This node's subtree aggregate: own registry + the last report
        pushed by every downstream relay link.

        The hop's counter attributes fold in as gauges at snapshot time
        (one source of truth); gauges *sum* under the merge, so at the
        root e.g. ``relay.forwarded_up`` reads as the whole tree's
        forwarding work.
        """
        self.metrics.set_gauge("relay.nodes", 1)
        self.metrics.set_gauge(
            "relay.pending", sum(len(d.outbound) for d in self._downs)
        )
        self.metrics.set_gauge(
            "relay.in_flight", sum(len(d.tokens) for d in self._downs)
        )
        self.metrics.set_gauge(
            "relay.entities_attached",
            sum(1 for d in self._downs if d.kind == "entity"),
        )
        self.metrics.set_gauge(
            "relay.downstream_relays",
            sum(1 for d in self._downs if d.kind == "relay"),
        )
        self.metrics.set_gauge("relay.bound_names", len(self._bind))
        self.metrics.set_gauge("relay.broadcasts_down", self.broadcasts_down)
        self.metrics.set_gauge(
            "relay.broadcast_deliveries", self.broadcast_deliveries
        )
        self.metrics.set_gauge("relay.unicast_down", self.unicast_down)
        self.metrics.set_gauge("relay.forwarded_up", self.forwarded_up)
        self.metrics.set_gauge("relay.bounced_up", self.bounced_up)
        self.metrics.set_gauge("relay.dupes_dropped", self.dupes_dropped)
        self.metrics.set_gauge(
            "relay.slow_consumer_disconnects", self.slow_consumer_disconnects
        )
        self.metrics.set_gauge("relay.dropped_total", self.dropped_total)
        self.metrics.set_gauge("relay.delivered_total", self.delivered_total)
        own = self.metrics.snapshot()
        reports = [
            d.last_metrics
            for d in self._downs
            if d.kind == "relay" and d.last_metrics is not None
        ]
        if reports:
            return merge_snapshots([own] + reports)
        return own

    def _metrics_report(self, trace: bytes = b"") -> MetricsReport:
        return MetricsReport(
            source=self.relay_id,
            snapshot=snapshot_to_json(self._metrics_snapshot()),
            trace=trace,
        )

    async def _metrics_loop(self) -> None:
        """Push the subtree aggregate upstream every ``metrics_interval``
        seconds (and mirror it into the local span log, if any)."""
        while True:
            await asyncio.sleep(self.metrics_interval)
            snapshot = self._metrics_snapshot()
            if self._obs is not None:
                self._obs.metrics(snapshot)
            self.metrics.inc("relay.metrics_pushes")
            await self._send_up(
                MetricsReport(
                    source=self.relay_id, snapshot=snapshot_to_json(snapshot)
                )
            )

    # -- local stats -----------------------------------------------------------

    def local_stats(self) -> StatsReply:
        """This hop's own counters (the per-hop invariant surface).

        Deliberately *not* the root stats: a monitor asking a relay gets
        the relay's view (no accounting log -- a relay keeps none, which
        is the point), while an attached entity's ``StatsRequest`` is
        forwarded up and answered by the root.
        """
        entity_conns = sum(1 for d in self._downs if d.kind == "entity")
        relay_conns = sum(1 for d in self._downs if d.kind == "relay")
        return StatsReply(
            pending=sum(len(d.outbound) for d in self._downs),
            in_flight=sum(len(d.tokens) for d in self._downs),
            delivered_total=self.delivered_total,
            dropped=self.dropped_total,
            log_complete=True,
            log=(),
            counters=(
                ("depth", len(self.path)),
                ("entities_attached", entity_conns),
                ("downstream_relays", relay_conns),
                ("bound_names", len(self._bind)),
                ("broadcasts_down", self.broadcasts_down),
                ("broadcast_deliveries", self.broadcast_deliveries),
                ("unicast_down", self.unicast_down),
                ("forwarded_up", self.forwarded_up),
                ("bounced_up", self.bounced_up),
                ("dupes_dropped", self.dupes_dropped),
                ("slow_consumer_disconnects", self.slow_consumer_disconnects),
            ),
        )


def request_local_stats(
    host: str, port: int, timeout: float = 10.0,
    max_frame: int = DEFAULT_MAX_FRAME_PAYLOAD,
) -> StatsReply:
    """Synchronously fetch one relay's local counters (monitor client).

    Opens a throwaway connection whose first frame is a plain
    ``StatsRequest`` -- the relay's monitor path -- so sampling a hop
    never registers a name or perturbs quiescence accounting.  Usable
    from any thread (plain sockets, no asyncio).
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(StatsRequest(include_log=False).encode())
            decoder = FrameDecoder(max_frame + ENVELOPE_OVERHEAD)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    raise NetworkError(
                        "relay %s:%d closed before replying" % (host, port)
                    )
                frames = decoder.feed(chunk)
                if frames:
                    message = decode_net_payload(*frames[0])
                    if not isinstance(message, StatsReply):
                        raise NetworkError(
                            "relay monitor answered with %s"
                            % type(message).__name__
                        )
                    return message
    except (ConnectionError, OSError, socket.timeout) as exc:
        raise NetworkError(
            "relay stats probe to %s:%d failed: %s" % (host, port, exc)
        )


def request_local_metrics(
    host: str, port: int, timeout: float = 10.0,
    max_frame: int = DEFAULT_MAX_FRAME_PAYLOAD,
) -> dict:
    """Synchronously fetch one relay's metrics snapshot (monitor client).

    The metrics twin of :func:`request_local_stats`: a throwaway
    connection whose first frame is a ``MetricsRequest``, answered with
    the hop's subtree aggregate.  Returns the decoded snapshot dict.
    """
    try:
        with socket.create_connection((host, port), timeout=timeout) as sock:
            sock.settimeout(timeout)
            sock.sendall(MetricsRequest().encode())
            decoder = FrameDecoder(max_frame + ENVELOPE_OVERHEAD)
            while True:
                chunk = sock.recv(65536)
                if not chunk:
                    raise NetworkError(
                        "relay %s:%d closed before replying" % (host, port)
                    )
                frames = decoder.feed(chunk)
                if frames:
                    message = decode_net_payload(*frames[0])
                    if not isinstance(message, MetricsReport):
                        raise NetworkError(
                            "relay metrics monitor answered with %s"
                            % type(message).__name__
                        )
                    return snapshot_from_json(message.snapshot)
    except (ConnectionError, OSError, socket.timeout) as exc:
        raise NetworkError(
            "relay metrics probe to %s:%d failed: %s" % (host, port, exc)
        )


# -- CLI ---------------------------------------------------------------------


async def _amain(args: argparse.Namespace) -> int:
    from repro.net._cli import parse_endpoint, write_port_file

    upstream_host, upstream_port = parse_endpoint(args.upstream)
    obs_path = None
    if args.obs_dir:
        obs_path = os.path.join(args.obs_dir, "obs.jsonl")
    relay = RelayServer(
        args.relay_id, upstream_host, upstream_port,
        args.host, args.port,
        max_frame=args.max_frame, max_backlog=args.max_backlog,
        handshake_timeout=args.handshake_timeout, seen_cap=args.seen_cap,
        metrics_interval=args.metrics_interval, obs_path=obs_path,
    )
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGTERM, signal.SIGINT):
        loop.add_signal_handler(signum, relay.shutdown)
    try:
        host, port = await relay.start()
    except NetworkError as exc:
        print("relay failed to start: %s" % exc, file=sys.stderr, flush=True)
        return 1
    if args.port_file:
        write_port_file(args.port_file, host, port)
    # Machine-parseable first (supervisors chain relay processes off this
    # line -- essential with --port 0), human-readable second.
    print("ENDPOINT %s:%d" % (host, port), flush=True)
    print(
        "relay %s listening on %s:%d (upstream %s)"
        % (args.relay_id, host, port, args.upstream),
        flush=True,
    )
    try:
        await relay.serve_forever()
    finally:
        await relay.aclose()
    return 0


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.relay",
        description="Run one keyless relay node of the broker federation.",
    )
    parser.add_argument("--relay-id", required=True,
                        help="this relay's unique id in the federation tree")
    parser.add_argument("--upstream", required=True, metavar="HOST:PORT",
                        help="the upstream broker or relay to join")
    parser.add_argument("--host", default="127.0.0.1")
    parser.add_argument("--port", type=int, default=0,
                        help="TCP port (0 = ephemeral; see --port-file and "
                             "the ENDPOINT stdout line)")
    parser.add_argument("--port-file", default=None,
                        help="write the bound host:port here once listening")
    parser.add_argument("--max-frame", type=int, default=DEFAULT_MAX_FRAME_PAYLOAD,
                        help="maximum accepted frame payload in bytes")
    parser.add_argument("--max-backlog", type=int, default=10_000,
                        help="per-connection outbound backlog bound "
                             "(slow consumers are disconnected beyond it)")
    parser.add_argument("--handshake-timeout", type=float, default=10.0,
                        help="seconds a connection gets to handshake")
    parser.add_argument("--seen-cap", type=int, default=SEEN_CAP,
                        help="broadcast-dedup seen-set bound")
    parser.add_argument("--metrics-interval", type=float, default=0.0,
                        help="seconds between upstream MetricsReport "
                             "pushes (0 = off)")
    parser.add_argument("--obs-dir", default=None,
                        help="directory for the obs.jsonl span log "
                             "(off when unset)")
    parser.add_argument("-v", "--verbose", action="store_true")
    args = parser.parse_args(argv)
    logging.basicConfig(
        level=logging.DEBUG if args.verbose else logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s",
        stream=sys.stderr,
    )
    try:
        return asyncio.run(_amain(args))
    except KeyboardInterrupt:
        return 0


if __name__ == "__main__":
    raise SystemExit(main())
