"""``python -m repro.net.publisher``: the dissemination service process.

Two modes:

* ``--serve``: answer condition queries and OCBE registrations forever
  (the long-running deployment shape).
* default (lifecycle): additionally run the scenario's demo script --
  wait until every expected registration landed in the CSS table and the
  broker is quiet, publish the scenario documents, revoke the scenario's
  users, publish again (the rekey **is** the next broadcast: zero
  unicast), then write a JSON report with the broker-measured byte
  accounting and exit.  ``examples/networked_service.py`` drives this
  mode and asserts on the report.

With ``--data-dir`` the CSS table, policies and GKM epoch are durable
(:mod:`repro.store`).  A restarted publisher recovers them, *skips* the
registration wait, and resumes with a rekey-on-recovery broadcast: fresh
ACV headers over the recovered table, which every already-registered
subscriber can open with its unchanged CSSs.  Zero unicast, no
re-registration -- the exact O(N)-avoidance the paper's GKM buys,
preserved across crashes.
"""

from __future__ import annotations

import argparse
import json

from repro.documents.model import Document
from repro.net._cli import add_common_arguments, install_stop_signals, parse_endpoint
from repro.net.bootstrap import (
    build_publisher,
    expected_registrations,
    load_scenario,
    read_bundle,
    write_json,
)
from repro.net.runtime import (
    StopRequested,
    pump_forever,
    pump_until,
    wait_for_file,
    wait_until_quiet,
)
from repro.net.transport import TcpTransport
from repro.obs.metrics import get_registry
from repro.obs.profile import profile_window, recorder_for, set_profiler
from repro.obs.trace import set_span_writer, writer_for
from repro.store import PublisherPersistence
from repro.system.service import DisseminationService

__all__ = ["main"]


def _scenario_documents(scenario: dict):
    for spec in scenario["documents"]:
        yield Document.of(
            spec["name"],
            {seg: text.encode("utf-8") for seg, text in spec["segments"].items()},
        )


def _run_lifecycle(args, scenario, bundle, service, transport, stop,
                   recovered_cells=0) -> dict:
    publisher = service.publisher
    expected = expected_registrations(scenario, publisher=publisher.name)
    if recovered_cells >= expected:
        # The durable table already holds every CSS: the first publish
        # below is the rekey-on-recovery broadcast, and no subscriber
        # sends a single registration frame.
        print("recovered %d/%d registrations from the data dir; "
              "skipping the registration wait" % (recovered_cells, expected),
              flush=True)
    else:
        print("waiting for %d registrations..." % expected, flush=True)
        with profile_window("registration"):
            pump_until(
                [service],
                lambda: publisher.table.cell_count() >= expected,
                timeout=args.timeout,
                stop=stop,
            )
            # Table completeness is necessary, not sufficient: CSS cells
            # are minted at request time, while the OCBE envelopes that
            # let the Subs *extract* them may still be in flight.
            # Quiescence closes that gap.
            wait_until_quiet(transport, [service], timeout=args.timeout)
    cells_registered = publisher.table.cell_count()
    print("all registrations complete", flush=True)

    documents = list(_scenario_documents(scenario))
    with profile_window("publish"):
        for document in documents:
            service.publish(document)
        wait_until_quiet(transport, [service], timeout=args.timeout)
    print("published %d documents" % len(documents), flush=True)

    inbound_before = transport.snapshot().bytes_received_by(publisher.name)
    for user in scenario["revoke"]:
        if not publisher.revoke_subscription(bundle.nyms[user]):
            raise SystemExit("revocation of %r found no subscription" % user)
    with profile_window("rekey"):
        for document in documents:  # re-publish: this is the rekey
            service.publish(document)
        wait_until_quiet(transport, [service], timeout=args.timeout)
    snapshot = transport.snapshot()
    inbound_after = snapshot.bytes_received_by(publisher.name)
    print("revoked %s and rekeyed via re-broadcast" % (scenario["revoke"],),
          flush=True)
    return {
        "publisher": publisher.name,
        "recovered_cells": recovered_cells,
        "gkm": publisher.gkm,
        "gkm_bucket_size": publisher.gkm_bucket_size or 0,
        "gkm_epoch": publisher.epoch,
        "table_cells_registered": cells_registered,
        "table_cells_after_revoke": publisher.table.cell_count(),
        "expected_registrations": expected,
        "revoked": scenario["revoke"],
        "inbound_bytes_before_rekey": inbound_before,
        "inbound_bytes_after_rekey": inbound_after,
        "broadcast_frame_sizes": [
            record.size
            for record in snapshot.messages
            if record.kind == "broadcast-package" and record.receiver == "*"
        ],
        "bytes_by_kind": {
            kind: sum(
                record.size for record in snapshot.messages if record.kind == kind
            )
            for kind in snapshot.kinds_count()
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.publisher",
        description="Serve registrations and broadcasts over the broker.",
    )
    add_common_arguments(parser)
    parser.add_argument("--serve", action="store_true",
                        help="serve forever instead of running the scenario "
                             "lifecycle")
    parser.add_argument("--report", default=None,
                        help="write the lifecycle report JSON here")
    parser.add_argument("--name", default=None,
                        help="which publisher spec to serve, for scenarios "
                             "with a 'publishers' list (default: the "
                             "first/only one)")
    parser.add_argument("--profile-dir", default=None,
                        help="record cProfile aggregates for the "
                             "registration wait and the publish/rekey "
                             "windows into profile_<name>.json under this "
                             "directory (readable by python -m "
                             "repro.obs.profile); function names only, "
                             "never argument values")
    parser.add_argument("--gkm-buckets", type=int, default=None, metavar="SIZE",
                        help="use the bucketed ACV strategy with SIZE rows "
                             "per bucket (0 = the auto ceil(sqrt(m)) "
                             "policy); omit to follow the scenario's 'gkm' "
                             "fields (default dense)")
    parser.add_argument("--ocbe-workers", type=int, default=None, metavar="N",
                        help="build OCBE registration envelopes on a pool "
                             "of N worker processes (replies stay in "
                             "delivery order; a crashed pool degrades to "
                             "serial); omit to follow the scenario's "
                             "'ocbe_workers' field (default serial)")
    args = parser.parse_args(argv)
    if args.gkm_buckets is not None and args.gkm_buckets < 0:
        parser.error("--gkm-buckets must be >= 0")
    if args.ocbe_workers is not None and args.ocbe_workers < 0:
        parser.error("--ocbe-workers must be >= 0")

    scenario = load_scenario(args.scenario)
    wait_for_file(args.bundle, timeout=args.timeout)
    bundle = read_bundle(args.bundle)
    publisher = build_publisher(
        scenario, bundle.public_key, name=args.name,
        gkm="bucketed" if args.gkm_buckets is not None else None,
        gkm_bucket_size=args.gkm_buckets,
    )

    persistence = None
    recovered_cells = 0
    if args.data_dir:
        persistence = PublisherPersistence.attach(args.data_dir, publisher)
        recovered_cells = (
            publisher.table.cell_count() if persistence.recovered else 0
        )
        if persistence.recovered:
            print("recovered publisher state: %d CSS cells, epoch %d"
                  % (recovered_cells, publisher.epoch), flush=True)

    stop = install_stop_signals()
    host, port = parse_endpoint(args.broker)
    obs = writer_for(args.data_dir, publisher.name)
    # The global installs make stage() spans (ocbe.build, acv.solve,
    # wal.*) and profile_window() land in this process's files; both are
    # restored on the way out so embedders stay unaffected.
    previous_writer = set_span_writer(obs)
    profiler = recorder_for(args.profile_dir, publisher.name)
    previous_profiler = set_profiler(profiler)
    service = None
    try:
        with TcpTransport(host, port) as transport:
            workers = args.ocbe_workers
            if workers is None:
                workers = int(scenario.get("ocbe_workers", 0))
            service = DisseminationService(
                publisher, transport, persistence=persistence,
                ocbe_workers=workers,
            )
            service.span_writer = obs
            if profiler is not None:
                from repro.groups._native import BACKEND

                profiler.annotate(math_backend=BACKEND, ocbe_workers=workers)
            print("publisher serving as %r on %s" % (publisher.name, args.broker),
                  flush=True)
            if args.serve:
                if recovered_cells:
                    # Rekey-on-recovery for the long-running shape too: the
                    # first act after a crash is a fresh broadcast so the
                    # recovered table's subscribers resume decrypting.
                    for document in _scenario_documents(scenario):
                        service.publish(document)
                        print("rekey-on-recovery broadcast of %r" % document.name,
                              flush=True)
                with profile_window("serve"):
                    pump_forever([service], stop)
                return 0
            try:
                report = _run_lifecycle(
                    args, scenario, bundle, service, transport, stop,
                    recovered_cells=recovered_cells,
                )
            except StopRequested:
                print("stop signal received; exiting without a report", flush=True)
                return 0
            if args.report:
                write_json(args.report, report)
            print(json.dumps(report, indent=2, sort_keys=True), flush=True)
    finally:
        if service is not None:
            service.close()
        set_span_writer(previous_writer)
        set_profiler(previous_profiler)
        if profiler is not None:
            profiler.write()
        if obs is not None:
            obs.metrics(get_registry().snapshot())
            obs.close()
        if persistence is not None:
            persistence.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
