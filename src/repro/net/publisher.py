"""``python -m repro.net.publisher``: the dissemination service process.

Two modes:

* ``--serve``: answer condition queries and OCBE registrations forever
  (the long-running deployment shape).
* default (lifecycle): additionally run the scenario's demo script --
  wait until every expected registration landed in the CSS table and the
  broker is quiet, publish the scenario documents, revoke the scenario's
  users, publish again (the rekey **is** the next broadcast: zero
  unicast), then write a JSON report with the broker-measured byte
  accounting and exit.  ``examples/networked_service.py`` drives this
  mode and asserts on the report.
"""

from __future__ import annotations

import argparse
import json

from repro.documents.model import Document
from repro.net._cli import add_common_arguments, install_stop_signals, parse_endpoint
from repro.net.bootstrap import (
    build_publisher,
    expected_registrations,
    load_scenario,
    read_bundle,
    write_json,
)
from repro.net.runtime import (
    StopRequested,
    pump_forever,
    pump_until,
    wait_for_file,
    wait_until_quiet,
)
from repro.net.transport import TcpTransport
from repro.system.service import DisseminationService

__all__ = ["main"]


def _scenario_documents(scenario: dict):
    for spec in scenario["documents"]:
        yield Document.of(
            spec["name"],
            {seg: text.encode("utf-8") for seg, text in spec["segments"].items()},
        )


def _run_lifecycle(args, scenario, bundle, service, transport, stop) -> dict:
    publisher = service.publisher
    expected = expected_registrations(scenario)
    print("waiting for %d registrations..." % expected, flush=True)
    pump_until(
        [service],
        lambda: publisher.table.cell_count() >= expected,
        timeout=args.timeout,
        stop=stop,
    )
    # Table completeness is necessary, not sufficient: CSS cells are
    # minted at request time, while the OCBE envelopes that let the Subs
    # *extract* them may still be in flight.  Quiescence closes that gap.
    wait_until_quiet(transport, [service], timeout=args.timeout)
    cells_registered = publisher.table.cell_count()
    print("all registrations complete", flush=True)

    documents = list(_scenario_documents(scenario))
    for document in documents:
        service.publish(document)
    wait_until_quiet(transport, [service], timeout=args.timeout)
    print("published %d documents" % len(documents), flush=True)

    inbound_before = transport.snapshot().bytes_received_by(publisher.name)
    for user in scenario["revoke"]:
        if not publisher.revoke_subscription(bundle.nyms[user]):
            raise SystemExit("revocation of %r found no subscription" % user)
    for document in documents:  # re-publish: this is the rekey
        service.publish(document)
    wait_until_quiet(transport, [service], timeout=args.timeout)
    snapshot = transport.snapshot()
    inbound_after = snapshot.bytes_received_by(publisher.name)
    print("revoked %s and rekeyed via re-broadcast" % (scenario["revoke"],),
          flush=True)
    return {
        "publisher": publisher.name,
        "table_cells_registered": cells_registered,
        "table_cells_after_revoke": publisher.table.cell_count(),
        "expected_registrations": expected,
        "revoked": scenario["revoke"],
        "inbound_bytes_before_rekey": inbound_before,
        "inbound_bytes_after_rekey": inbound_after,
        "broadcast_frame_sizes": [
            record.size
            for record in snapshot.messages
            if record.kind == "broadcast-package" and record.receiver == "*"
        ],
        "bytes_by_kind": {
            kind: sum(
                record.size for record in snapshot.messages if record.kind == kind
            )
            for kind in snapshot.kinds_count()
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.publisher",
        description="Serve registrations and broadcasts over the broker.",
    )
    add_common_arguments(parser)
    parser.add_argument("--serve", action="store_true",
                        help="serve forever instead of running the scenario "
                             "lifecycle")
    parser.add_argument("--report", default=None,
                        help="write the lifecycle report JSON here")
    args = parser.parse_args(argv)

    scenario = load_scenario(args.scenario)
    wait_for_file(args.bundle, timeout=args.timeout)
    bundle = read_bundle(args.bundle)
    publisher = build_publisher(scenario, bundle.public_key)

    stop = install_stop_signals()
    host, port = parse_endpoint(args.broker)
    with TcpTransport(host, port) as transport:
        service = DisseminationService(publisher, transport)
        print("publisher serving as %r on %s" % (publisher.name, args.broker),
              flush=True)
        if args.serve:
            pump_forever([service], stop)
            return 0
        try:
            report = _run_lifecycle(args, scenario, bundle, service, transport, stop)
        except StopRequested:
            print("stop signal received; exiting without a report", flush=True)
            return 0
        if args.report:
            write_json(args.report, report)
        print(json.dumps(report, indent=2, sort_keys=True), flush=True)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
