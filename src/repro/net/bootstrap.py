"""Scenario/bundle files: how separate OS processes agree on a world.

A networked deployment must establish out of band what the in-process
examples share as live Python objects:

* the **scenario** (written by the operator, read by every process) --
  group name, GKM field, attribute bit-length, entity names, policies,
  the user population with their attribute values, and the demo
  lifecycle script (documents to publish, users to revoke).  Everything
  in it is public or IdP-side knowledge.
* the **bundle** (written by the IdMgr process once its keys exist, read
  by publisher and subscribers) -- the IdMgr's *public* signature key,
  each user's assigned pseudonym, and each user's signed attribute
  assertions.  Assertions are Sub-private credentials; shipping them
  through a file stands in for the Sub<->IdP enrollment channel the
  paper assumes, which a production deployment would encrypt per user.

The Pedersen base ``(g, h)`` needs no file: both generators are derived
deterministically from the named group (``h`` by hashing into the group,
so nobody knows ``log_g h``), hence every process reconstructs identical
``PedersenParams`` locally.
"""

from __future__ import annotations

import json
import os
import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.crypto.pedersen import PedersenParams
from repro.errors import InvalidParameterError
from repro.gkm.acv import FAST_FIELD, PAPER_FIELD
from repro.gkm.strategy import GKM_STRATEGIES
from repro.groups import get_group
from repro.groups.base import CyclicGroup, GroupElement
from repro.mathx.field import PrimeField
from repro.policy.acp import parse_policy
from repro.system.identity import AttributeAssertion
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher, SystemParams
from repro.system.subscriber import Subscriber

__all__ = [
    "Bundle",
    "build_identity_stack",
    "build_publisher",
    "build_subscriber",
    "build_system_params",
    "conditions_per_attribute",
    "expected_registrations",
    "load_scenario",
    "relay_for_entity",
    "relay_specs",
    "publisher_for_user",
    "publisher_specs",
    "read_bundle",
    "write_bundle",
    "write_json",
]

_GKM_FIELDS: Dict[str, PrimeField] = {"fast": FAST_FIELD, "paper": PAPER_FIELD}


def write_json(path: str, payload: dict) -> None:
    """Write JSON atomically (readers poll for the completed file)."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        json.dump(payload, handle, indent=2, sort_keys=True)
    os.replace(tmp, path)


def load_scenario(path: str) -> dict:
    with open(path, "r", encoding="utf-8") as handle:
        scenario = json.load(handle)
    for key in ("group", "seed", "users"):
        if key not in scenario:
            raise InvalidParameterError("scenario is missing %r" % key)
    if "policies" not in scenario and "publishers" not in scenario:
        raise InvalidParameterError(
            "scenario needs either 'policies' (single publisher) or "
            "'publishers' (a list of {name, policies})"
        )
    scenario.setdefault("attribute_bits", 8)
    scenario.setdefault("gkm_field", "fast")
    scenario.setdefault("gkm", "dense")
    scenario.setdefault("gkm_bucket_size", 0)
    scenario.setdefault("idp", "idp")
    scenario.setdefault("idmgr", "idmgr")
    scenario.setdefault("publisher", "pub")
    scenario.setdefault("documents", [])
    scenario.setdefault("revoke", [])
    scenario.setdefault("assignments", {})
    scenario.setdefault("topology", {})
    if scenario["gkm_field"] not in _GKM_FIELDS:
        raise InvalidParameterError(
            "gkm_field must be one of %s" % sorted(_GKM_FIELDS)
        )
    if scenario["gkm"] not in GKM_STRATEGIES:
        raise InvalidParameterError(
            "gkm must be one of %s" % (GKM_STRATEGIES,)
        )
    if not isinstance(scenario["gkm_bucket_size"], int) or (
        scenario["gkm_bucket_size"] < 0
    ):
        raise InvalidParameterError("gkm_bucket_size must be an int >= 0")
    names = [spec["name"] for spec in publisher_specs(scenario)]
    if len(set(names)) != len(names):
        raise InvalidParameterError("duplicate publisher names: %s" % names)
    for user, name in scenario["assignments"].items():
        if user not in scenario["users"]:
            raise InvalidParameterError(
                "assignment for unknown user %r" % user
            )
        if name not in names:
            raise InvalidParameterError(
                "user %r assigned to unknown publisher %r" % (user, name)
            )
    relay_names = {spec["name"] for spec in relay_specs(scenario)}
    for entity, relay in scenario["topology"].get("attach", {}).items():
        if relay not in relay_names:
            raise InvalidParameterError(
                "entity %r attached to unknown relay %r" % (entity, relay)
            )
    return scenario


def publisher_specs(scenario: dict) -> List[dict]:
    """``[{"name": ..., "policies": [...]}, ...]`` -- the normalized
    publisher list.  A classic single-publisher scenario (top-level
    ``policies``) yields one spec named ``scenario["publisher"]``; a
    multi-publisher scenario lists them under ``publishers`` and assigns
    users via the optional ``assignments`` map (default: the first)."""
    if "publishers" in scenario:
        if not scenario["publishers"]:
            raise InvalidParameterError(
                "'publishers' must be a non-empty list"
            )
        specs = []
        for spec in scenario["publishers"]:
            for key in ("name", "policies"):
                if key not in spec:
                    raise InvalidParameterError(
                        "publisher spec is missing %r" % key
                    )
            specs.append(spec)
        return specs
    return [{"name": scenario["publisher"], "policies": scenario["policies"]}]


def relay_specs(scenario: dict) -> List[dict]:
    """The normalized relay tree: ``[{"name": ..., "upstream": ...}, ...]``.

    The optional scenario section ``topology`` describes the broker
    federation::

        "topology": {
            "relays": [{"name": "r1"}, {"name": "r2", "upstream": "r1"}],
            "attach": {"alice": "r2"}
        }

    ``upstream`` names an **earlier** relay in the list (omitted or null
    means the root broker), so a well-formed spec is a tree by
    construction -- the same declaration order a supervisor must spawn
    the processes in.  ``attach`` maps entity names to the relay they
    connect through; unlisted entities connect to the root directly.
    Entirely optional: no ``topology`` section means the classic
    single-broker deployment.
    """
    topology = scenario.get("topology") or {}
    relays = topology.get("relays", [])
    seen: List[str] = []
    specs: List[dict] = []
    for spec in relays:
        if "name" not in spec:
            raise InvalidParameterError("relay spec is missing 'name'")
        name = spec["name"]
        if name in seen:
            raise InvalidParameterError("duplicate relay name %r" % name)
        upstream = spec.get("upstream")
        if upstream is not None and upstream not in seen:
            raise InvalidParameterError(
                "relay %r names upstream %r, which is not an earlier relay "
                "in the list (the root broker is the implicit default)"
                % (name, upstream)
            )
        seen.append(name)
        specs.append({"name": name, "upstream": upstream})
    return specs


def relay_for_entity(scenario: dict, entity: str) -> Optional[str]:
    """The relay ``entity`` attaches through, or None for the root."""
    return scenario.get("topology", {}).get("attach", {}).get(entity)


def _publisher_spec(scenario: dict, name: Optional[str]) -> dict:
    specs = publisher_specs(scenario)
    if name is None:
        return specs[0]
    for spec in specs:
        if spec["name"] == name:
            return spec
    raise InvalidParameterError(
        "no publisher %r in the scenario (have %s)"
        % (name, [s["name"] for s in specs])
    )


def publisher_for_user(scenario: dict, user: str) -> str:
    """The publisher ``user`` subscribes to (``assignments``, else the
    first/only publisher)."""
    default = publisher_specs(scenario)[0]["name"]
    return scenario.get("assignments", {}).get(user, default)


def _group(scenario: dict) -> CyclicGroup:
    return get_group(scenario["group"])


def build_identity_stack(scenario: dict):
    """The IdMgr process's world: IdP, IdMgr, pseudonyms, assertions.

    Deterministic in ``scenario["seed"]`` so a restarted IdMgr issues the
    same pseudonyms/keys (users are processed in sorted order).
    """
    rng = random.Random(scenario["seed"])
    group = _group(scenario)
    idp = IdentityProvider(scenario["idp"], group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)
    nyms: Dict[str, str] = {}
    assertions: Dict[str, Dict[str, AttributeAssertion]] = {}
    for user in sorted(scenario["users"]):
        nyms[user] = idmgr.assign_pseudonym()
        assertions[user] = {}
        for attribute, value in sorted(scenario["users"][user].items()):
            idp.enroll(user, attribute, value)
            assertions[user][attribute] = idp.assert_attribute(user, attribute)
    return idp, idmgr, nyms, assertions


@dataclass(frozen=True)
class Bundle:
    """The published parameters every non-IdMgr process needs."""

    group_name: str
    public_key: GroupElement
    nyms: Dict[str, str]
    assertions: Dict[str, Dict[str, AttributeAssertion]]


def write_bundle(path: str, scenario: dict, idmgr: IdentityManager,
                 nyms: Dict[str, str],
                 assertions: Dict[str, Dict[str, AttributeAssertion]]) -> None:
    write_json(path, {
        "group": scenario["group"],
        "idmgr_public_key": idmgr.public_key.to_bytes().hex(),
        "nyms": nyms,
        "assertions": {
            user: {attr: a.to_bytes().hex() for attr, a in per_user.items()}
            for user, per_user in assertions.items()
        },
    })


def read_bundle(path: str) -> Bundle:
    with open(path, "r", encoding="utf-8") as handle:
        raw = json.load(handle)
    group = get_group(raw["group"])
    return Bundle(
        group_name=raw["group"],
        public_key=group.element_from_bytes(bytes.fromhex(raw["idmgr_public_key"])),
        nyms=dict(raw["nyms"]),
        assertions={
            user: {
                attr: AttributeAssertion.from_bytes(bytes.fromhex(encoded))
                for attr, encoded in per_user.items()
            }
            for user, per_user in raw["assertions"].items()
        },
    )


def build_system_params(scenario: dict, public_key: GroupElement) -> SystemParams:
    """The ``SystemParams`` a subscriber process reconstructs locally.

    Built through :func:`build_publisher` so the defaults (hash, cipher,
    key length) can never drift between the two sides.
    """
    return build_publisher(scenario, public_key).params


def build_publisher(
    scenario: dict,
    public_key: GroupElement,
    name: Optional[str] = None,
    gkm: Optional[str] = None,
    gkm_bucket_size: Optional[int] = None,
) -> Publisher:
    """Build one of the scenario's publishers (default: the first/only).

    Each publisher's RNG is salted with its own name in multi-publisher
    scenarios, so two publisher processes sharing one broker never mint
    correlated CSSs; the classic single-publisher derivation is kept
    verbatim for reproducibility of existing scenarios.

    The publish-path GKM strategy resolves most-specific-first: the
    ``gkm``/``gkm_bucket_size`` arguments (a CLI override such as
    ``--gkm-buckets``), else the publisher spec's own ``gkm`` fields,
    else the scenario-level ones (default dense).
    """
    spec = _publisher_spec(scenario, name)
    if scenario.get("publishers"):
        salt = "%s/publisher/%s" % (scenario["seed"], spec["name"])
    else:
        salt = "%s/publisher" % scenario["seed"]
    if gkm is None:
        gkm = spec.get("gkm", scenario.get("gkm", "dense"))
    if gkm not in GKM_STRATEGIES:
        raise InvalidParameterError("gkm must be one of %s" % (GKM_STRATEGIES,))
    if gkm_bucket_size is None:
        gkm_bucket_size = spec.get(
            "gkm_bucket_size", scenario.get("gkm_bucket_size", 0)
        )
    if not isinstance(gkm_bucket_size, int) or gkm_bucket_size < 0:
        raise InvalidParameterError("gkm_bucket_size must be an int >= 0")
    publisher = Publisher(
        spec["name"],
        PedersenParams(_group(scenario)),
        public_key,
        gkm_field=_GKM_FIELDS[scenario["gkm_field"]],
        attribute_bits=scenario["attribute_bits"],
        rng=random.Random(salt),
        gkm=gkm,
        gkm_bucket_size=gkm_bucket_size or None,
    )
    for policy in spec["policies"]:
        publisher.add_policy(
            parse_policy(policy["condition"], policy["segments"], policy["document"])
        )
    return publisher


def build_subscriber(scenario: dict, bundle: Bundle, user: str) -> Subscriber:
    if user not in bundle.nyms:
        raise InvalidParameterError("user %r is not in the bundle" % user)
    params = build_system_params(scenario, bundle.public_key)
    return Subscriber(
        bundle.nyms[user], params,
        rng=random.Random("%s/%s" % (scenario["seed"], user)),
    )


def conditions_per_attribute(
    scenario: dict, publisher: Optional[str] = None
) -> Dict[str, int]:
    """Distinct policy conditions naming each attribute (0 if unmentioned).

    ``publisher`` restricts the count to one publisher's policy set;
    ``None`` counts across every publisher (identical to the historical
    behaviour for single-publisher scenarios).
    """
    if publisher is None:
        specs = publisher_specs(scenario)
    else:
        specs = [_publisher_spec(scenario, publisher)]
    conditions = {}
    for spec in specs:
        for policy in spec["policies"]:
            parsed = parse_policy(
                policy["condition"], policy["segments"], policy["document"]
            )
            for condition in parsed.conditions:
                conditions[condition.key()] = condition.name
    counts: Dict[str, int] = {}
    for name in conditions.values():
        counts[name] = counts.get(name, 0) + 1
    return counts


def expected_registrations(
    scenario: dict, publisher: Optional[str] = None
) -> int:
    """Table cells once every user registered every matching condition.

    Following Section V-B, each subscriber registers its token for every
    condition over an attribute it holds a token for, satisfiable or not
    -- against its *assigned* publisher.  ``publisher`` restricts the sum
    to the users assigned to that publisher (what one publisher process
    waits for); ``None`` sums over all of them.
    """
    per_pub = {
        spec["name"]: conditions_per_attribute(scenario, spec["name"])
        for spec in publisher_specs(scenario)
    }
    total = 0
    for user, attributes in scenario["users"].items():
        assigned = publisher_for_user(scenario, user)
        if publisher is not None and assigned != publisher:
            continue
        counts = per_pub[assigned]
        total += sum(counts.get(name, 0) for name in attributes)
    return total
