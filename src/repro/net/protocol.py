"""Net-level control messages between clients and the broker.

These frames share the :mod:`repro.wire.codec` format with the
application's messages but occupy a disjoint type-ID range (64+), so a
stream can carry either and a misrouted frame is always identifiable.
The broker speaks *only* this protocol; the application frames it routes
ride inside :class:`NetDeliver` / :class:`NetBroadcast` as opaque bytes
the broker never parses -- what the broker learns about a registration is
exactly what ``InMemoryTransport`` accounting records (sender, receiver,
kind label, size), no more.

Handshake: a client's first frame must be :class:`Hello`; the broker
answers :class:`Welcome`.  One live connection per entity name -- a
second Hello for a connected name is refused, so a peer cannot hijack an
entity's inbox by connecting under its nym (spoof-on-connect).  After the
handshake the broker enforces that every routed frame's declared sender
equals the connection's entity.

:class:`Ack` implements processed-message accounting for quiescence
detection: a client acknowledges deliveries only after its endpoint has
*handled* them, so ``pending == 0 and in_flight == 0`` at the broker
means the whole system is idle (no frames queued, in transit, or being
processed) -- the networked analogue of ``run_until_idle`` returning.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Type

from repro.errors import SerializationError
from repro.wire.codec import (
    Cursor,
    decode_frame,
    encode_frame,
    pack_bool,
    pack_bytes,
    pack_str,
    pack_u32,
)

__all__ = [
    "ENVELOPE_OVERHEAD",
    "NetMessage",
    "Hello",
    "Welcome",
    "NetDeliver",
    "NetBroadcast",
    "Ack",
    "StatsRequest",
    "StatsReply",
    "TrafficRecord",
    "Shutdown",
    "NET_MESSAGE_TYPES",
    "decode_net_message",
    "decode_net_payload",
]


#: Worst-case bytes a NetDeliver/NetBroadcast envelope adds around the
#: routed application frame: four u16-length-prefixed strings (sender,
#: receiver, kind, note; <= 65535 bytes each) plus the u32 payload
#: prefix.  Streams carrying envelopes allow ``max_frame +
#: ENVELOPE_OVERHEAD`` so any application frame legal under ``max_frame``
#: survives wrapping; the routed payload itself is checked against
#: ``max_frame`` explicitly on both sides.
ENVELOPE_OVERHEAD = 4 * (2 + 65535) + 4


class NetMessage:
    """Base class: subclasses define ``TYPE_ID`` and the payload codec."""

    TYPE_ID: int = -1

    def payload_bytes(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: bytes) -> "NetMessage":
        raise NotImplementedError

    def encode(self) -> bytes:
        return encode_frame(self.TYPE_ID, self.payload_bytes())


@dataclass(frozen=True)
class Hello(NetMessage):
    """Client -> broker: bind this connection to an entity name."""

    entity: str

    TYPE_ID = 64

    def payload_bytes(self) -> bytes:
        return pack_str(self.entity)

    @classmethod
    def from_payload(cls, payload: bytes) -> "Hello":
        cursor = Cursor(payload)
        message = cls(entity=cursor.read_str())
        cursor.expect_end()
        return message


@dataclass(frozen=True)
class Welcome(NetMessage):
    """Broker -> client: handshake outcome (refusals carry a reason)."""

    ok: bool
    entity: str
    reason: str = ""

    TYPE_ID = 65

    def payload_bytes(self) -> bytes:
        return pack_bool(self.ok) + pack_str(self.entity) + pack_str(self.reason)

    @classmethod
    def from_payload(cls, payload: bytes) -> "Welcome":
        cursor = Cursor(payload)
        message = cls(
            ok=cursor.read_bool(),
            entity=cursor.read_str(),
            reason=cursor.read_str(),
        )
        cursor.expect_end()
        return message


@dataclass(frozen=True)
class NetDeliver(NetMessage):
    """One routed application frame (client->broker and broker->client).

    ``payload`` is the application's complete wire frame, opaque to the
    broker; ``kind``/``note`` are the accounting labels the in-memory
    router records.
    """

    sender: str
    receiver: str
    kind: str
    note: str
    payload: bytes

    TYPE_ID = 66

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.sender)
            + pack_str(self.receiver)
            + pack_str(self.kind)
            + pack_str(self.note)
            + pack_bytes(self.payload)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "NetDeliver":
        cursor = Cursor(payload)
        message = cls(
            sender=cursor.read_str(),
            receiver=cursor.read_str(),
            kind=cursor.read_str(),
            note=cursor.read_str(),
            payload=cursor.read_bytes(),
        )
        cursor.expect_end()
        return message


@dataclass(frozen=True)
class NetBroadcast(NetMessage):
    """Client -> broker: one multicast, fanned out broker-side."""

    sender: str
    kind: str
    note: str
    payload: bytes

    TYPE_ID = 67

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.sender)
            + pack_str(self.kind)
            + pack_str(self.note)
            + pack_bytes(self.payload)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "NetBroadcast":
        cursor = Cursor(payload)
        message = cls(
            sender=cursor.read_str(),
            kind=cursor.read_str(),
            note=cursor.read_str(),
            payload=cursor.read_bytes(),
        )
        cursor.expect_end()
        return message


@dataclass(frozen=True)
class Ack(NetMessage):
    """Client -> broker: ``count`` pushed deliveries have been processed."""

    count: int

    TYPE_ID = 68

    def payload_bytes(self) -> bytes:
        return pack_u32(self.count)

    @classmethod
    def from_payload(cls, payload: bytes) -> "Ack":
        cursor = Cursor(payload)
        message = cls(count=cursor.read_u32())
        cursor.expect_end()
        return message


@dataclass(frozen=True)
class StatsRequest(NetMessage):
    """Client -> broker: report routing/accounting state."""

    include_log: bool = False

    TYPE_ID = 69

    def payload_bytes(self) -> bytes:
        return pack_bool(self.include_log)

    @classmethod
    def from_payload(cls, payload: bytes) -> "StatsRequest":
        cursor = Cursor(payload)
        message = cls(include_log=cursor.read_bool())
        cursor.expect_end()
        return message


@dataclass(frozen=True)
class TrafficRecord:
    """One accounted transmission, as reported in :class:`StatsReply`."""

    sender: str
    receiver: str
    kind: str
    size: int
    note: str = ""

    def to_bytes(self) -> bytes:
        return (
            pack_str(self.sender)
            + pack_str(self.receiver)
            + pack_str(self.kind)
            + pack_u32(self.size)
            + pack_str(self.note)
        )

    @classmethod
    def read_from(cls, cursor: Cursor) -> "TrafficRecord":
        return cls(
            sender=cursor.read_str(),
            receiver=cursor.read_str(),
            kind=cursor.read_str(),
            size=cursor.read_u32(),
            note=cursor.read_str(),
        )


@dataclass(frozen=True)
class StatsReply(NetMessage):
    """Broker -> client: routing state + (optionally) the accounting log.

    * ``pending`` -- deliveries queued broker-side, not yet pushed;
    * ``in_flight`` -- deliveries pushed to clients but not yet acked
      (i.e. not yet *processed* by the receiving endpoint);
    * ``delivered_total`` -- monotonic count of enqueued deliveries, so a
      caller can detect that traffic has genuinely stopped;
    * ``dropped`` -- deliveries discarded to hold broker state bounds;
    * ``log_complete`` -- False when the accounting log was too large to
      fit one frame and only its newest suffix is included.
    """

    pending: int
    in_flight: int
    delivered_total: int
    dropped: int = 0
    log_complete: bool = True
    log: Tuple[TrafficRecord, ...] = field(default_factory=tuple)

    TYPE_ID = 70

    def payload_bytes(self) -> bytes:
        out = (
            pack_u32(self.pending)
            + pack_u32(self.in_flight)
            + pack_u32(self.delivered_total)
            + pack_u32(self.dropped)
            + pack_bool(self.log_complete)
            + pack_u32(len(self.log))
        )
        return out + b"".join(record.to_bytes() for record in self.log)

    @classmethod
    def from_payload(cls, payload: bytes) -> "StatsReply":
        cursor = Cursor(payload)
        pending = cursor.read_u32()
        in_flight = cursor.read_u32()
        delivered_total = cursor.read_u32()
        dropped = cursor.read_u32()
        log_complete = cursor.read_bool()
        count = cursor.read_u32()
        log = tuple(TrafficRecord.read_from(cursor) for _ in range(count))
        cursor.expect_end()
        return cls(
            pending=pending,
            in_flight=in_flight,
            delivered_total=delivered_total,
            dropped=dropped,
            log_complete=log_complete,
            log=log,
        )


@dataclass(frozen=True)
class Shutdown(NetMessage):
    """Client -> broker: stop serving and close every connection.

    An operator convenience for supervised deployments (the loopback
    examples and tests); an internet-facing broker would gate this behind
    authentication, which the demo runtime does not have.
    """

    TYPE_ID = 71

    def payload_bytes(self) -> bytes:
        return b""

    @classmethod
    def from_payload(cls, payload: bytes) -> "Shutdown":
        Cursor(payload).expect_end()
        return cls()


NET_MESSAGE_TYPES: Dict[int, Type[NetMessage]] = {
    cls.TYPE_ID: cls
    for cls in (
        Hello,
        Welcome,
        NetDeliver,
        NetBroadcast,
        Ack,
        StatsRequest,
        StatsReply,
        Shutdown,
    )
}


def decode_net_payload(type_id: int, payload: bytes) -> NetMessage:
    """Decode an already-split frame (the stream layer's output)."""
    cls = NET_MESSAGE_TYPES.get(type_id)
    if cls is None:
        raise SerializationError("unknown net frame type %d" % type_id)
    return cls.from_payload(payload)


def decode_net_message(frame: bytes) -> NetMessage:
    """Decode one complete net frame from bytes."""
    type_id, payload = decode_frame(frame)
    return decode_net_payload(type_id, payload)
