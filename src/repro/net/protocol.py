"""Net-level control messages between clients and the broker.

These frames share the :mod:`repro.wire.codec` format with the
application's messages but occupy a disjoint type-ID range (64+), so a
stream can carry either and a misrouted frame is always identifiable.
The broker speaks *only* this protocol; the application frames it routes
ride inside :class:`NetDeliver` / :class:`NetBroadcast` as opaque bytes
the broker never parses -- what the broker learns about a registration is
exactly what ``InMemoryTransport`` accounting records (sender, receiver,
kind label, size), no more.

Handshake: a client's first frame must be :class:`Hello`; the broker
answers :class:`Welcome`.  One live connection per entity name -- a
second Hello for a connected name is refused, so a peer cannot hijack an
entity's inbox by connecting under its nym (spoof-on-connect).  After the
handshake the broker enforces that every routed frame's declared sender
equals the connection's entity.

Relay federation rides on the same framing.  A relay node opens its
downstream connection with :class:`RelayHello` instead of ``Hello``; the
upstream answers :class:`RelayWelcome` carrying its *path* (the chain of
relay ids from the root), which both sides check for loops.  Entities
attaching below a relay are forwarded up as :class:`RelayAttach` so the
root broker keeps the one global name table (spoof-on-connect stays a
single-authority decision); broadcasts travel down as
:class:`RelayBroadcast` carrying a root-assigned sequence id that each
hop dedups against a bounded seen-set.  Relays never unwrap routed
payloads -- the messages here carry names, labels and opaque bytes only,
so a relay provably cannot hold keys or CSS state.

:class:`Ack` implements processed-message accounting for quiescence
detection: a client acknowledges deliveries only after its endpoint has
*handled* them, so ``pending == 0 and in_flight == 0`` at the broker
means the whole system is idle (no frames queued, in transit, or being
processed) -- the networked analogue of ``run_until_idle`` returning.

Every message optionally carries a 16-byte **trace id** as a trailing
payload field (:func:`pack_trace` / :func:`read_trace`): the all-zeros
"no trace" value is encoded by *omission*, so untraced traffic is
byte-identical to the pre-trace protocol, a pre-trace decoder never
sees the field, and a pre-trace frame decodes here with
``trace == ZERO_TRACE``.  Any other trailing length is refused as
malformed.  Trace ids are opaque routing metadata (never payload
bytes); :mod:`repro.obs` owns their semantics.

:class:`MetricsRequest` / :class:`MetricsReport` carry point-in-time
:mod:`repro.obs.metrics` snapshots (canonical JSON, size-capped):
brokers answer requests with their subtree aggregate, relays push
reports upstream on ``--metrics-interval`` and answer requests on
their monitor port.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Tuple, Type

from repro.errors import SerializationError
from repro.obs.trace import TRACE_LEN, ZERO_TRACE
from repro.wire.codec import (
    Cursor,
    decode_frame,
    encode_frame,
    pack_bool,
    pack_bytes,
    pack_str,
    pack_u32,
)

__all__ = [
    "BROADCAST",
    "ENVELOPE_OVERHEAD",
    "MAX_METRICS_SNAPSHOT",
    "MAX_NAME_LEN",
    "MAX_RELAY_PATH",
    "TRACE_LEN",
    "ZERO_TRACE",
    "pack_trace",
    "read_trace",
    "NetMessage",
    "Hello",
    "Welcome",
    "NetDeliver",
    "NetBroadcast",
    "Ack",
    "StatsRequest",
    "StatsReply",
    "TrafficRecord",
    "Shutdown",
    "RelayHello",
    "RelayWelcome",
    "RelayAttach",
    "RelayAttachReply",
    "RelayDetach",
    "RelayBroadcast",
    "RelayStatsRequest",
    "RelayStatsReply",
    "MetricsRequest",
    "MetricsReport",
    "NET_MESSAGE_TYPES",
    "decode_net_message",
    "decode_net_payload",
]


#: Worst-case bytes a NetDeliver/NetBroadcast envelope adds around the
#: routed application frame: four u16-length-prefixed strings (sender,
#: receiver, kind, note; <= 65535 bytes each) plus the u32 payload
#: prefix.  Streams carrying envelopes allow ``max_frame +
#: ENVELOPE_OVERHEAD`` so any application frame legal under ``max_frame``
#: survives wrapping; the routed payload itself is checked against
#: ``max_frame`` explicitly on both sides.
ENVELOPE_OVERHEAD = 4 * (2 + 65535) + 4 + TRACE_LEN

#: The reserved multicast receiver name, mirrored from
#: :data:`repro.system.transport.BROADCAST`.  Redeclared here (rather
#: than imported) so the net layer's leaf modules -- in particular a
#: relay process, whose keyless claim is pinned as an import boundary --
#: never pull in :mod:`repro.system` and the crypto stack behind it.
BROADCAST = "*"

#: Longest entity or relay name a server will accept at handshake.  The
#: wire codec allows strings up to 64 KiB; names are operator-chosen
#: identifiers, so anything longer is a hostile or broken peer and the
#: handshake refuses it before the name enters any table.
MAX_NAME_LEN = 128

#: Deepest relay chain a :class:`RelayWelcome` may describe.  Bounds the
#: decode-side allocation and caps how deep a federation tree can grow;
#: a path longer than this is refused as malformed.
MAX_RELAY_PATH = 64

#: Largest serialized metrics snapshot a :class:`MetricsReport` may
#: carry (mirrors ``repro.obs.metrics.MAX_SNAPSHOT_BYTES``): telemetry
#: is aggregate numbers, so anything bigger is hostile or broken.
MAX_METRICS_SNAPSHOT = 1 << 20


def pack_trace(trace: bytes) -> bytes:
    """Encode a trace id as the optional trailing payload field.

    The no-trace value (empty or all zeros) encodes as *nothing*, so
    untraced frames stay byte-identical to the pre-trace protocol.
    """
    if not trace or not any(trace):
        return b""
    if len(trace) != TRACE_LEN:
        raise SerializationError(
            "trace id must be %d bytes, got %d" % (TRACE_LEN, len(trace))
        )
    return bytes(trace)


def read_trace(cursor: Cursor) -> bytes:
    """Read the optional trailing trace id; call after every other field.

    Nothing left means "no trace" (also how every pre-trace frame
    decodes); exactly :data:`TRACE_LEN` bytes is a trace id; any other
    trailing length is malformed -- an oversized or truncated trace id
    is refused rather than truncated or padded.
    """
    remaining = cursor.remaining()
    if remaining == 0:
        return ZERO_TRACE
    if remaining != TRACE_LEN:
        raise SerializationError(
            "%d trailing bytes are neither empty nor a %d-byte trace id"
            % (remaining, TRACE_LEN)
        )
    return cursor.take(TRACE_LEN)


class NetMessage:
    """Base class: subclasses define ``TYPE_ID`` and the payload codec."""

    TYPE_ID: int = -1

    def payload_bytes(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: bytes) -> "NetMessage":
        raise NotImplementedError

    def encode(self) -> bytes:
        return encode_frame(self.TYPE_ID, self.payload_bytes())


@dataclass(frozen=True)
class Hello(NetMessage):
    """Client -> broker: bind this connection to an entity name."""

    entity: str
    trace: bytes = ZERO_TRACE

    TYPE_ID = 64

    def payload_bytes(self) -> bytes:
        return pack_str(self.entity) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "Hello":
        cursor = Cursor(payload)
        entity = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(entity=entity, trace=trace)


@dataclass(frozen=True)
class Welcome(NetMessage):
    """Broker -> client: handshake outcome (refusals carry a reason)."""

    ok: bool
    entity: str
    reason: str = ""
    trace: bytes = ZERO_TRACE

    TYPE_ID = 65

    def payload_bytes(self) -> bytes:
        return (
            pack_bool(self.ok)
            + pack_str(self.entity)
            + pack_str(self.reason)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "Welcome":
        cursor = Cursor(payload)
        ok = cursor.read_bool()
        entity = cursor.read_str()
        reason = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(ok=ok, entity=entity, reason=reason, trace=trace)


@dataclass(frozen=True)
class NetDeliver(NetMessage):
    """One routed application frame (client->broker and broker->client).

    ``payload`` is the application's complete wire frame, opaque to the
    broker; ``kind``/``note`` are the accounting labels the in-memory
    router records.
    """

    sender: str
    receiver: str
    kind: str
    note: str
    payload: bytes
    trace: bytes = ZERO_TRACE

    TYPE_ID = 66

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.sender)
            + pack_str(self.receiver)
            + pack_str(self.kind)
            + pack_str(self.note)
            + pack_bytes(self.payload)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "NetDeliver":
        cursor = Cursor(payload)
        sender = cursor.read_str()
        receiver = cursor.read_str()
        kind = cursor.read_str()
        note = cursor.read_str()
        body = cursor.read_bytes()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(
            sender=sender,
            receiver=receiver,
            kind=kind,
            note=note,
            payload=body,
            trace=trace,
        )


@dataclass(frozen=True)
class NetBroadcast(NetMessage):
    """Client -> broker: one multicast, fanned out broker-side."""

    sender: str
    kind: str
    note: str
    payload: bytes
    trace: bytes = ZERO_TRACE

    TYPE_ID = 67

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.sender)
            + pack_str(self.kind)
            + pack_str(self.note)
            + pack_bytes(self.payload)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "NetBroadcast":
        cursor = Cursor(payload)
        sender = cursor.read_str()
        kind = cursor.read_str()
        note = cursor.read_str()
        body = cursor.read_bytes()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(
            sender=sender, kind=kind, note=note, payload=body, trace=trace
        )


@dataclass(frozen=True)
class Ack(NetMessage):
    """Client -> broker: ``count`` pushed deliveries have been processed."""

    count: int
    trace: bytes = ZERO_TRACE

    TYPE_ID = 68

    def payload_bytes(self) -> bytes:
        return pack_u32(self.count) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "Ack":
        cursor = Cursor(payload)
        count = cursor.read_u32()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(count=count, trace=trace)


@dataclass(frozen=True)
class StatsRequest(NetMessage):
    """Client -> broker: report routing/accounting state."""

    include_log: bool = False
    trace: bytes = ZERO_TRACE

    TYPE_ID = 69

    def payload_bytes(self) -> bytes:
        return pack_bool(self.include_log) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "StatsRequest":
        cursor = Cursor(payload)
        include_log = cursor.read_bool()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(include_log=include_log, trace=trace)


@dataclass(frozen=True)
class TrafficRecord:
    """One accounted transmission, as reported in :class:`StatsReply`."""

    sender: str
    receiver: str
    kind: str
    size: int
    note: str = ""

    def to_bytes(self) -> bytes:
        return (
            pack_str(self.sender)
            + pack_str(self.receiver)
            + pack_str(self.kind)
            + pack_u32(self.size)
            + pack_str(self.note)
        )

    @classmethod
    def read_from(cls, cursor: Cursor) -> "TrafficRecord":
        return cls(
            sender=cursor.read_str(),
            receiver=cursor.read_str(),
            kind=cursor.read_str(),
            size=cursor.read_u32(),
            note=cursor.read_str(),
        )


@dataclass(frozen=True)
class StatsReply(NetMessage):
    """Broker -> client: routing state + (optionally) the accounting log.

    * ``pending`` -- deliveries queued broker-side, not yet pushed;
    * ``in_flight`` -- deliveries pushed to clients but not yet acked
      (i.e. not yet *processed* by the receiving endpoint);
    * ``delivered_total`` -- monotonic count of enqueued deliveries, so a
      caller can detect that traffic has genuinely stopped;
    * ``dropped`` -- deliveries discarded to hold broker state bounds;
    * ``log_complete`` -- False when the accounting log was too large to
      fit one frame and only its newest suffix is included;
    * ``counters`` -- named server-role counters (leaf vs relay link
      counts, slow-consumer disconnects, relay hop totals).  A generic
      name/value list so relay and broker stats share one reply shape.
    """

    pending: int
    in_flight: int
    delivered_total: int
    dropped: int = 0
    log_complete: bool = True
    log: Tuple[TrafficRecord, ...] = field(default_factory=tuple)
    counters: Tuple[Tuple[str, int], ...] = field(default_factory=tuple)
    trace: bytes = ZERO_TRACE

    TYPE_ID = 70

    def counter(self, name: str, default: int = 0) -> int:
        """Look up one named counter (missing -> ``default``)."""
        for key, value in self.counters:
            if key == name:
                return value
        return default

    def payload_bytes(self) -> bytes:
        out = (
            pack_u32(self.pending)
            + pack_u32(self.in_flight)
            + pack_u32(self.delivered_total)
            + pack_u32(self.dropped)
            + pack_bool(self.log_complete)
            + pack_u32(len(self.log))
        )
        out += b"".join(record.to_bytes() for record in self.log)
        out += pack_u32(len(self.counters))
        out += b"".join(
            pack_str(name) + pack_u32(value) for name, value in self.counters
        )
        return out + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "StatsReply":
        cursor = Cursor(payload)
        pending = cursor.read_u32()
        in_flight = cursor.read_u32()
        delivered_total = cursor.read_u32()
        dropped = cursor.read_u32()
        log_complete = cursor.read_bool()
        count = cursor.read_u32()
        log = tuple(TrafficRecord.read_from(cursor) for _ in range(count))
        counter_count = cursor.read_u32()
        counters = tuple(
            (cursor.read_str(), cursor.read_u32()) for _ in range(counter_count)
        )
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(
            pending=pending,
            in_flight=in_flight,
            delivered_total=delivered_total,
            dropped=dropped,
            log_complete=log_complete,
            log=log,
            counters=counters,
            trace=trace,
        )


@dataclass(frozen=True)
class Shutdown(NetMessage):
    """Client -> broker: stop serving and close every connection.

    An operator convenience for supervised deployments (the loopback
    examples and tests); an internet-facing broker would gate this behind
    authentication, which the demo runtime does not have.
    """

    trace: bytes = ZERO_TRACE

    TYPE_ID = 71

    def payload_bytes(self) -> bytes:
        return pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "Shutdown":
        cursor = Cursor(payload)
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(trace=trace)


@dataclass(frozen=True)
class RelayHello(NetMessage):
    """Relay -> upstream: bind this connection as a downstream relay link.

    The alternate first frame of a handshake: where an entity sends
    :class:`Hello`, a relay sends this.  ``relay_id`` names the relay in
    the federation tree; upstreams refuse duplicates and any id already
    on their own path (loop refusal, accepting side).
    """

    relay_id: str
    trace: bytes = ZERO_TRACE

    TYPE_ID = 72

    def payload_bytes(self) -> bytes:
        return pack_str(self.relay_id) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayHello":
        cursor = Cursor(payload)
        relay_id = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(relay_id=relay_id, trace=trace)


@dataclass(frozen=True)
class RelayWelcome(NetMessage):
    """Upstream -> relay: relay handshake outcome.

    ``path`` is the accepting node's own relay-id chain from the root
    (the root broker's path is empty, a first-hop relay's is its own id,
    and so on).  The connecting relay refuses the link if its id appears
    in the returned path -- loop refusal, connecting side -- and appends
    itself to form the path it will hand to *its* downstreams.
    """

    ok: bool
    relay_id: str
    path: Tuple[str, ...] = ()
    reason: str = ""
    trace: bytes = ZERO_TRACE

    TYPE_ID = 73

    def payload_bytes(self) -> bytes:
        out = (
            pack_bool(self.ok)
            + pack_str(self.relay_id)
            + pack_u32(len(self.path))
        )
        out += b"".join(pack_str(hop) for hop in self.path)
        return out + pack_str(self.reason) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayWelcome":
        cursor = Cursor(payload)
        ok = cursor.read_bool()
        relay_id = cursor.read_str()
        count = cursor.read_u32()
        if count > MAX_RELAY_PATH:
            raise SerializationError(
                "relay path of %d hops exceeds the %d-hop bound"
                % (count, MAX_RELAY_PATH)
            )
        path = tuple(cursor.read_str() for _ in range(count))
        reason = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(
            ok=ok, relay_id=relay_id, path=path, reason=reason, trace=trace
        )


@dataclass(frozen=True)
class RelayAttach(NetMessage):
    """Relay -> upstream: an entity sent Hello below this subtree.

    Forwarded hop by hop to the root broker, which owns the global name
    table and answers :class:`RelayAttachReply`.  Admission therefore
    stays a single-authority decision exactly as for direct connections:
    a name can be live on at most one connection anywhere in the tree.
    """

    entity: str
    trace: bytes = ZERO_TRACE

    TYPE_ID = 74

    def payload_bytes(self) -> bytes:
        return pack_str(self.entity) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayAttach":
        cursor = Cursor(payload)
        entity = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(entity=entity, trace=trace)


@dataclass(frozen=True)
class RelayAttachReply(NetMessage):
    """Root -> relay: attach verdict, routed back down the asking path."""

    ok: bool
    entity: str
    reason: str = ""
    trace: bytes = ZERO_TRACE

    TYPE_ID = 75

    def payload_bytes(self) -> bytes:
        return (
            pack_bool(self.ok)
            + pack_str(self.entity)
            + pack_str(self.reason)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayAttachReply":
        cursor = Cursor(payload)
        ok = cursor.read_bool()
        entity = cursor.read_str()
        reason = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(ok=ok, entity=entity, reason=reason, trace=trace)


@dataclass(frozen=True)
class RelayDetach(NetMessage):
    """Relay -> upstream: a previously attached entity disconnected.

    Frees the name in the root table and redirects the entity's traffic
    back into its root-side inbox (offline queueing) until it reattaches.
    """

    entity: str
    trace: bytes = ZERO_TRACE

    TYPE_ID = 76

    def payload_bytes(self) -> bytes:
        return pack_str(self.entity) + pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayDetach":
        cursor = Cursor(payload)
        entity = cursor.read_str()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(entity=entity, trace=trace)


@dataclass(frozen=True)
class RelayBroadcast(NetMessage):
    """Upstream -> relay: one multicast travelling down the tree.

    ``seq`` is assigned once by the root broker (monotonically
    increasing, never 0) and carried unchanged to every hop; each relay
    keeps a bounded seen-set of sequence ids and drops duplicates, so a
    replayed or multiply-routed broadcast is delivered at most once per
    subtree.  Strictly a downstream message: a relay receiving it from a
    *downstream* peer treats that as a protocol violation (no downstream
    node can inject traffic into a sibling subtree).
    """

    seq: int
    sender: str
    kind: str
    note: str
    payload: bytes
    trace: bytes = ZERO_TRACE

    TYPE_ID = 77

    def payload_bytes(self) -> bytes:
        return (
            pack_u32(self.seq)
            + pack_str(self.sender)
            + pack_str(self.kind)
            + pack_str(self.note)
            + pack_bytes(self.payload)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayBroadcast":
        cursor = Cursor(payload)
        seq = cursor.read_u32()
        sender = cursor.read_str()
        kind = cursor.read_str()
        note = cursor.read_str()
        body = cursor.read_bytes()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(
            seq=seq,
            sender=sender,
            kind=kind,
            note=note,
            payload=body,
            trace=trace,
        )


@dataclass(frozen=True)
class RelayStatsRequest(NetMessage):
    """Relay -> upstream: a downstream entity asked for broker stats.

    Wraps the entity's plain :class:`StatsRequest` with its name so the
    root can route the reply back down the tree by entity binding.
    """

    entity: str
    include_log: bool = False
    trace: bytes = ZERO_TRACE

    TYPE_ID = 78

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.entity)
            + pack_bool(self.include_log)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayStatsRequest":
        cursor = Cursor(payload)
        entity = cursor.read_str()
        include_log = cursor.read_bool()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(entity=entity, include_log=include_log, trace=trace)


@dataclass(frozen=True)
class RelayStatsReply(NetMessage):
    """Root -> relay: stats for one asking entity, routed back down.

    ``reply`` is a complete :class:`StatsReply` payload; the last-hop
    relay unwraps it and hands the entity a plain ``StatsReply`` frame,
    so clients see identical stats whether attached directly or through
    relays.
    """

    entity: str
    reply: bytes
    trace: bytes = ZERO_TRACE

    TYPE_ID = 79

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.entity)
            + pack_bytes(self.reply)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "RelayStatsReply":
        cursor = Cursor(payload)
        entity = cursor.read_str()
        reply = cursor.read_bytes()
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(entity=entity, reply=reply, trace=trace)


@dataclass(frozen=True)
class MetricsRequest(NetMessage):
    """Client -> server: report a point-in-time metrics snapshot.

    A broker answers with its root-aggregated subtree; a relay (on its
    monitor port, same first-frame convention as ``StatsRequest``)
    answers with its own subtree aggregate.  Purely observational -- a
    server with no metrics enabled still answers with an empty
    snapshot, so probes never need to know the server's configuration.
    """

    trace: bytes = ZERO_TRACE

    TYPE_ID = 80

    def payload_bytes(self) -> bytes:
        return pack_trace(self.trace)

    @classmethod
    def from_payload(cls, payload: bytes) -> "MetricsRequest":
        cursor = Cursor(payload)
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(trace=trace)


@dataclass(frozen=True)
class MetricsReport(NetMessage):
    """A metrics snapshot on the move.

    ``source`` names the producing node (entity name or relay id);
    ``snapshot`` is canonical :func:`repro.obs.metrics.snapshot_to_json`
    bytes, size-capped at decode and re-validated by
    ``snapshot_from_json`` before it enters any aggregate.  Travels in
    both directions: a relay *pushes* its subtree report upstream every
    ``--metrics-interval`` seconds, and servers send it as the reply to
    :class:`MetricsRequest`.  Telemetry only -- never payload bytes.
    """

    source: str
    snapshot: bytes
    trace: bytes = ZERO_TRACE

    TYPE_ID = 81

    def payload_bytes(self) -> bytes:
        if len(self.snapshot) > MAX_METRICS_SNAPSHOT:
            raise SerializationError(
                "metrics snapshot of %d bytes exceeds the %d-byte cap"
                % (len(self.snapshot), MAX_METRICS_SNAPSHOT)
            )
        return (
            pack_str(self.source)
            + pack_bytes(self.snapshot)
            + pack_trace(self.trace)
        )

    @classmethod
    def from_payload(cls, payload: bytes) -> "MetricsReport":
        cursor = Cursor(payload)
        source = cursor.read_str()
        snapshot = cursor.read_bytes()
        if len(snapshot) > MAX_METRICS_SNAPSHOT:
            raise SerializationError(
                "metrics snapshot of %d bytes exceeds the %d-byte cap"
                % (len(snapshot), MAX_METRICS_SNAPSHOT)
            )
        trace = read_trace(cursor)
        cursor.expect_end()
        return cls(source=source, snapshot=snapshot, trace=trace)


NET_MESSAGE_TYPES: Dict[int, Type[NetMessage]] = {
    cls.TYPE_ID: cls
    for cls in (
        Hello,
        Welcome,
        NetDeliver,
        NetBroadcast,
        Ack,
        StatsRequest,
        StatsReply,
        Shutdown,
        RelayHello,
        RelayWelcome,
        RelayAttach,
        RelayAttachReply,
        RelayDetach,
        RelayBroadcast,
        RelayStatsRequest,
        RelayStatsReply,
        MetricsRequest,
        MetricsReport,
    )
}


def decode_net_payload(type_id: int, payload: bytes) -> NetMessage:
    """Decode an already-split frame (the stream layer's output)."""
    cls = NET_MESSAGE_TYPES.get(type_id)
    if cls is None:
        raise SerializationError("unknown net frame type %d" % type_id)
    return cls.from_payload(payload)


def decode_net_message(frame: bytes) -> NetMessage:
    """Decode one complete net frame from bytes."""
    type_id, payload = decode_frame(frame)
    return decode_net_payload(type_id, payload)
