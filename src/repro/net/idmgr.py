"""``python -m repro.net.idmgr``: the identity manager as a server process.

Builds the IdP/IdMgr pair from the scenario (deterministic in its seed),
publishes the parameter bundle (public signature key, pseudonyms, signed
assertions) for the other processes, then serves ``TokenRequest`` frames
from the broker until stopped.
"""

from __future__ import annotations

import argparse

from repro.net._cli import add_common_arguments, install_stop_signals, parse_endpoint
from repro.net.bootstrap import build_identity_stack, load_scenario, write_bundle
from repro.net.runtime import pump_forever
from repro.net.transport import TcpTransport
from repro.obs.metrics import get_registry
from repro.obs.profile import profile_window, recorder_for, set_profiler
from repro.obs.trace import set_span_writer, writer_for
from repro.store import IdMgrPersistence
from repro.system.service import IdentityManagerEndpoint

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.net.idmgr",
        description="Serve identity-token issuance over the broker.",
    )
    add_common_arguments(parser)
    parser.add_argument("--profile-dir", default=None,
                        help="record cProfile aggregates for the serving "
                             "loop into profile_<name>.json under this "
                             "directory (readable by python -m "
                             "repro.obs.profile); function names only, "
                             "never argument values")
    parser.add_argument("--ocbe-workers", type=int, default=None, metavar="N",
                        help="run token commitments on a pool of N worker "
                             "processes (issuance order is preserved; a "
                             "crashed pool degrades to serial); omit to "
                             "follow the scenario's 'ocbe_workers' field "
                             "(default serial)")
    args = parser.parse_args(argv)
    if args.ocbe_workers is not None and args.ocbe_workers < 0:
        parser.error("--ocbe-workers must be >= 0")

    scenario = load_scenario(args.scenario)
    idp, idmgr, nyms, assertions = build_identity_stack(scenario)
    persistence = None
    if args.data_dir:
        # Recovery restores the signing key, pseudonym counter and the
        # issued-token registry before the (re-derived) bundle is
        # published, so the public key on disk and in the bundle agree.
        persistence = IdMgrPersistence.attach(args.data_dir, idmgr)
        if persistence.recovered:
            print("recovered idmgr state: %d issued tokens, nym counter %d"
                  % (len(idmgr.issued), idmgr.nym_counter), flush=True)
    write_bundle(args.bundle, scenario, idmgr, nyms, assertions)
    print("bundle written to %s (%d users)" % (args.bundle, len(nyms)), flush=True)

    stop = install_stop_signals()
    host, port = parse_endpoint(args.broker)
    obs = writer_for(args.data_dir, scenario["idmgr"])
    # Install the process-global stage writer/profiler (restored below)
    # so wal.* spans and the serve profile window land in our files.
    previous_writer = set_span_writer(obs)
    profiler = recorder_for(args.profile_dir, scenario["idmgr"])
    previous_profiler = set_profiler(profiler)
    endpoint = None
    try:
        with TcpTransport(host, port) as transport:
            workers = args.ocbe_workers
            if workers is None:
                workers = int(scenario.get("ocbe_workers", 0))
            endpoint = IdentityManagerEndpoint(
                idmgr, transport, name=scenario["idmgr"],
                persistence=persistence, ocbe_workers=workers,
            )
            endpoint.span_writer = obs
            if profiler is not None:
                from repro.groups._native import BACKEND

                profiler.annotate(math_backend=BACKEND, ocbe_workers=workers)
            print("idmgr serving as %r on %s" % (endpoint.name, args.broker),
                  flush=True)
            errors = []
            with profile_window("serve"):
                pump_forever([endpoint], stop, errors=errors)
            for error in errors:
                print("absorbed: %s" % error, flush=True)
            if endpoint.rejections:
                print("rejected %d token requests" % len(endpoint.rejections),
                      flush=True)
    finally:
        if endpoint is not None:
            endpoint.close()
        set_span_writer(previous_writer)
        set_profiler(previous_profiler)
        if profiler is not None:
            profiler.write()
        if obs is not None:
            obs.metrics(get_registry().snapshot())
            obs.close()
        if persistence is not None:
            persistence.close()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
