"""Process/task supervision for the networked deployment.

Pieces, smallest to largest:

* :func:`pump_until` / :func:`pump_forever` -- the per-process event
  loop: repeatedly pump a set of endpoints against their transport,
  either until a predicate holds or until a stop event.  A hostile frame
  that makes one pump raise is recorded and absorbed; a server process
  must outlive malformed input.
* :func:`wait_until_quiet` -- the networked analogue of
  :func:`repro.system.service.run_until_idle`: polls the broker's stats
  until nothing is queued (``pending``), nothing is unprocessed at any
  client (``in_flight``), and the delivery counter has stopped moving
  across a settle interval.  Lazy acks (see
  :mod:`repro.net.transport`) make this sound: an endpoint that is
  still chewing on a batch holds ``in_flight`` above zero.
* :class:`BrokerThread` -- an in-process broker on a background asyncio
  thread, for tests and benchmarks that want real sockets without
  subprocesses.
* :class:`ProcessSupervisor` -- spawns the ``python -m repro.net.*``
  entity servers as OS processes and shuts them down gracefully
  (terminate, wait, kill stragglers).
"""

from __future__ import annotations

import asyncio
import os
import shutil
import subprocess
import sys
import tempfile
import threading
import time
from typing import Callable, List, Optional, Sequence, Tuple

from repro.errors import NetworkError, ReproError, SystemError_
from repro.net.broker import BrokerServer

__all__ = [
    "BrokerThread",
    "ProcessSupervisor",
    "RelayThread",
    "StopRequested",
    "pump_forever",
    "pump_until",
    "wait_for_file",
    "wait_until_quiet",
]

#: Idle sleep between empty pump rounds (keeps loopback latency low
#: without spinning a core).
PUMP_IDLE_SLEEP = 0.005


class StopRequested(SystemError_):
    """A pump loop was interrupted by its stop event (SIGTERM/SIGINT)."""


def pump_until(
    endpoints: Sequence,
    predicate: Callable[[], bool],
    *,
    timeout: float = 30.0,
    idle_sleep: float = PUMP_IDLE_SLEEP,
    errors: Optional[List[ReproError]] = None,
    stop: Optional[threading.Event] = None,
) -> int:
    """Pump ``endpoints`` until ``predicate()`` holds; returns frames handled.

    Raises :class:`SystemError_` on timeout and :class:`StopRequested` if
    ``stop`` is set first (how the entity servers honour SIGTERM while in
    a lifecycle phase).  Endpoint errors (hostile frames) are appended to
    ``errors`` (if given) and pumping continues: the batch-requeue in
    ``pump`` already preserved the well-formed remainder.
    """
    deadline = time.monotonic() + timeout
    total = 0
    while True:
        progressed = 0
        for endpoint in endpoints:
            try:
                progressed += endpoint.pump()
            except ReproError as exc:
                if errors is not None:
                    errors.append(exc)
        total += progressed
        if predicate():
            return total
        if stop is not None and stop.is_set():
            raise StopRequested(
                "stopped before the condition held (%d frames handled)" % total
            )
        if time.monotonic() > deadline:
            raise SystemError_(
                "condition not reached within %.1fs (%d frames handled)"
                % (timeout, total)
            )
        if progressed == 0:
            time.sleep(idle_sleep)


def pump_forever(
    endpoints: Sequence,
    stop: threading.Event,
    *,
    idle_sleep: float = PUMP_IDLE_SLEEP,
    errors: Optional[List[ReproError]] = None,
) -> None:
    """Serve until ``stop`` is set (the long-running entity-server loop)."""
    while not stop.is_set():
        progressed = 0
        for endpoint in endpoints:
            try:
                progressed += endpoint.pump()
            except ReproError as exc:
                if errors is not None:
                    errors.append(exc)
        if progressed == 0:
            stop.wait(idle_sleep)


def wait_until_quiet(
    transport,
    endpoints: Sequence = (),
    *,
    settle: float = 0.1,
    timeout: float = 30.0,
    errors: Optional[List[ReproError]] = None,
):
    """Wait for broker quiescence; returns the final stats.

    Quiet means: broker ``pending == 0``, client ``in_flight == 0``, and
    ``delivered_total`` unchanged across one ``settle`` interval.  Local
    ``endpoints`` are pumped while waiting, so a caller that is itself an
    entity (e.g. the publisher answering registrations) keeps serving --
    with the same absorb-hostile-frames contract as the other pump loops
    (a garbage frame arriving mid-wait must not kill a server process).
    """
    deadline = time.monotonic() + timeout
    last = None
    while time.monotonic() <= deadline:
        for endpoint in endpoints:
            try:
                endpoint.pump()
            except ReproError as exc:
                if errors is not None:
                    errors.append(exc)
        # Between pump rounds nothing polled is mid-processing locally, so
        # acking everything owed is sound -- and necessary, or an idle
        # entity would hold the broker's in_flight count up forever.
        if hasattr(transport, "flush_acks"):
            transport.flush_acks()
        stats = transport.stats()
        quiet_now = (
            stats.pending == 0
            and stats.in_flight == 0
            and transport.pending() == 0
        )
        if (
            quiet_now
            and last is not None
            and last.delivered_total == stats.delivered_total
        ):
            return stats
        last = stats if quiet_now else None
        time.sleep(settle if quiet_now else PUMP_IDLE_SLEEP)
    raise SystemError_("broker did not quiesce within %.1fs" % timeout)


def wait_for_file(path: str, timeout: float = 30.0, poll: float = 0.05) -> str:
    """Block until ``path`` exists and is non-empty; returns its text."""
    deadline = time.monotonic() + timeout
    while time.monotonic() <= deadline:
        if os.path.exists(path):
            with open(path, "r", encoding="utf-8") as handle:
                content = handle.read()
            if content:
                return content
        time.sleep(poll)
    raise SystemError_("file %r did not appear within %.1fs" % (path, timeout))


class BrokerThread:
    """A :class:`BrokerServer` on a dedicated asyncio thread.

    Gives tests/benchmarks real TCP sockets without subprocess overhead::

        with BrokerThread() as broker:
            transport = TcpTransport(broker.host, broker.port)
    """

    def __init__(self, host: str = "127.0.0.1", port: int = 0, **broker_kw):
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="BrokerThread", daemon=True
        )
        self._thread.start()
        self.broker = BrokerServer(host, port, **broker_kw)
        future = asyncio.run_coroutine_threadsafe(self.broker.start(), self._loop)
        try:
            self.host, self.port = future.result(10.0)
        except Exception:
            self._stop_loop()
            raise

    @property
    def endpoint(self) -> Tuple[str, int]:
        return self.host, self.port

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10.0)

    def stop(self) -> None:
        try:
            asyncio.run_coroutine_threadsafe(
                self.broker.aclose(), self._loop
            ).result(10.0)
        finally:
            self._stop_loop()

    def __enter__(self) -> "BrokerThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class RelayThread:
    """A :class:`~repro.net.relay.RelayServer` on a dedicated asyncio thread.

    The relay-tier counterpart of :class:`BrokerThread`, for tests that
    chain hops in-process::

        with BrokerThread() as broker:
            with RelayThread("r1", broker.host, broker.port) as relay:
                transport = TcpTransport(broker.host, broker.port)
                transport.set_attach_point("sub-0", relay.host, relay.port)
    """

    def __init__(
        self,
        relay_id: str,
        upstream_host: str,
        upstream_port: int,
        host: str = "127.0.0.1",
        port: int = 0,
        **relay_kw,
    ):
        from repro.net.relay import RelayServer

        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever, name="RelayThread-%s" % relay_id,
            daemon=True,
        )
        self._thread.start()
        self.relay = RelayServer(
            relay_id, upstream_host, upstream_port, host, port, **relay_kw
        )
        future = asyncio.run_coroutine_threadsafe(self.relay.start(), self._loop)
        try:
            self.host, self.port = future.result(10.0)
        except Exception:
            self._stop_loop()
            raise

    @property
    def endpoint(self) -> Tuple[str, int]:
        return self.host, self.port

    def _stop_loop(self) -> None:
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(10.0)

    def stop(self) -> None:
        try:
            asyncio.run_coroutine_threadsafe(
                self.relay.aclose(), self._loop
            ).result(10.0)
        finally:
            self._stop_loop()

    def __enter__(self) -> "RelayThread":
        return self

    def __exit__(self, *exc_info) -> None:
        self.stop()


class ProcessSupervisor:
    """Spawn and gracefully stop the networked entity processes.

    Child output goes to per-process log files (not pipes: a pipe nobody
    drains deadlocks a chatty child once the ~64 KiB buffer fills), read
    back for diagnostics on failure.
    """

    def __init__(self):
        self.processes: List[Tuple[str, subprocess.Popen]] = []
        self._logdir = tempfile.mkdtemp(prefix="repro-supervisor-")
        self._logs: List[Tuple[str, "io.TextIOWrapper"]] = []

    def spawn_module(
        self, module: str, *args: str, name: Optional[str] = None, **popen_kw
    ) -> subprocess.Popen:
        """Launch ``python -m <module> <args...>`` as a child process."""
        name = name or module
        log_path = os.path.join(
            self._logdir, "%02d-%s.log" % (len(self.processes), name)
        )
        log = open(log_path, "w+", encoding="utf-8")
        popen_kw.setdefault("stdout", log)
        popen_kw.setdefault("stderr", subprocess.STDOUT)
        env = popen_kw.pop("env", None) or dict(os.environ)
        process = subprocess.Popen(
            [sys.executable, "-m", module, *args], env=env, **popen_kw
        )
        self.processes.append((name, process))
        self._logs.append((name, log))
        return process

    def output(self, name: str, tail: int = 4000) -> str:
        """The (current) tail of a child's combined stdout+stderr."""
        for log_name, log in self._logs:
            if log_name == name:
                log.flush()
                with open(log.name, "r", encoding="utf-8") as handle:
                    return handle.read()[-tail:]
        raise SystemError_("no supervised process named %r" % name)

    def assert_alive(self) -> None:
        """Fail loudly if any supervised process died already."""
        for name, process in self.processes:
            code = process.poll()
            if code is not None and code != 0:
                raise NetworkError(
                    "process %s exited with %d:\n%s"
                    % (name, code, self.output(name))
                )

    def wait(self, name: str, timeout: float = 120.0) -> int:
        """Wait for the named process to exit; returns its code."""
        for pname, process in self.processes:
            if pname == name:
                return process.wait(timeout)
        raise SystemError_("no supervised process named %r" % name)

    def shutdown(self, timeout: float = 5.0) -> None:
        """Terminate every live child; kill whatever ignores it."""
        for _, process in self.processes:
            if process.poll() is None:
                process.terminate()
        deadline = time.monotonic() + timeout
        for _, process in self.processes:
            if process.poll() is None:
                try:
                    process.wait(max(0.1, deadline - time.monotonic()))
                except subprocess.TimeoutExpired:
                    process.kill()
                    process.wait(5.0)
        for _, log in self._logs:
            log.close()
        shutil.rmtree(self._logdir, ignore_errors=True)

    def __enter__(self) -> "ProcessSupervisor":
        return self

    def __exit__(self, *exc_info) -> None:
        self.shutdown()
