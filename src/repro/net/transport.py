"""``TcpTransport``: the socket backend for the ``Transport`` protocol.

The session/endpoint layer (:mod:`repro.system.service`) is synchronous
and poll-driven; the network is asyncio.  This class bridges the two: it
owns a background event-loop thread, one broker connection per locally
registered entity, and a local FIFO inbox per entity that the reader
tasks fill as ``NetDeliver`` frames arrive.  The five ``Transport``
methods then behave exactly like ``InMemoryTransport``'s, so
``DisseminationService`` / ``SubscriberClient`` /
``IdentityManagerEndpoint`` run unchanged over real sockets.

Delivery acknowledgement (for broker-side quiescence detection) is
*lazy*: deliveries handed out by ``poll`` are acked at the **next** call
into the transport for that entity, i.e. only after the endpoint's pump
has processed the batch and sent whatever replies it produced.  TCP's
per-connection ordering then guarantees the broker sees the replies
before the ack, so ``pending == in_flight == 0`` at the broker really
means nothing is queued, in transit, or being processed anywhere.

Accounting stays broker-side (it is the audit log of what the network
actually carried); :meth:`stats` fetches it and :meth:`snapshot` replays
it into an ``InMemoryTransport`` so tests and benchmarks can query
``bytes_between`` etc. identically for both backends.
"""

from __future__ import annotations

import asyncio
import concurrent.futures
import queue
import threading
import time
import warnings
from collections import deque
from typing import Deque, Dict, List, Optional, Tuple

from repro.errors import NetworkError, SerializationError
from repro.net.protocol import (
    ENVELOPE_OVERHEAD,
    Ack,
    Hello,
    MetricsReport,
    MetricsRequest,
    NetBroadcast,
    NetDeliver,
    NetMessage,
    Shutdown,
    StatsReply,
    StatsRequest,
    Welcome,
    decode_net_payload,
)
from repro.net.stream import FrameStream, open_frame_stream
from repro.obs.metrics import get_registry, snapshot_from_json
from repro.obs.trace import current_trace
from repro.system.transport import Delivery, InMemoryTransport
from repro.wire.codec import DEFAULT_MAX_FRAME_PAYLOAD

__all__ = ["TcpTransport"]


class _EntityConn:
    """One entity's connection: stream, local inbox, ack bookkeeping."""

    __slots__ = ("entity", "stream", "inbox", "owed_acks", "ack_exempt",
                 "reader", "stats_q", "metrics_q", "alive", "error")

    def __init__(self, entity: str, stream: FrameStream):
        self.entity = entity
        self.stream = stream
        #: Arrived-but-unpolled deliveries.  Appended from the loop thread,
        #: popped from the caller thread (deque ops are atomic).
        self.inbox: Deque[Delivery] = deque()
        #: Deliveries handed out by poll() but not yet acked to the broker.
        self.owed_acks = 0
        #: Inbox-front deliveries carried over from a dead predecessor
        #: connection: the broker already wrote their in_flight off at
        #: disconnect, so acking them against this connection would
        #: over-ack and fake quiescence while real pushes are unprocessed.
        self.ack_exempt = 0
        self.reader: Optional[asyncio.Task] = None
        self.stats_q: "queue.Queue[StatsReply]" = queue.Queue()
        self.metrics_q: "queue.Queue[MetricsReport]" = queue.Queue()
        self.alive = True
        self.error: Optional[str] = None


class TcpTransport:
    """A synchronous ``Transport`` speaking to a :class:`BrokerServer`."""

    def __init__(
        self,
        host: str,
        port: int,
        *,
        max_frame: int = DEFAULT_MAX_FRAME_PAYLOAD,
        timeout: float = 10.0,
    ):
        self.host = host
        self.port = port
        self.max_frame = max_frame
        self.timeout = timeout
        self._conns: Dict[str, _EntityConn] = {}
        #: Per-entity attach point overriding the root endpoint: entities
        #: assigned to a relay of the federation tree connect there
        #: instead (same Hello/Welcome handshake; the relay forwards the
        #: admission decision to the root).
        self._attach: Dict[str, Tuple[str, int]] = {}
        self._entity_locks: Dict[str, threading.Lock] = {}
        self._reconnect_at: Dict[str, float] = {}
        self._lock = threading.Lock()
        self._closed = False
        self._loop = asyncio.new_event_loop()
        self._thread = threading.Thread(
            target=self._loop.run_forever,
            name="TcpTransport(%s:%d)" % (host, port),
            daemon=True,
        )
        self._thread.start()

    # -- plumbing ------------------------------------------------------------

    def _run(self, coro):
        """Run a coroutine on the loop thread, synchronously."""
        if self._closed:
            coro.close()
            raise NetworkError("transport is closed")
        future = asyncio.run_coroutine_threadsafe(coro, self._loop)
        try:
            return future.result(self.timeout)
        except concurrent.futures.TimeoutError as exc:
            # (An alias of the builtin TimeoutError only from 3.11 on --
            # catch the concurrent.futures name, which is correct on every
            # supported version.)
            future.cancel()
            raise NetworkError(
                "broker %s:%d did not respond within %.1fs"
                % (self.host, self.port, self.timeout)
            ) from exc

    async def _send(self, conn: _EntityConn, message: NetMessage) -> None:
        if not conn.alive:
            raise NetworkError(
                "connection for %r is down: %s" % (conn.entity, conn.error)
            )
        await conn.stream.send(message.TYPE_ID, message.payload_bytes())

    async def _connect(self, entity: str) -> _EntityConn:
        host, port = self._attach.get(entity, (self.host, self.port))
        # Headroom mirrors the broker's: envelopes may exceed max_frame by
        # their routing fields; routed payloads may not exceed it at all.
        stream = await open_frame_stream(
            host, port, self.max_frame + ENVELOPE_OVERHEAD
        )
        try:
            await stream.send(Hello.TYPE_ID, Hello(entity=entity).payload_bytes())
            frame = await stream.recv()
            if frame is None:
                raise NetworkError("broker closed the connection during handshake")
            welcome = decode_net_payload(*frame)
            if not isinstance(welcome, Welcome):
                raise NetworkError(
                    "expected Welcome, got %s" % type(welcome).__name__
                )
            if not welcome.ok:
                raise NetworkError(
                    "broker refused entity %r: %s" % (entity, welcome.reason)
                )
        except Exception as exc:
            # Never leak the half-open socket, whatever failed; and keep
            # register()'s contract of raising NetworkError only.
            await stream.aclose()
            if isinstance(exc, NetworkError):
                raise
            raise NetworkError("broker handshake failed: %s" % exc) from exc
        conn = _EntityConn(entity, stream)
        conn.reader = asyncio.get_running_loop().create_task(self._read_loop(conn))
        get_registry().inc("net.transport.connect")
        return conn

    async def _read_loop(self, conn: _EntityConn) -> None:
        try:
            while True:
                frame = await conn.stream.recv()
                if frame is None:
                    conn.error = "broker closed the connection"
                    return
                message = decode_net_payload(*frame)
                if isinstance(message, NetDeliver):
                    conn.inbox.append(
                        Delivery(
                            sender=message.sender,
                            receiver=message.receiver,
                            kind=message.kind,
                            payload=message.payload,
                            note=message.note,
                            trace=message.trace if any(message.trace) else b"",
                        )
                    )
                elif isinstance(message, StatsReply):
                    conn.stats_q.put(message)
                elif isinstance(message, MetricsReport):
                    conn.metrics_q.put(message)
                else:
                    conn.error = "unexpected %s from broker" % type(message).__name__
                    return
        except (SerializationError, NetworkError, ConnectionError, OSError) as exc:
            conn.error = str(exc)
        finally:
            conn.alive = False
            # Close our half too, or the broker would keep the name bound
            # and keep pushing frames into a socket nobody reads.
            await conn.stream.aclose()

    def _conn(self, entity: str) -> _EntityConn:
        conn = self._conns.get(entity)
        if conn is None:
            raise NetworkError("entity %r is not registered on this transport"
                               % entity)
        return conn

    def _flush_acks(self, conn: _EntityConn) -> None:
        """Ack previously polled (now processed) deliveries.

        Only called from points where the batch a previous ``poll`` handed
        out is known to be fully processed -- the next ``poll`` for the
        entity, or an explicit :meth:`flush_acks` between pump rounds --
        so the ack always trails the replies the processing produced, and
        the broker's ``in_flight`` stays above zero for as long as any
        endpoint is still chewing on a delivery.
        """
        if conn.owed_acks > 0 and conn.alive:
            owed, conn.owed_acks = conn.owed_acks, 0
            self._run(self._send(conn, Ack(count=owed)))

    def flush_acks(self) -> None:
        """Ack processed deliveries for every local entity.

        Callers invoke this between pump rounds (when nothing polled is
        still in processing); :func:`repro.net.runtime.wait_until_quiet`
        does it on every probe so idle entities do not hold the broker's
        ``in_flight`` count up forever.
        """
        for conn in list(self._conns.values()):
            self._flush_acks(conn)

    def _coerce_payload(self, payload) -> bytes:
        """Bytes-only like the in-memory router, plus the frame-size cap
        (checked here, before any socket write, for a precise error)."""
        payload = InMemoryTransport._coerce_payload(payload)
        if len(payload) > self.max_frame:
            raise SerializationError(
                "payload of %d bytes exceeds the transport's %d-byte frame cap"
                % (len(payload), self.max_frame)
            )
        return payload

    # -- the Transport protocol ----------------------------------------------

    def register(self, entity: str) -> None:
        """Connect ``entity`` to the broker (idempotent).

        A dead connection (broker restart, TCP blip, hostile-frame drop)
        is replaced by a fresh one, draining the broker-held backlog the
        way the broker's reconnect semantics promise; locally arrived but
        unpolled deliveries carry over.  Raises :class:`NetworkError` if
        the broker refuses the name -- e.g. a live connection elsewhere
        already holds it (spoof-on-connect).
        """
        # One lock per entity: concurrent registers of the same name
        # serialize (the loser finds the winner's connection and returns)
        # while the global lock is never held across the network
        # round-trip, so other entities' traffic cannot stall on it.
        with self._lock:
            entity_lock = self._entity_locks.setdefault(entity, threading.Lock())
        with entity_lock:
            with self._lock:
                existing = self._conns.get(entity)
            if existing is not None and existing.alive:
                return
            # The dead entry stays in _conns until the replacement exists:
            # a failed reconnect must leave the entity registered (so the
            # next poll retries) and its unpolled inbox intact.
            conn = self._run(self._connect(entity))
            if existing is not None:
                # Frames that reached the old connection but were never
                # polled are still valid deliveries, and they predate
                # whatever backlog the new connection is already pulling
                # in -- so they go to the *front*.  The acks they owed
                # died with the broker-side connection state, so they must
                # NOT be acked against the new one (ack_exempt).
                conn.inbox.extendleft(reversed(existing.inbox))
                conn.ack_exempt = existing.ack_exempt + len(existing.inbox)
            with self._lock:
                self._conns[entity] = conn

    def deliver(
        self, sender: str, receiver: str, kind: str, payload: bytes, note: str = ""
    ) -> None:
        """Send one frame to ``receiver`` via the broker."""
        payload = self._coerce_payload(payload)
        self.register(sender)
        self._run(
            self._send(
                self._conn(sender),
                NetDeliver(
                    sender=sender, receiver=receiver, kind=kind,
                    note=note, payload=payload, trace=current_trace(),
                ),
            )
        )

    def broadcast(self, sender: str, kind: str, payload: bytes, note: str = "") -> None:
        """One multicast: fan-out and single-transmission accounting happen
        broker-side."""
        payload = self._coerce_payload(payload)
        self.register(sender)
        self._run(
            self._send(
                self._conn(sender),
                NetBroadcast(sender=sender, kind=kind, note=note,
                             payload=payload, trace=current_trace()),
            )
        )

    def _reconnect_if_due(self, entity: str) -> Optional[_EntityConn]:
        """Try to replace a dead connection, at most once a second.

        A receive-only endpoint (a subscriber waiting for broadcasts)
        never calls the send path where register() would otherwise repair
        a dropped connection, so poll() must drive recovery itself.
        """
        now = time.monotonic()
        with self._lock:
            if now < self._reconnect_at.get(entity, 0.0):
                return None
            self._reconnect_at[entity] = now + 1.0
        try:
            self.register(entity)
        except NetworkError:
            return None  # broker still away; the backoff stands
        get_registry().inc("net.transport.reconnect")
        with self._lock:
            self._reconnect_at.pop(entity, None)
            return self._conns.get(entity)

    def poll(self, entity: str, limit: Optional[int] = None) -> List[Delivery]:
        """Drain deliveries that have *arrived* for ``entity`` (FIFO).

        Non-blocking, like the in-memory router: frames still in the
        broker or on the wire are simply not here yet.  A dead connection
        is (rate-limitedly) reconnected so the broker-held backlog flows
        again.  Also flushes the ack for the previous batch (see the
        module docstring).
        """
        conn = self._conns.get(entity)
        if conn is None:
            return []
        if not conn.alive:
            conn = self._reconnect_if_due(entity) or conn
        self._flush_acks(conn)
        drained: List[Delivery] = []
        while conn.inbox and (limit is None or len(drained) < limit):
            drained.append(conn.inbox.popleft())
        # Carried-over deliveries sit at the inbox front, so they are
        # exactly the first `ack_exempt` items drained.
        exempt = min(len(drained), conn.ack_exempt)
        conn.ack_exempt -= exempt
        conn.owed_acks += len(drained) - exempt
        return drained

    def requeue(self, entity: str, deliveries: List[Delivery]) -> None:
        """Push polled-but-unprocessed deliveries back to the inbox front.

        They will be handed out (and eventually acked) again, so the ack
        debt they carried is cancelled here; any shortfall (items that
        were ack-exempt when polled) returns to the exemption pool so the
        re-poll cannot over-ack.
        """
        conn = self._conn(entity)
        conn.inbox.extendleft(reversed(deliveries))
        from_owed = min(len(deliveries), conn.owed_acks)
        conn.owed_acks -= from_owed
        conn.ack_exempt += len(deliveries) - from_owed

    # -- beyond the protocol: introspection and control ----------------------

    def set_attach_point(self, entity: str, host: str, port: int) -> None:
        """Route ``entity``'s connection to a relay instead of the root.

        Must be called before the entity's first :meth:`register` (a
        live connection is not migrated -- reconnects after a disconnect
        do use the new endpoint).  The entity's behaviour is otherwise
        identical: admission, routing and accounting stay root decisions,
        the relay tier only fans bytes out.
        """
        with self._lock:
            self._attach[entity] = (host, port)

    def attach_point(self, entity: str) -> Tuple[str, int]:
        """Where ``entity`` connects: its relay, or the root endpoint."""
        return self._attach.get(entity, (self.host, self.port))

    def disconnect(self, entity: str) -> None:
        """Close one entity's broker connection and forget it locally.

        This is the load engine's "flap" kill step: the broker observes a
        clean disconnect, frees the name for a future Hello and keeps
        queueing broadcasts into the entity's (bounded) broker-side
        inbox; a later :meth:`register` reconnects and drains that
        backlog.  Unpolled local deliveries and owed acks are dropped
        with the connection -- exactly the state a killed process loses.
        No-op for an unregistered name.
        """
        with self._lock:
            entity_lock = self._entity_locks.setdefault(entity, threading.Lock())
        with entity_lock:
            with self._lock:
                conn = self._conns.pop(entity, None)
                self._reconnect_at.pop(entity, None)
            if conn is None:
                return
            if conn.reader is not None:
                self._loop.call_soon_threadsafe(conn.reader.cancel)
            try:
                asyncio.run_coroutine_threadsafe(
                    conn.stream.aclose(), self._loop
                ).result(self.timeout)
            except concurrent.futures.TimeoutError:
                pass  # best-effort: the reader's teardown also closes it

    def entities(self) -> List[str]:
        """Locally registered entity names."""
        return sorted(self._conns)

    def pending(self, entity: Optional[str] = None) -> int:
        """Locally arrived-but-unpolled deliveries (not broker state)."""
        if entity is not None:
            conn = self._conns.get(entity)
            return len(conn.inbox) if conn else 0
        return sum(len(conn.inbox) for conn in self._conns.values())

    def connection_error(self, entity: str) -> Optional[str]:
        """Why ``entity``'s connection died, or None while healthy."""
        return self._conn(entity).error

    def stats(self, include_log: bool = False, via: Optional[str] = None) -> StatsReply:
        """Fetch the broker's routing/accounting state.

        ``via`` names the entity whose connection carries the request
        (default: any registered entity).  A reply whose accounting log
        was truncated to fit one frame (``log_complete=False``) is still
        returned -- the counters are exact either way -- but the
        truncation is surfaced as a :class:`UserWarning` and a
        ``net.stats.truncated`` counter, so byte-level accounting built
        on the log cannot silently pass over an incomplete record.
        """
        names = [via] if via is not None else self.entities()
        if not names:
            raise NetworkError("stats needs at least one registered entity")
        conn = self._conn(names[0])
        while not conn.stats_q.empty():  # drop stale replies
            conn.stats_q.get_nowait()
        self._run(self._send(conn, StatsRequest(include_log=include_log)))
        try:
            reply = conn.stats_q.get(timeout=self.timeout)
        except queue.Empty as exc:
            raise NetworkError("broker stats request timed out") from exc
        if not reply.log_complete:
            get_registry().inc("net.stats.truncated")
            warnings.warn(
                "broker accounting log was truncated to fit one frame; "
                "log-derived byte accounting is incomplete (counters are "
                "still exact)",
                UserWarning,
                stacklevel=2,
            )
        return reply

    def metrics(self, via: Optional[str] = None) -> dict:
        """Fetch the broker's metrics snapshot (root subtree aggregate).

        Mirrors :meth:`stats`: ``via`` names the entity whose connection
        carries the ``MetricsRequest``; the broker answers with one
        ``MetricsReport`` whose snapshot merges its own registry with
        the latest report pushed by each attached relay subtree.
        """
        names = [via] if via is not None else self.entities()
        if not names:
            raise NetworkError("metrics needs at least one registered entity")
        conn = self._conn(names[0])
        while not conn.metrics_q.empty():  # drop stale replies
            conn.metrics_q.get_nowait()
        self._run(self._send(conn, MetricsRequest(trace=current_trace())))
        try:
            report = conn.metrics_q.get(timeout=self.timeout)
        except queue.Empty as exc:
            raise NetworkError("broker metrics request timed out") from exc
        return snapshot_from_json(report.snapshot)

    def snapshot(self) -> InMemoryTransport:
        """The broker's accounting log, replayed into an in-memory router.

        Gives the network backend the exact query surface
        (``bytes_between``, ``messages``, ``kinds_count`` ...) the
        in-process tests and benchmarks already use.
        """
        stats = self.stats(include_log=True)
        if not stats.log_complete:
            # A truncated log would silently understate byte counts; an
            # audit surface must fail loudly instead.
            raise NetworkError(
                "broker accounting log exceeds one frame; raise the broker's "
                "--max-frame (or audit incrementally) for logs this long"
            )
        replay = InMemoryTransport()
        for record in stats.log:
            replay.send(
                record.sender, record.receiver, record.kind, record.size,
                note=record.note,
            )
        return replay

    def request_broker_shutdown(self) -> None:
        """Ask the broker to stop (supervised/loopback deployments)."""
        conn = self._conn(self.entities()[0]) if self._conns else None
        if conn is None:
            raise NetworkError("no connection to request shutdown on")
        self._run(self._send(conn, Shutdown()))

    def close(self) -> None:
        """Drop every connection and stop the loop thread."""
        if self._closed:
            return
        with self._lock:
            conns, self._conns = list(self._conns.values()), {}
            for conn in conns:
                try:
                    self._flush_acks(conn)
                except NetworkError:
                    pass
                if conn.reader is not None:
                    self._loop.call_soon_threadsafe(conn.reader.cancel)
                try:
                    asyncio.run_coroutine_threadsafe(
                        conn.stream.aclose(), self._loop
                    ).result(self.timeout)
                except concurrent.futures.TimeoutError:
                    pass  # closing is best-effort; the loop stops below
            self._closed = True
        self._loop.call_soon_threadsafe(self._loop.stop)
        self._thread.join(self.timeout)

    def __enter__(self) -> "TcpTransport":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()
