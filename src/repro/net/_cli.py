"""Shared plumbing for the ``python -m repro.net.*`` entity servers."""

from __future__ import annotations

import argparse
import os
import signal
import threading
from typing import Tuple

from repro.errors import InvalidParameterError

__all__ = [
    "add_common_arguments",
    "install_stop_signals",
    "parse_endpoint",
    "write_port_file",
]


def parse_endpoint(text: str) -> Tuple[str, int]:
    """``"host:port"`` -> ``(host, port)``."""
    host, sep, port = text.rpartition(":")
    if not sep or not port.isdigit():
        raise InvalidParameterError("endpoint must be host:port, got %r" % text)
    return host, int(port)


def write_port_file(path: str, host: str, port: int) -> None:
    """Atomically publish a server's bound endpoint (readers poll for the
    file) -- the ``--port 0``/``--port-file`` contract of both the broker
    and relay CLIs."""
    tmp = path + ".tmp"
    with open(tmp, "w", encoding="utf-8") as handle:
        handle.write("%s:%d\n" % (host, port))
    os.replace(tmp, path)


def add_common_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("--broker", required=True, metavar="HOST:PORT",
                        help="the repro.net.broker endpoint to connect to")
    parser.add_argument("--scenario", required=True,
                        help="scenario JSON (see repro.net.bootstrap)")
    parser.add_argument("--bundle", required=True,
                        help="parameter bundle path (IdMgr writes, others read)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="overall deadline for lifecycle phases")
    parser.add_argument("--data-dir", default=None,
                        help="durable state directory for THIS entity "
                             "(repro.store snapshot + WAL); the process "
                             "recovers from it on start and journals every "
                             "state transition to it.  Omit to run "
                             "in-memory only.")


def install_stop_signals() -> threading.Event:
    """A stop event set by SIGTERM/SIGINT (the supervisor's shutdown path)."""
    stop = threading.Event()

    def _handler(signum, frame):
        stop.set()

    signal.signal(signal.SIGTERM, _handler)
    signal.signal(signal.SIGINT, _handler)
    return stop
