"""The four entities of the dissemination system (Section III).

* :class:`~repro.system.idp.IdentityProvider` issues certified attribute
  assertions to subscribers;
* :class:`~repro.system.idmgr.IdentityManager` turns assertions into
  *identity tokens* ``(nym, id-tag, c, sigma)`` whose value lives only
  inside a Pedersen commitment;
* :class:`~repro.system.publisher.Publisher` manages policies and the CSS
  table, runs OCBE registrations as the oblivious sender, and broadcasts
  encrypted documents with ACV-BGKM headers;
* :class:`~repro.system.subscriber.Subscriber` registers its tokens
  (learning CSSs exactly for the conditions its hidden values satisfy) and
  decrypts the authorized portions of broadcasts.

Entities interact exclusively through serialized wire messages
(:mod:`repro.wire`) routed by a :class:`~repro.system.transport.Transport`:
the :class:`~repro.system.service.DisseminationService` /
:class:`~repro.system.service.SubscriberClient` /
:class:`~repro.system.service.IdentityManagerEndpoint` endpoints drive the
session state machines, and the transport's accounting log lets tests and
examples audit precisely what the publisher observes.
:mod:`~repro.system.registration` keeps the seed's one-call registration
helpers as shims over that machinery.

Exports resolve lazily (PEP 562), like the package root's: an eager
``from repro.system.service import ...`` here would close a cycle with
:mod:`repro.wire.messages` (which needs only the leaf
:mod:`repro.system.identity`) and would drag the whole entity stack
into any process that touches one submodule.
"""

import importlib

_EXPORTS = {
    "CssTable": "repro.system.css",
    "AttributeAssertion": "repro.system.identity",
    "IdentityToken": "repro.system.identity",
    "IdentityManager": "repro.system.idmgr",
    "IdentityProvider": "repro.system.idp",
    "Publisher": "repro.system.publisher",
    "SystemParams": "repro.system.publisher",
    "register_all_attributes": "repro.system.registration",
    "register_for_attribute": "repro.system.registration",
    "DisseminationService": "repro.system.service",
    "IdentityManagerEndpoint": "repro.system.service",
    "SubscriberClient": "repro.system.service",
    "run_until_idle": "repro.system.service",
    "Subscriber": "repro.system.subscriber",
    "BROADCAST": "repro.system.transport",
    "Delivery": "repro.system.transport",
    "InMemoryTransport": "repro.system.transport",
    "Transport": "repro.system.transport",
}


def __getattr__(name: str):
    if name in _EXPORTS:
        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))


__all__ = [
    "CssTable",
    "AttributeAssertion",
    "IdentityToken",
    "IdentityManager",
    "IdentityProvider",
    "Publisher",
    "SystemParams",
    "Subscriber",
    "BROADCAST",
    "Delivery",
    "Transport",
    "InMemoryTransport",
    "DisseminationService",
    "SubscriberClient",
    "IdentityManagerEndpoint",
    "run_until_idle",
    "register_for_attribute",
    "register_all_attributes",
]
