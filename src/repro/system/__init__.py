"""The four entities of the dissemination system (Section III).

* :class:`~repro.system.idp.IdentityProvider` issues certified attribute
  assertions to subscribers;
* :class:`~repro.system.idmgr.IdentityManager` turns assertions into
  *identity tokens* ``(nym, id-tag, c, sigma)`` whose value lives only
  inside a Pedersen commitment;
* :class:`~repro.system.publisher.Publisher` manages policies and the CSS
  table, runs OCBE registrations as the oblivious sender, and broadcasts
  encrypted documents with ACV-BGKM headers;
* :class:`~repro.system.subscriber.Subscriber` registers its tokens
  (learning CSSs exactly for the conditions its hidden values satisfy) and
  decrypts the authorized portions of broadcasts.

Entities interact exclusively through serialized wire messages
(:mod:`repro.wire`) routed by a :class:`~repro.system.transport.Transport`:
the :class:`~repro.system.service.DisseminationService` /
:class:`~repro.system.service.SubscriberClient` /
:class:`~repro.system.service.IdentityManagerEndpoint` endpoints drive the
session state machines, and the transport's accounting log lets tests and
examples audit precisely what the publisher observes.
:mod:`~repro.system.registration` keeps the seed's one-call registration
helpers as shims over that machinery.
"""

from repro.system.css import CssTable
from repro.system.identity import AttributeAssertion, IdentityToken
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher, SystemParams
from repro.system.registration import register_all_attributes, register_for_attribute
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import BROADCAST, Delivery, InMemoryTransport, Transport

__all__ = [
    "CssTable",
    "AttributeAssertion",
    "IdentityToken",
    "IdentityManager",
    "IdentityProvider",
    "Publisher",
    "SystemParams",
    "Subscriber",
    "BROADCAST",
    "Delivery",
    "Transport",
    "InMemoryTransport",
    "DisseminationService",
    "SubscriberClient",
    "IdentityManagerEndpoint",
    "run_until_idle",
    "register_for_attribute",
    "register_all_attributes",
]
