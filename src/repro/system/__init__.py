"""The four entities of the dissemination system (Section III).

* :class:`~repro.system.idp.IdentityProvider` issues certified attribute
  assertions to subscribers;
* :class:`~repro.system.idmgr.IdentityManager` turns assertions into
  *identity tokens* ``(nym, id-tag, c, sigma)`` whose value lives only
  inside a Pedersen commitment;
* :class:`~repro.system.publisher.Publisher` manages policies and the CSS
  table, runs OCBE registrations as the oblivious sender, and broadcasts
  encrypted documents with ACV-BGKM headers;
* :class:`~repro.system.subscriber.Subscriber` registers its tokens
  (learning CSSs exactly for the conditions its hidden values satisfy) and
  decrypts the authorized portions of broadcasts.

:mod:`~repro.system.registration` drives the interactive registration over
an accounting :class:`~repro.system.transport.InMemoryTransport`, so tests
and examples can audit precisely what the publisher observes.
"""

from repro.system.css import CssTable
from repro.system.identity import AttributeAssertion, IdentityToken
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher, SystemParams
from repro.system.registration import register_all_attributes, register_for_attribute
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

__all__ = [
    "CssTable",
    "AttributeAssertion",
    "IdentityToken",
    "IdentityManager",
    "IdentityProvider",
    "Publisher",
    "SystemParams",
    "Subscriber",
    "InMemoryTransport",
    "register_for_attribute",
    "register_all_attributes",
]
