"""Driving the interactive registration over an accounting transport.

The paper's privacy practice (Section V-B / Example 3): a Sub registers
its identity token for **every** condition whose attribute name matches
the token's tag -- including mutually exclusive ones -- so the Pub cannot
infer from registration behaviour which condition the Sub actually
satisfies.  These helpers implement exactly that loop and record all
traffic in an :class:`~repro.system.transport.InMemoryTransport`.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from repro.system.publisher import Publisher
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

__all__ = ["register_for_attribute", "register_all_attributes"]


def register_for_attribute(
    publisher: Publisher,
    subscriber: Subscriber,
    attribute: str,
    transport: Optional[InMemoryTransport] = None,
) -> Dict[str, bool]:
    """Register the Sub's token for all of the Pub's ``attribute`` conditions.

    Returns ``{condition key: css extracted?}`` -- knowledge only the Sub
    has; the Pub's transcript (in ``transport``) is identical either way.
    """
    token = subscriber.token_for(attribute)
    results: Dict[str, bool] = {}
    for condition in publisher.conditions_for_attribute(attribute):
        if transport is not None:
            transport.send(
                subscriber.nym,
                publisher.name,
                "token+condition-request",
                token.byte_size() + len(condition.key()),
                note=condition.key(),
            )
        offer = publisher.open_registration(token, condition)

        # Wrap the offer so the interactive messages are metered.
        if transport is not None:
            original_compose = offer.compose

            def metered_compose(aux, rng=None, _orig=original_compose, _cond=condition):
                if aux is not None:
                    transport.send(
                        subscriber.nym,
                        publisher.name,
                        "ocbe-bit-commitments",
                        aux.byte_size(),
                        note=_cond.key(),
                    )
                envelope = _orig(aux, rng)
                transport.send(
                    publisher.name,
                    subscriber.nym,
                    "ocbe-envelope",
                    envelope.byte_size(),
                    note=_cond.key(),
                )
                return envelope

            offer.compose = metered_compose  # type: ignore[method-assign]
        results[condition.key()] = subscriber.accept_offer(offer)
    return results


def register_all_attributes(
    publisher: Publisher,
    subscriber: Subscriber,
    transport: Optional[InMemoryTransport] = None,
) -> Dict[str, Dict[str, bool]]:
    """Register every token the Sub holds against every matching condition."""
    outcome: Dict[str, Dict[str, bool]] = {}
    for attribute in subscriber.attribute_tags():
        if publisher.conditions_for_attribute(attribute):
            outcome[attribute] = register_for_attribute(
                publisher, subscriber, attribute, transport
            )
    return outcome
