"""Compatibility helpers driving the wire-protocol registration.

The paper's privacy practice (Section V-B / Example 3): a Sub registers
its identity token for **every** condition whose attribute name matches
the token's tag -- including mutually exclusive ones -- so the Pub cannot
infer from registration behaviour which condition the Sub actually
satisfies.

These helpers preserve the seed API (`register_for_attribute` /
`register_all_attributes`) but are now thin shims over the wire protocol:
they stand up a :class:`~repro.system.service.DisseminationService` and a
:class:`~repro.system.service.SubscriberClient` on a shared
:class:`~repro.system.transport.InMemoryTransport` and pump frames until
the exchange quiesces.  Every inter-entity interaction crosses the
transport as serialized bytes -- the seed's ``offer.compose``
monkey-patch metering is gone because the transport now *routes* the real
messages and accounts them as a side effect.
"""

from __future__ import annotations

from typing import Dict, Optional

from repro.errors import RegistrationError
from repro.system.publisher import Publisher
from repro.system.service import DisseminationService, SubscriberClient, run_until_idle
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

__all__ = ["register_for_attribute", "register_all_attributes"]


def _wire_pair(publisher: Publisher, subscriber: Subscriber, transport):
    service = DisseminationService(publisher, transport)
    client = SubscriberClient(subscriber, transport, publisher.name)
    return service, client


def _raise_on_rejection(client: SubscriberClient) -> None:
    """Preserve the seed semantics: a publisher-side *rejection* (bad
    signature, misconfigured keys) is an error, not a quiet ``False`` --
    only "value does not satisfy the condition" may fail silently."""
    if client.failures:
        details = "; ".join(
            "%s: %s" % (key, reason) for key, reason in sorted(client.failures.items())
        )
        raise RegistrationError("publisher rejected registration (%s)" % details)


def register_for_attribute(
    publisher: Publisher,
    subscriber: Subscriber,
    attribute: str,
    transport: Optional[InMemoryTransport] = None,
) -> Dict[str, bool]:
    """Register the Sub's token for all of the Pub's ``attribute`` conditions.

    Returns ``{condition key: css extracted?}`` -- knowledge only the Sub
    has; the Pub's transcript (in ``transport``) is identical either way.
    """
    transport = transport if transport is not None else InMemoryTransport()
    service, client = _wire_pair(publisher, subscriber, transport)
    client.register_attribute(attribute)
    run_until_idle((service, client))
    _raise_on_rejection(client)
    return dict(client.results.get(attribute, {}))


def register_all_attributes(
    publisher: Publisher,
    subscriber: Subscriber,
    transport: Optional[InMemoryTransport] = None,
) -> Dict[str, Dict[str, bool]]:
    """Register every token the Sub holds against every matching condition."""
    transport = transport if transport is not None else InMemoryTransport()
    service, client = _wire_pair(publisher, subscriber, transport)
    client.register_all_attributes()
    run_until_idle((service, client))
    _raise_on_rejection(client)
    return {
        attribute: dict(outcomes)
        for attribute, outcomes in client.results.items()
        if outcomes
    }
