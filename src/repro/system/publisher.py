"""The Publisher (Pub): policies, CSS table, registration, broadcast.

The Pub's lifecycle per Section V:

1. **Setup** -- choose the GKM field ``F_q``, the hash, the symmetric
   cipher and the CSS length kappa; publish them (``SystemParams``).
2. **Registration** (Section V-B) -- per (token, condition): verify the
   IdMgr signature and the tag match, mint a fresh CSS, store it in table
   ``T``, and obliviously transfer it with the OCBE protocol matching the
   condition's operator.  The Pub never learns the attribute value nor
   whether the transfer succeeded.
3. **Broadcast** (Section V-C) -- segment each document by policy
   configuration, generate one ACV-BGKM key+header per configuration from
   the current table, and emit a :class:`BroadcastPackage`.
4. **Rekey** -- any table mutation (new subscription, credential update or
   revocation, subscription revocation) simply marks configurations dirty;
   the next broadcast re-publishes fresh headers.  No unicast happens.
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.crypto.hashes import HashFunction, default_hash
from repro.crypto.pedersen import PedersenParams
from repro.crypto.symmetric import SymmetricCipher, default_cipher
from repro.documents.model import Document
from repro.documents.package import (
    BroadcastPackage,
    ConfigHeader,
    EncryptedSubdocument,
)
from repro.documents.segmentation import SegmentPlan, segment
from repro.errors import RegistrationError, SignatureError
from repro.gkm.acv import PAPER_FIELD, AcvBgkm
from repro.gkm.strategy import AcvBuildCache, build_strategy
from repro.groups.base import GroupElement
from repro.mathx.field import PrimeField
from repro.ocbe.base import OCBESetup, sender_for
from repro.ocbe.predicates import DEFAULT_BIT_LENGTH
from repro.policy.acp import AccessControlPolicy
from repro.policy.condition import AttributeCondition
from repro.system.css import CssTable
from repro.system.identity import IdentityToken

__all__ = ["SystemParams", "Publisher", "RegistrationOffer"]


@dataclass(frozen=True)
class SystemParams:
    """Everything a subscriber needs to interoperate with a publisher."""

    pedersen: PedersenParams
    idmgr_public_key: GroupElement
    gkm_field: PrimeField
    hash_fn: HashFunction
    cipher: SymmetricCipher
    key_len: int
    attribute_bits: int


@dataclass
class RegistrationOffer:
    """One pending OCBE delivery of a CSS for (token, condition).

    This is Pub-internal state: :class:`~repro.wire.sessions.PublisherRegistrationSession`
    holds one per in-flight registration while it waits for the receiver's
    auxiliary commitments to arrive over the wire.
    """

    condition: AttributeCondition
    sender: object  # an OCBE sender session
    token: IdentityToken
    css: bytes

    def compose(self, aux, rng: Optional[random.Random] = None):
        """Deprecated live-object registration path.

        Composing an envelope directly against a subscriber-held ``aux``
        object bypassed the wire boundary (and used to be monkey-patched
        for traffic metering).  Registration is now driven by serialized
        messages: see :class:`~repro.wire.sessions.PublisherRegistrationSession`
        and the :class:`~repro.system.service.DisseminationService` /
        :class:`~repro.system.service.SubscriberClient` facade.
        """
        raise RegistrationError(
            "RegistrationOffer.compose() is deprecated: registration is now a "
            "wire protocol.  Use repro.system.service.DisseminationService / "
            "SubscriberClient (or the register_for_attribute / "
            "register_all_attributes helpers) instead."
        )


class Publisher:
    """The content publisher."""

    def __init__(
        self,
        name: str,
        pedersen: PedersenParams,
        idmgr_public_key: GroupElement,
        gkm_field: PrimeField = PAPER_FIELD,
        hash_fn: Optional[HashFunction] = None,
        cipher: Optional[SymmetricCipher] = None,
        css_bytes: int = 16,
        key_len: int = 16,
        attribute_bits: int = DEFAULT_BIT_LENGTH,
        capacity_slack: int = 0,
        rng: Optional[random.Random] = None,
        gkm: str = "dense",
        gkm_bucket_size: Optional[int] = None,
        acv_cache: bool = True,
    ):
        """``capacity_slack`` extra columns beyond the Eq.-1 minimum let the
        publisher hide the exact subscriber count and amortise joins.

        ``gkm`` picks the publish-path strategy (``"dense"`` = one ACV
        per configuration, the paper's baseline; ``"bucketed"`` = the
        Section VIII-C row-order bucket layout with a shared key per
        configuration).  ``gkm_bucket_size`` fixes the rows-per-bucket
        (``None`` = the auto ``ceil(sqrt(m))`` policy).  ``acv_cache``
        keeps the (member-row set, epoch)-keyed elimination cache on so
        unchanged configurations across consecutive publishes skip the
        cubic solve; joins/revocations invalidate it.
        """
        self.name = name
        self.params = SystemParams(
            pedersen=pedersen,
            idmgr_public_key=idmgr_public_key,
            gkm_field=gkm_field,
            hash_fn=hash_fn or default_hash(),
            cipher=cipher or default_cipher(),
            key_len=key_len,
            attribute_bits=attribute_bits,
        )
        self.table = CssTable()
        self.policies: List[AccessControlPolicy] = []
        self._condition_map: Optional[Dict[str, AttributeCondition]] = None
        self.css_bytes = css_bytes
        self.capacity_slack = capacity_slack
        self._gkm = AcvBgkm(gkm_field, self.params.hash_fn)
        self._acv_cache = AcvBuildCache() if acv_cache else None
        self.gkm = gkm
        self.gkm_bucket_size = gkm_bucket_size
        self._strategy = build_strategy(
            gkm, self._gkm, self._acv_cache, gkm_bucket_size
        )
        self._ocbe = OCBESetup(
            pedersen=pedersen,
            hash_fn=self.params.hash_fn,
            cipher=self.params.cipher,
            key_len=key_len,
        )
        self._rng = rng
        #: Keys of the most recent publish, per (document, config id) --
        #: retained for tests/audits only; a real Pub may discard them.
        self.last_keys: Dict[Tuple[str, str], int] = {}
        #: GKM epoch: how many ACV rekey broadcasts this table has gone
        #: out under.  Advanced by every :meth:`publish`; restored by the
        #: durability layer so a recovered publisher resumes its history.
        self.epoch = 0
        #: Optional durability hook (:mod:`repro.store.persist`): every
        #: state transition below announces itself here *before* the
        #: triggering reply is built, which is what makes the journal
        #: write-ahead.  ``None`` keeps the publisher purely in-memory.
        self.journal = None

    @property
    def ocbe_setup(self) -> OCBESetup:
        """The OCBE setup shared by every registration (public params only)."""
        return self._ocbe

    # -- GKM strategy ----------------------------------------------------------

    def set_gkm_strategy(
        self, gkm: str, bucket_size: Optional[int] = None
    ) -> None:
        """Switch the publish-path GKM strategy (see ``__init__``).

        Also used by :mod:`repro.store.persist` during recovery so a
        restarted publisher rekeys under the same strategy and bucket
        layout its durable table was broadcast with.
        """
        self._strategy = build_strategy(
            gkm, self._gkm, self._acv_cache, bucket_size
        )
        self.gkm = gkm
        self.gkm_bucket_size = bucket_size
        self._invalidate_acv_cache()
        if self.journal is not None:
            self.journal.gkm_strategy_changed(gkm, bucket_size or 0)

    def bucket_size_for(self, row_count: int) -> Optional[int]:
        """Effective rows-per-bucket for ``row_count`` rows (None = dense)."""
        resolve = getattr(self._strategy, "resolve_bucket_size", None)
        return resolve(row_count) if resolve is not None else None

    def bucket_layout_for(self, rows) -> Optional[list]:
        """The exact row-order bucket layout the strategy would broadcast
        for ``rows`` (None = dense).  The invariant checker audits against
        this instead of re-deriving the chunk rule, so checker and publish
        path can never disagree about the layout."""
        chunk = getattr(self._strategy, "chunk", None)
        return chunk(rows) if chunk is not None else None

    def acv_cache_stats(self) -> Dict[str, int]:
        """Hit/miss/extend/epoch counters of the ACV build cache (all zero
        when the cache is disabled)."""
        if self._acv_cache is None:
            return {"hits": 0, "misses": 0, "extends": 0, "epoch": 0, "entries": 0}
        return self._acv_cache.stats()

    def _invalidate_acv_cache(self) -> None:
        """A row was removed or replaced (revoke / credential replacement /
        policy or strategy change): cached ``(zs, Y)`` pairs and their
        factorizations must not survive into the new epoch."""
        if self._acv_cache is not None:
            self._acv_cache.invalidate()

    def _note_acv_join(self) -> None:
        """A brand-new CSS cell was installed (pure join): entries stay --
        untouched configurations exact-hit, grown ones extend their
        carried factorization incrementally (O(m^2) instead of a fresh
        elimination)."""
        if self._acv_cache is not None:
            self._acv_cache.note_join()

    # -- policy management ----------------------------------------------------

    def add_policy(self, policy: AccessControlPolicy) -> None:
        """Install an access control policy."""
        self.policies.append(policy)
        self._condition_map = None  # invalidate the key -> condition cache
        self._invalidate_acv_cache()

    def condition_map(self) -> Dict[str, AttributeCondition]:
        """Distinct conditions keyed by their stable key (cached; rebuilt on
        ``add_policy``).  Every RegistrationRequest resolves through this."""
        if self._condition_map is None:
            seen: Dict[str, AttributeCondition] = {}
            for policy in self.policies:
                for condition in policy.conditions:
                    seen.setdefault(condition.key(), condition)
            self._condition_map = seen
        return self._condition_map

    def conditions(self) -> List[AttributeCondition]:
        """All distinct conditions across installed policies."""
        seen = self.condition_map()
        return [seen[k] for k in sorted(seen)]

    def conditions_for_attribute(self, attribute: str) -> List[AttributeCondition]:
        """Conditions mentioning ``attribute`` (what a Sub registers for)."""
        return [c for c in self.conditions() if c.name == attribute]

    def condition_by_key(self, condition_key: str) -> AttributeCondition:
        """Resolve a wire-carried condition key to the installed condition."""
        condition = self.condition_map().get(condition_key)
        if condition is None:
            raise RegistrationError(
                "no installed policy mentions condition %r" % condition_key
            )
        return condition

    # -- registration (Section V-B) -------------------------------------------

    def _verify_token(self, token: IdentityToken) -> None:
        from repro.crypto.schnorr_sig import verify

        if not verify(
            self.params.pedersen.group,
            self.params.idmgr_public_key,
            token.signing_bytes(),
            token.signature,
        ):
            raise SignatureError("identity token signature invalid")

    def open_registration(
        self, token: IdentityToken, condition: AttributeCondition
    ) -> RegistrationOffer:
        """Step 2 of Section V-B for one (token, condition) pair.

        Verifies the token, mints a fresh CSS, stores it in ``T``
        (overwriting any previous CSS -- credential update), and returns
        the OCBE sender session that will obliviously deliver it.
        """
        if token.tag != condition.name:
            raise RegistrationError(
                "token tag %r does not match condition attribute %r"
                % (token.tag, condition.name)
            )
        self._verify_token(token)
        if self._rng is not None:
            css = bytes(self._rng.randrange(256) for _ in range(self.css_bytes))
        else:
            css = secrets.token_bytes(self.css_bytes)
        predicate = condition.predicate(self.params.attribute_bits)
        # Each offer's sender draws from its own RNG stream, seeded from
        # the master RNG here -- at offer creation, in strict arrival
        # order.  Envelope randomness then no longer depends on the order
        # envelopes are *built* in, which is what makes the worker-pool
        # prefetch frame-identical to the serial path for seeded runs.
        sender_rng = (
            random.Random(self._rng.getrandbits(64))
            if self._rng is not None
            else None
        )
        sender = sender_for(self._ocbe, predicate, sender_rng)
        # A brand-new cell is a pure join: the ACV cache keeps (and later
        # extends) its entries.  Overwriting an existing cell is a
        # credential *replacement*: the old CSS must stop deriving, which
        # demands fresh nonces -- full invalidation.
        credential_update = self.table.has(token.nym, condition.key())
        self.table.set(token.nym, condition.key(), css)
        if credential_update:
            self._invalidate_acv_cache()
        else:
            self._note_acv_join()
        if self.journal is not None:
            self.journal.css_installed(token.nym, condition.key(), css)
        return RegistrationOffer(
            condition=condition, sender=sender, token=token, css=css
        )

    # -- membership changes (Section V-C) ---------------------------------------

    def revoke_subscription(self, nym: str) -> bool:
        """Remove a pseudonym entirely; next publish is the rekey."""
        removed = self.table.remove_row(nym)
        if removed:
            self._invalidate_acv_cache()
            if self.journal is not None:
                self.journal.subscription_revoked(nym)
        return removed

    def revoke_subscriptions(self, nyms: Sequence[str]) -> int:
        """Batch subscription revocation: remove many pseudonyms at once.

        Returns how many were actually present.  The point of batching is
        the rekey cost model: a churn step that revokes ``k`` members and
        then calls :meth:`publish` *once* pays for one ACV matrix build,
        where the naive revoke-publish-revoke-publish loop pays ``k``
        (measured by ``benchmarks/test_load_scenarios.py``).
        """
        return sum(1 for nym in nyms if self.revoke_subscription(nym))

    def revoke_credential(self, nym: str, condition_key: str) -> bool:
        """Remove one CSS; next publish is the rekey."""
        removed = self.table.remove_cell(nym, condition_key)
        if removed:
            self._invalidate_acv_cache()
            if self.journal is not None:
                self.journal.credential_revoked(nym, condition_key)
        return removed

    # -- broadcast (Section V-C) --------------------------------------------------

    def plan(self, document: Document) -> SegmentPlan:
        """The segmentation plan for a document under current policies."""
        return segment(document, self.policies)

    def publish(
        self,
        document: Document,
        rng: Optional[random.Random] = None,
        capacity: Optional[int] = None,
    ) -> BroadcastPackage:
        """Encrypt and package ``document``; fresh keys per configuration.

        Calling publish again after any table change *is* the rekey
        process: subscribers derive the new keys from the new headers with
        their unchanged CSSs.
        """
        rng = rng if rng is not None else self._rng
        plan = self.plan(document)
        headers: List[ConfigHeader] = []
        encrypted: List[EncryptedSubdocument] = []
        for config_id, config, sub_names in plan.groups:
            if config.is_empty:
                # Example 4 / Pc6: encrypt under a throwaway key, publish no
                # keying material -- nobody is authorized.
                throwaway = (
                    bytes(rng.randrange(256) for _ in range(self.params.key_len))
                    if rng is not None
                    else secrets.token_bytes(self.params.key_len)
                )
                headers.append(
                    ConfigHeader(config_id=config_id, policies=(), acv=None)
                )
                sym_key = throwaway
            else:
                # One table pass builds the rows of every member policy
                # (was one pass per policy): the per-broadcast setup is on
                # the churn hot path, where every phase ends in a rekey.
                policy_keys: List[Tuple[str, ...]] = [
                    acp.condition_keys() for acp in config.sorted_policies()
                ]
                buckets = self.table.rows_for_policies(policy_keys)
                rows: List[Tuple[bytes, ...]] = [
                    row for bucket in buckets for row in bucket
                ]
                key_int, acv_header = self._strategy.build(
                    rows, capacity=capacity, slack=self.capacity_slack, rng=rng
                )
                self.last_keys[(document.name, config_id)] = key_int
                sym_key = self._gkm.export_key(key_int, self.params.key_len)
                headers.append(
                    ConfigHeader(
                        config_id=config_id,
                        policies=tuple(policy_keys),
                        acv=acv_header,
                    )
                )
            for sub_name in sub_names:
                content = document.get(sub_name).content
                encrypted.append(
                    EncryptedSubdocument(
                        name=sub_name,
                        config_id=config_id,
                        ciphertext=self.params.cipher.encrypt(sym_key, content),
                    )
                )
        self.epoch += 1
        if self.journal is not None:
            # Journaled before the package leaves: a publisher that crashes
            # mid-broadcast recovers knowing this epoch's keys are burnt.
            self.journal.epoch_advanced(self.epoch)
        return BroadcastPackage(
            document=document.name,
            headers=tuple(headers),
            subdocuments=tuple(encrypted),
        )
