"""The Subscriber (Sub): tokens, CSS store, key derivation, decryption.

A Sub holds its identity tokens with their private openings ``(x, r)`` and
the CSSs it managed to extract during registration.  Receiving a broadcast
(Section V-C "Decryption Key Derivation"):

* for each subdocument, look at its configuration header;
* pick a member policy whose condition keys all have local CSSs;
* build the KEV from those CSSs and the published nonces and compute
  ``K = KEV . X``;
* authenticated decryption confirms the key (a Sub that *thinks* it
  qualifies but holds a stale/garbage CSS just fails and tries the next
  policy).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.documents.package import BroadcastPackage, ConfigHeader
from repro.errors import DecryptionError, RegistrationError
from repro.gkm.acv import AcvBgkm
from repro.gkm.buckets import BucketedHeader
from repro.ocbe.base import OCBESetup
from repro.system.identity import IdentityToken
from repro.system.publisher import RegistrationOffer, SystemParams

__all__ = ["Subscriber", "TokenWallet"]


@dataclass
class TokenWallet:
    """A token plus its private opening."""

    token: IdentityToken
    x: int
    r: int


class Subscriber:
    """A subscribing client."""

    def __init__(
        self,
        nym: str,
        params: SystemParams,
        rng: Optional[random.Random] = None,
    ):
        self.nym = nym
        self.params = params
        self._wallet: Dict[str, TokenWallet] = {}
        self.css_store: Dict[str, bytes] = {}
        self._gkm = AcvBgkm(params.gkm_field, params.hash_fn)
        self._ocbe = OCBESetup(
            pedersen=params.pedersen,
            hash_fn=params.hash_fn,
            cipher=params.cipher,
            key_len=params.key_len,
        )
        self._rng = rng
        #: Optional durability hook (:mod:`repro.store.persist`): wallet
        #: entries and extracted CSSs announce themselves here so a crashed
        #: subscriber process resumes without re-running OCBE transfers.
        self.journal = None

    @property
    def rng(self) -> Optional[random.Random]:
        """The deterministic RNG this subscriber was built with (or None)."""
        return self._rng

    @property
    def ocbe_setup(self) -> OCBESetup:
        """The OCBE parameters shared with the publisher."""
        return self._ocbe

    # -- identity ------------------------------------------------------------

    def hold_token(self, token: IdentityToken, x: int, r: int) -> None:
        """Store a token and its opening received from the IdMgr."""
        if token.nym != self.nym:
            raise RegistrationError(
                "token pseudonym %r does not match subscriber %r"
                % (token.nym, self.nym)
            )
        self._wallet[token.tag] = TokenWallet(token=token, x=x, r=r)
        if self.journal is not None:
            self.journal.token_held(token, x, r)

    def store_css(self, condition_key: str, css: bytes) -> None:
        """Keep an extracted CSS (journaled when durability is attached).

        The registration sessions call this instead of poking
        :attr:`css_store` directly, so the write-ahead record is on disk
        before any later broadcast relies on the secret being held."""
        self.css_store[condition_key] = css
        if self.journal is not None:
            self.journal.css_extracted(condition_key, css)

    def token_for(self, attribute: str) -> IdentityToken:
        """The held token for an attribute tag."""
        return self.wallet_for(attribute).token

    def wallet_for(self, attribute: str) -> TokenWallet:
        """The held token *with its private opening* for an attribute tag.

        Only this Sub's own registration sessions may call this; the
        opening never crosses the wire.
        """
        if attribute not in self._wallet:
            raise RegistrationError("no token for attribute %r" % attribute)
        return self._wallet[attribute]

    def attribute_tags(self) -> List[str]:
        """Tags of all held tokens."""
        return sorted(self._wallet)

    def wallet_entries(self) -> List[TokenWallet]:
        """Every held token with its opening, sorted by tag (the snapshot
        view; like :meth:`wallet_for`, never crosses the wire)."""
        return [self._wallet[tag] for tag in self.attribute_tags()]

    # -- registration (receiver side of Section V-B) ----------------------------

    def accept_offer(self, offer: RegistrationOffer) -> bool:
        """Deprecated live-object registration path.

        The in-process offer/accept handshake was replaced by the wire
        protocol: registration now runs as serialized messages through
        :class:`~repro.wire.sessions.SubscriberRegistrationSession` (or the
        high-level :class:`~repro.system.service.SubscriberClient`), and the
        compatibility helpers ``repro.system.registration.register_for_attribute``
        / ``register_all_attributes`` drive that for you.
        """
        raise RegistrationError(
            "Subscriber.accept_offer() is deprecated: registration is now a "
            "wire protocol.  Use repro.system.service.SubscriberClient / "
            "DisseminationService (or the register_for_attribute / "
            "register_all_attributes helpers) instead."
        )

    # -- broadcast consumption ---------------------------------------------------

    def _derive_config_key(self, header: ConfigHeader) -> List[bytes]:
        """Candidate symmetric keys for a configuration, one per satisfiable
        policy (most Subs satisfy at most one).

        A bucketed header yields one candidate per bucket: the Sub does
        not learn its bucket index (publishing an assignment would leak
        membership structure), so it derives from every bucket and lets
        authenticated decryption pick the real key -- wrong buckets
        produce unpredictable field elements, exactly like a stale CSS.
        """
        if header.acv is None:
            return []
        candidates = []
        for condition_keys in header.policies:
            if all(key in self.css_store for key in condition_keys):
                css = tuple(self.css_store[key] for key in condition_keys)
                if isinstance(header.acv, BucketedHeader):
                    key_ints = [
                        self._gkm.derive(bucket, css)
                        for bucket in header.acv.buckets
                    ]
                else:
                    key_ints = [self._gkm.derive(header.acv, css)]
                candidates.extend(
                    self._gkm.export_key(key_int, self.params.key_len)
                    for key_int in key_ints
                )
        return candidates

    def receive(self, package: BroadcastPackage) -> Dict[str, bytes]:
        """Decrypt every subdocument this Sub is authorized for.

        Returns ``{subdocument name: plaintext}``; unauthorized portions
        are simply absent (their ciphertexts are indistinguishable from
        random without the key).
        """
        keys_by_config: Dict[str, List[bytes]] = {}
        for header in package.headers:
            keys_by_config[header.config_id] = self._derive_config_key(header)
        plaintexts: Dict[str, bytes] = {}
        for sub in package.subdocuments:
            for key in keys_by_config.get(sub.config_id, []):
                try:
                    plaintexts[sub.name] = self.params.cipher.decrypt(
                        key, sub.ciphertext
                    )
                    break
                except DecryptionError:
                    continue
        return plaintexts

    def __repr__(self) -> str:
        return "Subscriber(nym=%r, tokens=%d, css=%d)" % (
            self.nym,
            len(self._wallet),
            len(self.css_store),
        )
