"""High-level endpoints: entities driving wire sessions over a transport.

Each class here owns one entity's end of the protocol and one inbox on a
:class:`~repro.system.transport.Transport`.  An endpoint's ``pump()``
drains its inbox, feeds each frame to the right session state machine and
sends the produced reply frames -- nothing but bytes ever crosses between
endpoints, so the same code runs whether the transport is the in-memory
router or a future socket backend.

* :class:`DisseminationService` -- the Pub: answers condition queries,
  runs OCBE registrations, broadcasts encrypted document packages.
* :class:`SubscriberClient` -- a Sub: obtains tokens, registers them for
  every matching condition (the Section V-B privacy practice), collects
  broadcast plaintexts.
* :class:`IdentityManagerEndpoint` -- the IdMgr: turns ``TokenRequest``
  frames into ``TokenGrant`` frames.

:func:`run_until_idle` is the single-process scheduler: it pumps a set of
endpoints until no messages remain in flight.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.documents.model import Document
from repro.documents.package import BroadcastPackage
from repro.errors import (
    InvalidParameterError,
    ProtocolStateError,
    RegistrationError,
    ReproError,
    SerializationError,
    SystemError_,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import (
    current_span,
    current_trace,
    new_span_id,
    new_trace_id,
    spanning,
    stage,
    tracing,
)
from repro.system.transport import Delivery, Transport
from repro.wire.messages import (
    MESSAGE_TYPES,
    BroadcastMessage,
    ConditionList,
    ConditionQuery,
    OCBEEnvelope,
    RegistrationAck,
    TokenGrant,
    TokenRequest,
    decode_message,
)
from repro.wire.codec import WIRE_MAGIC, WIRE_VERSION
from repro.wire.sessions import (
    PublisherRegistrationSession,
    SubscriberRegistrationSession,
)

__all__ = [
    "DisseminationService",
    "SubscriberClient",
    "IdentityManagerEndpoint",
    "run_until_idle",
]


def _frame_type(frame: bytes) -> Optional[type]:
    """Peek a frame's message class from the fixed-offset type byte.

    O(1): no payload parse or copy -- used on every send for the
    accounting label, and on receive to discard foreign traffic cheaply.
    Malformed frames return None; full validation happens in
    :func:`~repro.wire.messages.decode_message`.
    """
    if len(frame) < 4 or frame[:2] != WIRE_MAGIC or frame[2] != WIRE_VERSION:
        return None  # let decode_message raise the precise error
    return MESSAGE_TYPES.get(frame[3])


def _frame_kind(frame: bytes) -> str:
    """The transport accounting kind for an encoded frame."""
    cls = _frame_type(frame)
    return cls.KIND if cls is not None else "unknown"


class _Endpoint:
    """Shared inbox-pumping plumbing.

    ``persistence`` optionally attaches a :mod:`repro.store.persist`
    adapter: the endpoint keeps the reference (so operators can force a
    snapshot or close the store through the endpoint) and the adapter's
    journal hooks fire from inside the entity's state transitions --
    always *before* the reply frames produced by the same delivery are
    sent, which is what makes the journal write-ahead.
    """

    def __init__(self, name: str, transport: Transport, persistence=None):
        self.name = name
        self.transport = transport
        self.persistence = persistence
        #: Optional :class:`repro.obs.trace.SpanWriter`: when set, every
        #: frame sent or handled becomes one span record, so a trace id
        #: minted at an operation's origin is observable at this hop.
        self.span_writer = None
        transport.register(name)

    def _send(self, receiver: str, frame: bytes, note: str = "") -> None:
        kind = _frame_kind(frame)
        if self.span_writer is not None:
            self.span_writer.span(
                "send", trace=current_trace(), span=current_span() or None,
                ep=self.name, receiver=receiver, kind=kind, size=len(frame),
            )
        self.transport.deliver(self.name, receiver, kind, frame, note)

    def pump(self, limit: Optional[int] = None) -> int:
        """Process pending deliveries; returns how many were handled.

        ``poll`` drains destructively, so if a handler raises the not-yet
        processed remainder of the batch is pushed back into the inbox
        before the error propagates -- one hostile frame must not destroy
        well-formed traffic queued behind it.

        Each delivery is handled with its trace id installed as the
        ambient trace, so reply frames the handler sends carry the same
        id onward -- that is the cross-process propagation step.  The
        ``handle`` span gets a fresh span id scoped around the handler
        (the hop *re-parenting* step): every stage the handler runs and
        every frame it sends parents under this hop.  The handler body
        itself runs inside a ``hop.handle`` duration stage, so frame
        decode + dispatch cost is attributable (its self time excludes
        the nested decrypt/OCBE/WAL stages).
        """
        deliveries = self.transport.poll(self.name, limit)
        if deliveries:
            self._before_batch(deliveries)
        for index, delivery in enumerate(deliveries):
            try:
                with tracing(delivery.trace):
                    if self.span_writer is not None:
                        hop = new_span_id()
                        self.span_writer.span(
                            "handle", trace=delivery.trace, span=hop,
                            ep=self.name, sender=delivery.sender,
                            kind=delivery.kind, size=len(delivery.payload),
                        )
                        with spanning(hop):
                            with stage("hop.handle", kind=delivery.kind):
                                self._handle_delivery(delivery)
                    else:
                        self._handle_delivery(delivery)
            except Exception:
                self.transport.requeue(self.name, deliveries[index + 1 :])
                raise
        return len(deliveries)

    def _before_batch(self, deliveries: Sequence[Delivery]) -> None:
        """Hook: called once per polled batch before any frame is handled.

        Endpoints with a worker pool use it to start independent
        CPU-bound work for the whole batch; handlers then consume the
        results in delivery order.  The default does nothing.
        """

    def _handle_delivery(self, delivery: Delivery) -> None:
        raise NotImplementedError


class DisseminationService(_Endpoint):
    """The publisher's network endpoint.

    ``ocbe_workers > 0`` builds OCBE envelopes on a
    :class:`~repro.ocbe.parallel.OcbeWorkerPool` (opt-in; replies stay
    in delivery order and, for seeded publishers, byte-identical to the
    serial path).  Call :meth:`close` to tear the pool down.
    """

    def __init__(
        self, publisher, transport: Transport, persistence=None,
        ocbe_workers: int = 0,
    ):
        super().__init__(publisher.name, transport, persistence)
        self.publisher = publisher
        self.ocbe_pool = None
        if ocbe_workers:
            from repro.ocbe.parallel import OcbeWorkerPool

            self.ocbe_pool = OcbeWorkerPool(publisher.ocbe_setup, ocbe_workers)
        self.session = PublisherRegistrationSession(publisher, pool=self.ocbe_pool)

    def _before_batch(self, deliveries: Sequence[Delivery]) -> None:
        if self.ocbe_pool is not None:
            self.session.prefetch(deliveries)

    def close(self) -> None:
        """Release endpoint resources (currently: the OCBE worker pool)."""
        if self.ocbe_pool is not None:
            self.ocbe_pool.close()

    def _handle_delivery(self, delivery: Delivery) -> None:
        if _frame_type(delivery.payload) is BroadcastMessage:
            return  # another publisher's multicast on a shared channel
        for frame in self.session.handle(delivery.payload, sender=delivery.sender):
            self._send(delivery.sender, frame)

    def publish(
        self,
        document: Document,
        rng: Optional[random.Random] = None,
        capacity: Optional[int] = None,
    ) -> BroadcastPackage:
        """Encrypt ``document`` and broadcast the package to every inbox.

        Re-publishing after a table change *is* the rekey; like the paper's
        multicast it is accounted once regardless of audience size.

        Each publish is a traced operation: a fresh trace id is minted
        (unless one is already ambient) and rides the broadcast to every
        hop, so one rekey is followable end to end.
        """
        with tracing(current_trace() or new_trace_id()):
            with stage("publish", document=document.name):
                with get_registry().timer("publisher.publish_seconds"):
                    package = self.publisher.publish(
                        document, rng=rng, capacity=capacity
                    )
                frame = BroadcastMessage(package=package).encode()
            # The point event is written *after* the stage closes and
            # right before the frame leaves: its ts is the hop-send
            # timestamp the analyzer pairs with the broker's
            # ``broadcast`` record for transit and clock-skew math.
            if self.span_writer is not None:
                self.span_writer.span(
                    "publish", trace=current_trace(),
                    span=current_span() or None, ep=self.name,
                    kind=BroadcastMessage.KIND,
                    document=document.name, size=len(frame),
                )
            self.transport.broadcast(
                self.name, BroadcastMessage.KIND, frame, note=document.name
            )
        return package


class SubscriberClient(_Endpoint):
    """A subscriber's network endpoint.

    Tracks one :class:`SubscriberRegistrationSession` per (publisher,
    condition) and aggregates their outcomes in :attr:`results`
    (``{attribute: {condition key: extracted?}}`` -- knowledge only this
    side has).  Received broadcasts are decrypted eagerly into
    :attr:`documents`.

    ``publisher_name`` may be a single name or a sequence of names: a
    client on a shared broker can subscribe to several publishers at
    once (condition queries fan out to all of them; broadcasts are
    accepted from any of them).  Condition keys are publisher-local, so
    two publishers announcing the *same* condition string share one
    entry in :attr:`results`/``css_store`` -- multi-publisher deployments
    should keep their condition universes disjoint (the load scenarios
    in :mod:`repro.load` do).
    """

    def __init__(
        self,
        subscriber,
        transport: Transport,
        publisher_name,
        idmgr_name: str = "idmgr",
        history_limit: Optional[int] = None,
        persistence=None,
        reuse_css: bool = False,
    ):
        """``history_limit`` bounds the per-broadcast histories
        (:attr:`packages` / :attr:`broadcasts`, plus the
        :attr:`documents` entries only they still reference): the oldest
        broadcasts are evicted once the limit is reached.  ``None`` (the
        library default) keeps everything; the long-running
        ``repro.net.subscriber`` server passes a bound."""
        super().__init__(subscriber.nym, transport, persistence)
        if history_limit is not None and history_limit < 1:
            raise InvalidParameterError(
                "history_limit must be a positive count or None"
            )
        self.subscriber = subscriber
        if isinstance(publisher_name, str):
            self.publisher_names: tuple = (publisher_name,)
        else:
            self.publisher_names = tuple(publisher_name)
        if not self.publisher_names:
            raise InvalidParameterError("at least one publisher name required")
        #: The primary publisher (kept for single-publisher callers).
        self.publisher_name = self.publisher_names[0]
        self.idmgr_name = idmgr_name
        self.history_limit = history_limit
        #: Treat a locally-held CSS as a completed registration and skip
        #: the OCBE exchange for that condition.  This is what lets a
        #: crash-recovered subscriber resume without re-registering (its
        #: CSSs are durable on both ends).  Off by default: a fresh
        #: exchange is also how a *credential update* replaces the CSS
        #: after the committed value changed, and only the caller knows
        #: which situation it is in (the net server enables this exactly
        #: when it recovered state from its ``--data-dir``).
        self.reuse_css = reuse_css
        self.results: Dict[str, Dict[str, bool]] = {}
        #: Publisher-side rejections (negative acks) by condition key --
        #: distinct from a False in ``results``, which a Sub also gets when
        #: its hidden value simply does not satisfy the condition.
        self.failures: Dict[str, str] = {}
        self.documents: Dict[str, Dict[str, bytes]] = {}
        self.packages: List[BroadcastPackage] = []
        #: Decryption outcome of every received broadcast, in arrival order
        #: (parallel to :attr:`packages`).  ``documents`` keys by document
        #: name, so a re-publish of the same name -- the rekey path --
        #: overwrites; this history preserves the per-broadcast view a
        #: networked subscriber reports.
        self.broadcasts: List[Dict[str, bytes]] = []
        self._sessions: Dict[tuple, SubscriberRegistrationSession] = {}
        self._group = subscriber.params.pedersen.group

    # -- outgoing actions ---------------------------------------------------

    def request_token(self, attribute: str, assertion=None, decoy: bool = False) -> None:
        """Ask the IdMgr for a token (certified assertion, or a decoy).

        The start of a registration's trace: a fresh id is minted here
        (unless one is already ambient) and follows the grant and every
        downstream registration frame.
        """
        with tracing(current_trace() or new_trace_id()):
            self._send(
                self.idmgr_name,
                TokenRequest(
                    nym=self.subscriber.nym,
                    attribute=attribute,
                    assertion=assertion,
                    decoy=decoy,
                ).encode(),
            )

    def _publishers(self, publisher: Optional[str]) -> tuple:
        if publisher is None:
            return self.publisher_names
        if publisher not in self.publisher_names:
            raise InvalidParameterError(
                "%r is not one of this client's publishers %s"
                % (publisher, list(self.publisher_names))
            )
        return (publisher,)

    def request_conditions(
        self, attribute: str, publisher: Optional[str] = None
    ) -> None:
        """Ask the publisher(s) which conditions mention ``attribute``.

        Traced like :meth:`request_token`: the query, the condition
        list, and the whole OCBE exchange it triggers share one id.
        """
        with tracing(current_trace() or new_trace_id()):
            frame = ConditionQuery(attribute=attribute).encode()
            for name in self._publishers(publisher):
                self._send(name, frame)

    def register_attribute(
        self, attribute: str, publisher: Optional[str] = None
    ) -> None:
        """Start the Section V-B loop for one held token: query conditions,
        then (on reply) register for *every* matching condition."""
        self.subscriber.wallet_for(attribute)  # fail fast when no token held
        self.results.setdefault(attribute, {})
        self.request_conditions(attribute, publisher)

    def register_all_attributes(self, publisher: Optional[str] = None) -> None:
        """Start the loop for every token in the wallet."""
        for attribute in self.subscriber.attribute_tags():
            self.register_attribute(attribute, publisher)

    # -- incoming dispatch --------------------------------------------------

    def _expected_senders(self, message) -> Optional[tuple]:
        """Who is allowed to send this message type to a subscriber."""
        if isinstance(message, (ConditionList, RegistrationAck, OCBEEnvelope,
                                BroadcastMessage)):
            return self.publisher_names
        if isinstance(message, TokenGrant):
            return (self.idmgr_name,)
        return None

    def _handle_delivery(self, delivery: Delivery) -> None:
        if (
            _frame_type(delivery.payload) is BroadcastMessage
            and delivery.sender not in self.publisher_names
        ):
            return  # another publisher's multicast on a shared channel
        message = decode_message(delivery.payload, self._group)
        expected = self._expected_senders(message)
        if expected is not None and delivery.sender not in expected:
            # The mirror of the publisher's nym-vs-sender check: a peer
            # impersonating our publisher/IdMgr could abort sessions, plant
            # wallet entries or redirect registrations.  Record and drop.
            self.failures.setdefault(
                "sender:%s" % delivery.sender,
                "%s from %r, expected %r"
                % (type(message).__name__, delivery.sender, list(expected)),
            )
            return
        if isinstance(message, ConditionList):
            self._on_condition_list(delivery.sender, message)
        elif isinstance(message, (RegistrationAck, OCBEEnvelope)):
            self._on_session_frame(delivery.sender, delivery.payload, message)
        elif isinstance(message, TokenGrant):
            try:
                self.subscriber.hold_token(message.token, message.x, message.r)
            except RegistrationError as exc:
                # A grant for some other pseudonym: a remote mistake, not a
                # reason to abort the client's pump loop.
                self.failures["token:%s" % message.token.tag] = str(exc)
        elif isinstance(message, BroadcastMessage):
            self._on_broadcast(message)
        else:
            raise ProtocolStateError(
                "subscriber cannot handle %s" % type(message).__name__
            )

    def _on_condition_list(self, sender: str, message: ConditionList) -> None:
        if message.attribute not in self.subscriber.attribute_tags():
            # An unsolicited list for an attribute we hold no token for
            # (register_attribute checks the wallet before querying, so this
            # is remote confusion): ignore rather than crash mid-pump.
            return
        outcomes = self.results.setdefault(message.attribute, {})
        for condition in message.conditions:
            if condition.name != message.attribute:
                continue  # a confused/hostile peer's stray condition: ignore
            key = condition.key()
            if (sender, key) in self._sessions:
                continue  # a session is already in flight; let it finish
            if self.reuse_css and key in self.subscriber.css_store:
                # A durable CSS from a previous run: the publisher's table
                # still holds the matching cell, so registration is already
                # complete -- zero frames, zero unicast.
                outcomes[key] = True
                continue
            session = SubscriberRegistrationSession(
                self.subscriber, condition, rng=self.subscriber.rng
            )
            self._sessions[(sender, key)] = session
            outcomes.setdefault(key, False)
            self._send(sender, session.start(), note=key)

    def _on_session_frame(
        self, sender: str, frame: bytes, message
    ) -> None:
        session = self._sessions.get((sender, message.condition_key))
        if session is None:
            # A duplicate, late, or fabricated frame for a registration we
            # are not running: remote confusion, recorded and absorbed like
            # every other stray frame (never wedge the pump loop).
            self.failures.setdefault(
                "stray:%s" % message.condition_key,
                "unsolicited %s" % type(message).__name__,
            )
            return
        reply = session.handle_message(message)  # already decoded above
        if reply is not None:
            self._send(sender, reply, note=message.condition_key)
        if session.done:
            del self._sessions[(sender, message.condition_key)]
            self.results[session.condition.name][session.condition_key] = bool(
                session.succeeded
            )
            if session.failure_reason:
                self.failures[session.condition_key] = session.failure_reason

    def _on_broadcast(self, message: BroadcastMessage) -> None:
        package = message.package
        self.packages.append(package)
        registry = get_registry()
        try:
            with stage("decrypt", document=package.document):
                with registry.timer("subscriber.decrypt_seconds"):
                    self.documents[package.document] = self.subscriber.receive(
                        package
                    )
        except ReproError as exc:
            # A parseable-but-inconsistent package (e.g. a malformed ACV
            # header) must fail this broadcast, never the pump loop.
            self.documents[package.document] = {}
            self.failures["broadcast:%s" % package.document] = str(exc)
            registry.inc("subscriber.decrypt.error")
        else:
            # Outcome counters: a decrypt that yields no plaintext is not
            # an error -- the subscriber simply holds no matching key.
            if self.documents[package.document]:
                registry.inc("subscriber.decrypt.ok")
            else:
                registry.inc("subscriber.decrypt.miss")
        if self.span_writer is not None:
            self.span_writer.span(
                "broadcast_received", trace=current_trace(),
                span=current_span() or None, ep=self.name,
                document=package.document,
                plaintexts=len(self.documents[package.document]),
            )
        self.broadcasts.append(self.documents[package.document])
        self._evict_history()

    def _evict_history(self) -> None:
        """Enforce :attr:`history_limit`: a subscriber that lives through
        millions of broadcasts must not grow memory with every one."""
        if self.history_limit is None:
            return
        while len(self.packages) > self.history_limit:
            evicted = self.packages.pop(0)
            self.broadcasts.pop(0)
            if all(kept.document != evicted.document for kept in self.packages):
                self.documents.pop(evicted.document, None)

    # -- conveniences -------------------------------------------------------

    def registering(self) -> bool:
        """True while any registration session is still in flight."""
        return bool(self._sessions)

    def latest_plaintexts(self) -> Dict[str, bytes]:
        """Plaintexts from the most recent broadcast (empty if none)."""
        if not self.packages:
            return {}
        return self.documents[self.packages[-1].document]


class IdentityManagerEndpoint(_Endpoint):
    """The IdMgr's network endpoint: token issuance over the wire.

    Requests the IdMgr must refuse (missing assertion, untrusted IdP, bad
    IdP signature) are recorded in :attr:`rejections` and dropped rather
    than raised -- one misconfigured subscriber must not abort the shared
    pump loop.  (The protocol has no token-denial message yet; the
    requester observes the missing grant, the operator reads
    ``rejections``.)
    """

    def __init__(
        self, idmgr, transport: Transport, name: str = "idmgr", persistence=None,
        ocbe_workers: int = 0,
    ):
        super().__init__(name, transport, persistence)
        self.idmgr = idmgr
        #: ``[(requester nym, attribute, reason), ...]`` of refused requests.
        self.rejections: List[tuple] = []
        self.ocbe_pool = None
        if ocbe_workers:
            from repro.ocbe.parallel import CommitPoolSetup, OcbeWorkerPool

            self.ocbe_pool = OcbeWorkerPool(
                CommitPoolSetup(idmgr.params), ocbe_workers
            )
        # id(delivery) -> ("ok", PendingIssue) | ("err", exception), staged
        # by _before_batch and consumed by _handle_delivery so token
        # commitments overlap while grants still go out in delivery order
        # (entries survive a mid-batch requeue; randomness is drawn once).
        self._staged_issues: dict = {}

    def close(self) -> None:
        """Release endpoint resources (currently: the commitment pool)."""
        if self.ocbe_pool is not None:
            self.ocbe_pool.close()

    def _before_batch(self, deliveries: Sequence[Delivery]) -> None:
        pool = self.ocbe_pool
        if pool is None:
            return
        staged = self._staged_issues
        current: dict = {}
        for delivery in deliveries:
            mark = id(delivery)
            if mark in staged:
                current[mark] = staged[mark]
                continue
            payload = delivery.payload
            if len(payload) < 4 or payload[3] != TokenRequest.TYPE_ID:
                continue
            try:
                message = decode_message(payload, self.idmgr.group)
            except SerializationError:
                continue  # _handle_delivery raises the precise error
            if not isinstance(message, TokenRequest):
                continue
            try:
                if message.decoy:
                    pending = self.idmgr.begin_decoy_issue(
                        message.nym, message.attribute, pool=pool
                    )
                else:
                    if message.assertion is None:
                        raise RegistrationError(
                            "non-decoy token request needs an assertion"
                        )
                    pending = self.idmgr.begin_issue(
                        message.nym, message.assertion, pool=pool
                    )
            except SystemError_ as exc:
                # Recorded at *handle* time, in delivery order, exactly
                # like the serial path would.
                current[mark] = ("err", exc)
            else:
                current[mark] = ("ok", pending)
        self._staged_issues = current

    def _handle_delivery(self, delivery: Delivery) -> None:
        if _frame_type(delivery.payload) is BroadcastMessage:
            return  # multicast traffic on a shared channel; skip the parse
        entry = self._staged_issues.pop(id(delivery), None)
        message = decode_message(delivery.payload, self.idmgr.group)
        if not isinstance(message, TokenRequest):
            raise ProtocolStateError(
                "identity manager cannot handle %s" % type(message).__name__
            )
        try:
            if entry is not None:
                kind, value = entry
                if kind == "err":
                    raise value
                token, x, r = self.idmgr.finish_issue(value)
            elif message.decoy:
                token, x, r = self.idmgr.issue_decoy_token(
                    message.nym, message.attribute
                )
            else:
                if message.assertion is None:
                    raise RegistrationError(
                        "non-decoy token request needs an assertion"
                    )
                token, x, r = self.idmgr.issue_token(message.nym, message.assertion)
        except SystemError_ as exc:  # covers Registration/Signature errors too
            self.rejections.append((message.nym, message.attribute, str(exc)))
            return
        self._send(
            delivery.sender,
            TokenGrant(token=token, x=x, r=r).encode(),
            note=message.attribute,
        )


def run_until_idle(
    endpoints: Sequence[_Endpoint], max_rounds: int = 10_000
) -> int:
    """Pump every endpoint until no frames remain in flight.

    This is the single-process stand-in for each entity's event loop; the
    round bound turns a protocol livelock into a loud failure.
    """
    total = 0
    for _ in range(max_rounds):
        progressed = 0
        for endpoint in endpoints:
            progressed += endpoint.pump()
        total += progressed
        if progressed == 0:
            return total
    raise SystemError_("protocol did not quiesce after %d rounds" % max_rounds)
