"""Identity providers: the origin of certified attributes.

An IdP knows its subjects' true attribute values (it is the authority for
them -- a DMV for ages, an HR system for roles) and issues signed
:class:`~repro.system.identity.AttributeAssertion` objects.  The IdMgr
trusts a configured set of IdP public keys.
"""

from __future__ import annotations

import random
from typing import Dict, Optional, Tuple

from repro.crypto.schnorr_sig import SchnorrKeyPair, SchnorrSignature
from repro.errors import SystemError_
from repro.groups.base import CyclicGroup
from repro.policy.encoding import AttributeValue
from repro.system.identity import AttributeAssertion

__all__ = ["IdentityProvider"]


class IdentityProvider:
    """Issues signed attribute assertions for registered subjects."""

    def __init__(
        self,
        name: str,
        group: CyclicGroup,
        rng: Optional[random.Random] = None,
    ):
        self.name = name
        self._keys = SchnorrKeyPair(group, rng=rng)
        self._records: Dict[Tuple[str, str], AttributeValue] = {}
        self._rng = rng

    @property
    def public_key(self):
        """Verification key the IdMgr pins."""
        return self._keys.pk

    @property
    def group(self) -> CyclicGroup:
        """The signature group."""
        return self._keys.group

    def enroll(self, subject: str, name: str, value: AttributeValue) -> None:
        """Record a subject's authoritative attribute value."""
        self._records[(subject, name)] = value

    def assert_attribute(self, subject: str, name: str) -> AttributeAssertion:
        """Issue a signed assertion for an enrolled attribute.

        Raises :class:`SystemError_` for unknown subjects/attributes -- an
        IdP never invents values.
        """
        if (subject, name) not in self._records:
            raise SystemError_(
                "IdP %r has no record of %r for subject %r"
                % (self.name, name, subject)
            )
        value = self._records[(subject, name)]
        assertion = AttributeAssertion(
            subject=subject,
            name=name,
            value=value,
            issuer=self.name,
            signature=SchnorrSignature(0, 0),  # placeholder, replaced below
        )
        signature = self._keys.sign(assertion.signing_bytes(), rng=self._rng)
        return AttributeAssertion(
            subject=subject,
            name=name,
            value=value,
            issuer=self.name,
            signature=signature,
        )

    def verify(self, assertion: AttributeAssertion) -> bool:
        """Check an assertion against this IdP's key."""
        return self._keys.verify(assertion.signing_bytes(), assertion.signature)
