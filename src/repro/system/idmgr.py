"""The Identity Manager: trusted third party issuing identity tokens.

The IdMgr (Section V-A) runs the Pedersen setup, publishes
``Param = (G, g, h)`` plus the group order and its signature key, verifies
IdP assertions, encodes attribute values into ``F_p`` and issues tokens.
It passes the opening ``(x, r)`` privately to the Sub; the token itself
reveals nothing about the value (unconditionally hiding commitment).
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.crypto.pedersen import PedersenParams
from repro.crypto.schnorr_sig import SchnorrKeyPair
from repro.errors import SignatureError, SystemError_
from repro.groups.base import CyclicGroup, GroupElement
from repro.policy.encoding import encode_value
from repro.system.identity import AttributeAssertion, IdentityToken, token_signing_bytes
from repro.system.idp import IdentityProvider

__all__ = ["IdentityManager", "PendingIssue"]


@dataclass
class PendingIssue:
    """A validated token issuance whose commitment may still be in flight.

    Produced by :meth:`IdentityManager.begin_issue` /
    :meth:`~IdentityManager.begin_decoy_issue`: the assertion is already
    verified and every random draw (``x`` for decoys, the blinding ``r``,
    the signing RNG stream) already taken, so the remaining work --
    computing ``g^x h^r``, signing, journaling -- is deterministic and
    the commitment can run on a worker pool.  ``finish_issue`` must be
    called in delivery order: that is where the token is journaled.
    """

    nym: str
    tag: str
    x: int
    r: int
    decoy: bool
    rng: Optional[random.Random]
    future: object = None
    pool: object = None


class IdentityManager:
    """Pedersen setup authority + token issuer."""

    def __init__(
        self,
        group: CyclicGroup,
        rng: Optional[random.Random] = None,
        signing_key: Optional[int] = None,
    ):
        """``signing_key`` restores a previous run's secret scalar (the
        durability layer passes it); omitted, a fresh key is drawn."""
        self.pedersen = PedersenParams(group)
        self._keys = SchnorrKeyPair(group, sk=signing_key, rng=rng)
        self._trusted_idps: Dict[str, IdentityProvider] = {}
        self._nym_counter = 0
        self._rng = rng
        #: Registry of every issued token as ``(nym, tag, decoy?)`` -- the
        #: auditable fact of issuance (the token itself lives with the Sub).
        self.issued: List[Tuple[str, str, bool]] = []
        #: Optional durability hook (:mod:`repro.store.persist`).
        self.journal = None

    # -- public parameters ---------------------------------------------------

    @property
    def params(self) -> PedersenParams:
        """The published commitment parameters ``(G, g, h)``."""
        return self.pedersen

    @property
    def public_key(self) -> GroupElement:
        """Signature verification key (published)."""
        return self._keys.pk

    @property
    def group(self) -> CyclicGroup:
        """The commitment group."""
        return self.pedersen.group

    def verify_token(self, token: IdentityToken) -> bool:
        """Anyone-with-the-public-key token verification (the Pub does this)."""
        return self._keys.verify(token.signing_bytes(), token.signature)

    # -- durable state (the secret half) -------------------------------------

    @property
    def signing_key(self) -> int:
        """The secret signing scalar (snapshot-only; never on the wire)."""
        return self._keys.sk

    @property
    def nym_counter(self) -> int:
        """How many pseudonyms have been assigned."""
        return self._nym_counter

    def restore_signing_key(self, signing_key: int) -> None:
        """Replace the key pair with a recovered secret scalar."""
        self._keys = SchnorrKeyPair(self.group, sk=signing_key)

    def restore_registry(
        self, nym_counter: int, issued: Tuple[Tuple[str, str, bool], ...]
    ) -> None:
        """Restore the pseudonym counter and issued-token registry."""
        self._nym_counter = nym_counter
        self.issued = list(issued)

    # -- administration -------------------------------------------------------

    def trust_idp(self, idp: IdentityProvider) -> None:
        """Add an IdP whose assertions this IdMgr accepts."""
        self._trusted_idps[idp.name] = idp

    def assign_pseudonym(self) -> str:
        """A fresh pseudonym (``pn-0001``, ``pn-0002``, ...)."""
        self._nym_counter += 1
        return "pn-%04d" % self._nym_counter

    # -- token issuance ---------------------------------------------------------

    def issue_decoy_token(
        self,
        nym: str,
        tag: str,
        rng: Optional[random.Random] = None,
    ) -> Tuple[IdentityToken, int, int]:
        """Issue a token committing to an out-of-range decoy value.

        Section VI-A extension: a Sub may obtain tokens "for such
        attributes whose committed values, set by the IdMgr, lie out of
        the 'normal' range of values", letting it register for attributes
        it does not actually hold -- hiding even *which attributes it has*
        from the publisher.  The decoy value is drawn uniformly above
        2**200, far outside every honest attribute domain (integer
        attributes are < 2**l <= 2**64, string encodings < 2**128), so no
        condition can accidentally be satisfied.
        """
        return self.finish_issue(self.begin_decoy_issue(nym, tag, rng=rng))

    def _record_issue(self, nym: str, tag: str, decoy: bool) -> None:
        self.issued.append((nym, tag, decoy))
        if self.journal is not None:
            self.journal.token_issued(nym, tag, decoy)

    def issue_token(
        self,
        nym: str,
        assertion: AttributeAssertion,
        rng: Optional[random.Random] = None,
    ) -> Tuple[IdentityToken, int, int]:
        """Verify the assertion and issue a token.

        Returns ``(token, x, r)`` where ``x`` is the encoded attribute
        value and ``r`` the blinding -- both go only to the Sub.
        """
        return self.finish_issue(self.begin_issue(nym, assertion, rng=rng))

    # -- two-phase issuance (the parallel endpoint path) ----------------------

    def begin_issue(
        self,
        nym: str,
        assertion: AttributeAssertion,
        rng: Optional[random.Random] = None,
        pool=None,
    ) -> PendingIssue:
        """Validate the assertion and draw all randomness (delivery order).

        With ``pool`` the commitment ``g^x h^r`` starts on a worker
        immediately; :meth:`finish_issue` waits for it (or rebuilds it
        inline if the pool died), signs, and journals.
        """
        idp = self._trusted_idps.get(assertion.issuer)
        if idp is None:
            raise SystemError_("untrusted IdP %r" % assertion.issuer)
        if not idp.verify(assertion):
            raise SignatureError("invalid IdP signature on assertion")
        x = encode_value(assertion.value)
        return self._begin(nym, assertion.name, x, decoy=False, rng=rng, pool=pool)

    def begin_decoy_issue(
        self,
        nym: str,
        tag: str,
        rng: Optional[random.Random] = None,
        pool=None,
    ) -> PendingIssue:
        """Decoy-value counterpart of :meth:`begin_issue`."""
        use_rng = rng or self._rng
        if use_rng is not None:
            x = (1 << 200) + use_rng.getrandbits(50)
        else:
            x = (1 << 200) + secrets.randbits(50)
        return self._begin(nym, tag, x, decoy=True, rng=rng, pool=pool)

    def _begin(
        self,
        nym: str,
        tag: str,
        x: int,
        decoy: bool,
        rng: Optional[random.Random],
        pool,
    ) -> PendingIssue:
        # Like the publisher's registration offers, each token gets its
        # own RNG stream seeded from the master here (in delivery order):
        # the blinding and signing nonce are then independent of how many
        # issuances are in flight, so pooled and serial runs issue
        # byte-identical tokens.
        use_rng = rng or self._rng
        if use_rng is not None:
            token_rng: Optional[random.Random] = random.Random(
                use_rng.getrandbits(64)
            )
            r = token_rng.randrange(self.pedersen.order)
        else:
            token_rng = None
            r = secrets.randbelow(self.pedersen.order)
        future = None
        if pool is not None and not pool.broken:
            future = pool.submit_commit(x, r)
        return PendingIssue(
            nym=nym, tag=tag, x=x, r=r, decoy=decoy, rng=token_rng,
            future=future, pool=pool,
        )

    def finish_issue(self, pending: PendingIssue) -> Tuple[IdentityToken, int, int]:
        """Complete a :class:`PendingIssue`: commit, sign, record, journal."""
        commitment = None
        if pending.future is not None:
            commitment = pending.pool.result(pending.future)
        if commitment is None:
            commitment = self.pedersen.commit(pending.x, pending.r)[0]
        signature = self._keys.sign(
            token_signing_bytes(pending.nym, pending.tag, commitment),
            rng=pending.rng,
        )
        token = IdentityToken(
            nym=pending.nym,
            tag=pending.tag,
            commitment=commitment,
            signature=signature,
        )
        self._record_issue(pending.nym, pending.tag, decoy=pending.decoy)
        return token, pending.x, pending.r
