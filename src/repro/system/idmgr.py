"""The Identity Manager: trusted third party issuing identity tokens.

The IdMgr (Section V-A) runs the Pedersen setup, publishes
``Param = (G, g, h)`` plus the group order and its signature key, verifies
IdP assertions, encodes attribute values into ``F_p`` and issues tokens.
It passes the opening ``(x, r)`` privately to the Sub; the token itself
reveals nothing about the value (unconditionally hiding commitment).
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Tuple

from repro.crypto.pedersen import PedersenParams
from repro.crypto.schnorr_sig import SchnorrKeyPair
from repro.errors import SignatureError, SystemError_
from repro.groups.base import CyclicGroup, GroupElement
from repro.policy.encoding import encode_value
from repro.system.identity import AttributeAssertion, IdentityToken, token_signing_bytes
from repro.system.idp import IdentityProvider

__all__ = ["IdentityManager"]


class IdentityManager:
    """Pedersen setup authority + token issuer."""

    def __init__(
        self,
        group: CyclicGroup,
        rng: Optional[random.Random] = None,
        signing_key: Optional[int] = None,
    ):
        """``signing_key`` restores a previous run's secret scalar (the
        durability layer passes it); omitted, a fresh key is drawn."""
        self.pedersen = PedersenParams(group)
        self._keys = SchnorrKeyPair(group, sk=signing_key, rng=rng)
        self._trusted_idps: Dict[str, IdentityProvider] = {}
        self._nym_counter = 0
        self._rng = rng
        #: Registry of every issued token as ``(nym, tag, decoy?)`` -- the
        #: auditable fact of issuance (the token itself lives with the Sub).
        self.issued: List[Tuple[str, str, bool]] = []
        #: Optional durability hook (:mod:`repro.store.persist`).
        self.journal = None

    # -- public parameters ---------------------------------------------------

    @property
    def params(self) -> PedersenParams:
        """The published commitment parameters ``(G, g, h)``."""
        return self.pedersen

    @property
    def public_key(self) -> GroupElement:
        """Signature verification key (published)."""
        return self._keys.pk

    @property
    def group(self) -> CyclicGroup:
        """The commitment group."""
        return self.pedersen.group

    def verify_token(self, token: IdentityToken) -> bool:
        """Anyone-with-the-public-key token verification (the Pub does this)."""
        return self._keys.verify(token.signing_bytes(), token.signature)

    # -- durable state (the secret half) -------------------------------------

    @property
    def signing_key(self) -> int:
        """The secret signing scalar (snapshot-only; never on the wire)."""
        return self._keys.sk

    @property
    def nym_counter(self) -> int:
        """How many pseudonyms have been assigned."""
        return self._nym_counter

    def restore_signing_key(self, signing_key: int) -> None:
        """Replace the key pair with a recovered secret scalar."""
        self._keys = SchnorrKeyPair(self.group, sk=signing_key)

    def restore_registry(
        self, nym_counter: int, issued: Tuple[Tuple[str, str, bool], ...]
    ) -> None:
        """Restore the pseudonym counter and issued-token registry."""
        self._nym_counter = nym_counter
        self.issued = list(issued)

    # -- administration -------------------------------------------------------

    def trust_idp(self, idp: IdentityProvider) -> None:
        """Add an IdP whose assertions this IdMgr accepts."""
        self._trusted_idps[idp.name] = idp

    def assign_pseudonym(self) -> str:
        """A fresh pseudonym (``pn-0001``, ``pn-0002``, ...)."""
        self._nym_counter += 1
        return "pn-%04d" % self._nym_counter

    # -- token issuance ---------------------------------------------------------

    def issue_decoy_token(
        self,
        nym: str,
        tag: str,
        rng: Optional[random.Random] = None,
    ) -> Tuple[IdentityToken, int, int]:
        """Issue a token committing to an out-of-range decoy value.

        Section VI-A extension: a Sub may obtain tokens "for such
        attributes whose committed values, set by the IdMgr, lie out of
        the 'normal' range of values", letting it register for attributes
        it does not actually hold -- hiding even *which attributes it has*
        from the publisher.  The decoy value is drawn uniformly above
        2**200, far outside every honest attribute domain (integer
        attributes are < 2**l <= 2**64, string encodings < 2**128), so no
        condition can accidentally be satisfied.
        """
        use_rng = rng or self._rng
        if use_rng is not None:
            x = (1 << 200) + use_rng.getrandbits(50)
        else:
            import secrets

            x = (1 << 200) + secrets.randbits(50)
        commitment, r = self.pedersen.commit(x, rng=use_rng)
        signature = self._keys.sign(
            token_signing_bytes(nym, tag, commitment), rng=use_rng
        )
        token = IdentityToken(
            nym=nym, tag=tag, commitment=commitment, signature=signature
        )
        self._record_issue(nym, tag, decoy=True)
        return token, x, r

    def _record_issue(self, nym: str, tag: str, decoy: bool) -> None:
        self.issued.append((nym, tag, decoy))
        if self.journal is not None:
            self.journal.token_issued(nym, tag, decoy)

    def issue_token(
        self,
        nym: str,
        assertion: AttributeAssertion,
        rng: Optional[random.Random] = None,
    ) -> Tuple[IdentityToken, int, int]:
        """Verify the assertion and issue a token.

        Returns ``(token, x, r)`` where ``x`` is the encoded attribute
        value and ``r`` the blinding -- both go only to the Sub.
        """
        idp = self._trusted_idps.get(assertion.issuer)
        if idp is None:
            raise SystemError_("untrusted IdP %r" % assertion.issuer)
        if not idp.verify(assertion):
            raise SignatureError("invalid IdP signature on assertion")
        x = encode_value(assertion.value)
        commitment, r = self.pedersen.commit(x, rng=rng or self._rng)
        signature = self._keys.sign(
            token_signing_bytes(nym, assertion.name, commitment),
            rng=rng or self._rng,
        )
        token = IdentityToken(
            nym=nym,
            tag=assertion.name,
            commitment=commitment,
            signature=signature,
        )
        self._record_issue(nym, assertion.name, decoy=False)
        return token, x, r
