"""The CSS table ``T`` maintained by the publisher (Table I).

Rows are pseudonyms, columns are attribute-condition keys, cells are the
delivered conditional subscription secrets.  The table is the publisher's
*only* per-subscriber state and must be protected (Section V-B); all
broadcast keying material is derived from it.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set

from repro.errors import GKMError

__all__ = ["CssTable"]


class CssTable:
    """nym x condition -> CSS bytes, with the queries the GKM layer needs."""

    def __init__(self) -> None:
        self._rows: Dict[str, Dict[str, bytes]] = {}

    # -- mutation (registration / revocation / update) ---------------------

    def set(self, nym: str, condition_key: str, css: bytes) -> None:
        """Insert or overwrite a CSS (overwrite = credential update)."""
        self._rows.setdefault(nym, {})[condition_key] = css

    def remove_cell(self, nym: str, condition_key: str) -> bool:
        """Credential revocation: drop one CSS.  Returns True if present."""
        row = self._rows.get(nym)
        if row and condition_key in row:
            del row[condition_key]
            if not row:
                del self._rows[nym]
            return True
        return False

    def remove_row(self, nym: str) -> bool:
        """Subscription revocation: drop a pseudonym entirely."""
        return self._rows.pop(nym, None) is not None

    # -- queries -----------------------------------------------------------

    def get(self, nym: str, condition_key: str) -> bytes:
        """The CSS for a cell; raises :class:`GKMError` when absent."""
        try:
            return self._rows[nym][condition_key]
        except KeyError:
            raise GKMError(
                "no CSS for nym=%r condition=%r" % (nym, condition_key)
            ) from None

    def has(self, nym: str, condition_key: str) -> bool:
        """Cell-presence test."""
        return condition_key in self._rows.get(nym, {})

    def pseudonyms(self) -> List[str]:
        """All pseudonyms with at least one CSS."""
        return sorted(self._rows)

    def pseudonyms_with(self, condition_keys: Sequence[str]) -> List[str]:
        """Pseudonyms holding CSSs for *all* the given conditions.

        This is the paper's ``SELECT * FROM T WHERE 'cond' <> NULL`` query
        generalised to a conjunction -- it computes the set ``U_k`` for a
        policy ``acp_k``.
        """
        return sorted(
            nym
            for nym, row in self._rows.items()
            if all(key in row for key in condition_keys)
        )

    def css_row(self, nym: str, condition_keys: Sequence[str]) -> tuple:
        """The ordered CSS tuple for one (policy, subscriber) matrix row."""
        return tuple(self.get(nym, key) for key in condition_keys)

    def rows_for_policies(
        self, policy_keys: Sequence[Sequence[str]]
    ) -> List[List[tuple]]:
        """The ACV matrix rows for *many* policies in one table pass.

        Returns one bucket per entry of ``policy_keys``: the ordered CSS
        tuples of every pseudonym qualified for that policy, pseudonyms
        sorted -- exactly ``[self.css_row(nym, keys) for nym in
        self.pseudonyms_with(keys)]`` per policy, but the table is walked
        once instead of once per policy.  This is the per-broadcast row
        setup of :meth:`repro.system.publisher.Publisher.publish`; under
        churn it runs after every membership change, so the constant
        factor matters.
        """
        buckets: List[List[tuple]] = [[] for _ in policy_keys]
        for nym in sorted(self._rows):
            row = self._rows[nym]
            for bucket, keys in zip(buckets, policy_keys):
                cells = []
                for key in keys:
                    css = row.get(key)
                    if css is None:
                        break
                    cells.append(css)
                else:
                    bucket.append(tuple(cells))
        return buckets

    def rows(self) -> tuple:
        """The full table as nested tuples (the snapshot encoding's view):
        ``((nym, ((condition_key, css), ...)), ...)``, sorted both ways."""
        return tuple(
            (nym, tuple(sorted(self._rows[nym].items())))
            for nym in self.pseudonyms()
        )

    def condition_keys(self) -> List[str]:
        """All condition keys appearing anywhere in the table."""
        keys: Set[str] = set()
        for row in self._rows.values():
            keys.update(row)
        return sorted(keys)

    def __len__(self) -> int:
        return len(self._rows)

    def cell_count(self) -> int:
        """Total number of stored CSSs."""
        return sum(len(row) for row in self._rows.values())

    # -- presentation ----------------------------------------------------------

    def render(self, condition_keys: Optional[Iterable[str]] = None) -> str:
        """An ASCII rendering in the style of the paper's Table I.

        CSS values are shown as short hex prefixes ("--" for absent cells).
        """
        keys = list(condition_keys) if condition_keys else self.condition_keys()
        header = ["nym"] + keys
        widths = [max(len(h), 10) for h in header]
        lines = [" | ".join(h.ljust(w) for h, w in zip(header, widths))]
        lines.append("-+-".join("-" * w for w in widths))
        for nym in self.pseudonyms():
            row = self._rows[nym]
            cells = [nym] + [
                row[k][:4].hex() if k in row else "--" for k in keys
            ]
            lines.append(" | ".join(c.ljust(w) for c, w in zip(cells, widths)))
        return "\n".join(lines)
