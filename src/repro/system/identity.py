"""Identity tokens and attribute assertions.

An identity token (Section V-A) is ``IT = (nym, id-tag, c, sigma)``: a
pseudonym, an attribute tag, a Pedersen commitment to the attribute value
and the IdMgr's signature over the triple.  The value itself never appears
in the token -- that is the privacy core of the system.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import Optional

from repro.crypto.pedersen import PedersenCommitment
from repro.crypto.schnorr_sig import SchnorrSignature
from repro.policy.encoding import AttributeValue

__all__ = ["AttributeAssertion", "IdentityToken", "token_signing_bytes"]


@dataclass(frozen=True)
class AttributeAssertion:
    """An IdP's certified statement "subject's <name> is <value>".

    This models the driver's license of Example 1: the Sub shows it to the
    IdMgr, who checks the issuer signature and derives the committed value.
    """

    subject: str
    name: str
    value: AttributeValue
    issuer: str
    signature: SchnorrSignature

    def signing_bytes(self) -> bytes:
        """Canonical bytes covered by the issuer signature."""
        return b"repro/assertion" + b"|".join(
            part.encode("utf-8")
            for part in (self.subject, self.name, str(self.value), self.issuer)
        )


def token_signing_bytes(nym: str, tag: str, commitment: PedersenCommitment) -> bytes:
    """Canonical bytes the IdMgr signs for a token."""
    nym_raw = nym.encode("utf-8")
    tag_raw = tag.encode("utf-8")
    return (
        b"repro/identity-token"
        + struct.pack(">H", len(nym_raw))
        + nym_raw
        + struct.pack(">H", len(tag_raw))
        + tag_raw
        + commitment.to_bytes()
    )


@dataclass(frozen=True)
class IdentityToken:
    """``(nym, id-tag, c, sigma)`` -- the Sub's registered identity."""

    nym: str
    tag: str
    commitment: PedersenCommitment
    signature: SchnorrSignature

    def signing_bytes(self) -> bytes:
        """The bytes the IdMgr's signature covers."""
        return token_signing_bytes(self.nym, self.tag, self.commitment)

    def byte_size(self) -> int:
        """Approximate wire size (commitment + signature + strings)."""
        sig_len = 2 * ((max(self.signature.e, self.signature.s).bit_length() + 7) // 8)
        return len(self.signing_bytes()) + sig_len

    def __repr__(self) -> str:
        return "IdentityToken(nym=%r, tag=%r)" % (self.nym, self.tag)
