"""Identity tokens and attribute assertions.

An identity token (Section V-A) is ``IT = (nym, id-tag, c, sigma)``: a
pseudonym, an attribute tag, a Pedersen commitment to the attribute value
and the IdMgr's signature over the triple.  The value itself never appears
in the token -- that is the privacy core of the system.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass

from repro.crypto.pedersen import PedersenCommitment
from repro.crypto.schnorr_sig import SchnorrSignature
from repro.errors import SerializationError
from repro.groups.base import CyclicGroup
from repro.policy.encoding import AttributeValue
from repro.wire.codec import (
    Cursor,
    pack_element,
    pack_scalar,
    pack_str,
    pack_u8,
    read_element,
)

__all__ = [
    "AttributeAssertion",
    "IdentityToken",
    "token_signing_bytes",
    "pack_attribute_value",
    "read_attribute_value",
]


def pack_attribute_value(value: AttributeValue) -> bytes:
    """An attribute value: tag 0 = signed int, tag 1 = string."""
    if isinstance(value, bool) or not isinstance(value, (int, str)):
        raise SerializationError("attribute value must be int or str")
    if isinstance(value, int):
        return pack_u8(0) + pack_u8(1 if value < 0 else 0) + pack_scalar(abs(value))
    return pack_u8(1) + pack_str(value)


def read_attribute_value(cursor: Cursor) -> AttributeValue:
    tag = cursor.read_u8()
    if tag == 0:
        negative = cursor.read_bool()  # rejects non-canonical sign bytes
        magnitude = cursor.read_scalar()
        if negative and magnitude == 0:
            raise SerializationError("non-canonical negative zero")
        return -magnitude if negative else magnitude
    if tag == 1:
        return cursor.read_str()
    raise SerializationError("unknown attribute value tag %d" % tag)


def _pack_signature(signature: SchnorrSignature) -> bytes:
    """Length-delimited signature scalars.

    Only used where transcript sizes are *not* privacy-relevant (IdP
    assertions travel on the trusted Sub--IdMgr channel); identity tokens
    use the fixed-width group encoding so registration transcripts have
    value-independent sizes.
    """
    return pack_scalar(signature.e) + pack_scalar(signature.s)


def _read_signature(cursor: Cursor) -> SchnorrSignature:
    return SchnorrSignature(cursor.read_scalar(), cursor.read_scalar())


@dataclass(frozen=True)
class AttributeAssertion:
    """An IdP's certified statement "subject's <name> is <value>".

    This models the driver's license of Example 1: the Sub shows it to the
    IdMgr, who checks the issuer signature and derives the committed value.
    """

    subject: str
    name: str
    value: AttributeValue
    issuer: str
    signature: SchnorrSignature

    def signing_bytes(self) -> bytes:
        """Canonical bytes covered by the issuer signature."""
        return b"repro/assertion" + b"|".join(
            part.encode("utf-8")
            for part in (self.subject, self.name, str(self.value), self.issuer)
        )

    def to_bytes(self) -> bytes:
        """Wire encoding for the Sub -> IdMgr token request."""
        return (
            pack_str(self.subject)
            + pack_str(self.name)
            + pack_attribute_value(self.value)
            + pack_str(self.issuer)
            + _pack_signature(self.signature)
        )

    @classmethod
    def from_bytes(cls, data: bytes) -> "AttributeAssertion":
        cursor = Cursor(data)
        assertion = cls.read_from(cursor)
        cursor.expect_end()
        return assertion

    @classmethod
    def read_from(cls, cursor: Cursor) -> "AttributeAssertion":
        return cls(
            subject=cursor.read_str(),
            name=cursor.read_str(),
            value=read_attribute_value(cursor),
            issuer=cursor.read_str(),
            signature=_read_signature(cursor),
        )


def token_signing_bytes(nym: str, tag: str, commitment: PedersenCommitment) -> bytes:
    """Canonical bytes the IdMgr signs for a token."""
    nym_raw = nym.encode("utf-8")
    tag_raw = tag.encode("utf-8")
    return (
        b"repro/identity-token"
        + struct.pack(">H", len(nym_raw))
        + nym_raw
        + struct.pack(">H", len(tag_raw))
        + tag_raw
        + commitment.to_bytes()
    )


@dataclass(frozen=True)
class IdentityToken:
    """``(nym, id-tag, c, sigma)`` -- the Sub's registered identity."""

    nym: str
    tag: str
    commitment: PedersenCommitment
    signature: SchnorrSignature

    def signing_bytes(self) -> bytes:
        """The bytes the IdMgr's signature covers."""
        return token_signing_bytes(self.nym, self.tag, self.commitment)

    def to_bytes(self) -> bytes:
        """Canonical wire encoding.

        Signature scalars use the *fixed* width of the commitment group, so
        every token for the same (nym, tag, group) has the same size -- the
        registration transcript must not leak through length variation.
        """
        scalar_len = self.commitment.value.group.scalar_byte_length()
        return (
            pack_str(self.nym)
            + pack_str(self.tag)
            + pack_element(self.commitment.value)
            + self.signature.to_bytes(scalar_len)
        )

    @classmethod
    def from_bytes(cls, data: bytes, group: CyclicGroup) -> "IdentityToken":
        cursor = Cursor(data)
        token = cls.read_from(cursor, group)
        cursor.expect_end()
        return token

    @classmethod
    def read_from(cls, cursor: Cursor, group: CyclicGroup) -> "IdentityToken":
        nym = cursor.read_str()
        tag = cursor.read_str()
        commitment = PedersenCommitment(read_element(cursor, group))
        scalar_len = group.scalar_byte_length()
        raw_sig = cursor.take(2 * scalar_len)
        return cls(
            nym=nym,
            tag=tag,
            commitment=commitment,
            signature=SchnorrSignature.from_bytes(raw_sig, scalar_len),
        )

    def byte_size(self) -> int:
        """Exact wire size: ``len(self.to_bytes())``."""
        return len(self.to_bytes())

    def __repr__(self) -> str:
        return "IdentityToken(nym=%r, tag=%r)" % (self.nym, self.tag)
