"""Message transports: routing bytes between entities, with accounting.

The seed version of this module was an accounting *log*; it is now a real
router.  :class:`InMemoryTransport` keeps one FIFO inbox per entity and
delivers opaque byte payloads, so publisher and subscriber can run as
independent endpoints that communicate exclusively through serialized
messages -- the same call pattern a socket or HTTP backend would expose.
The :class:`Transport` protocol pins down that surface so such a backend
can slot in without touching the session layer.

The accounting remains a layer on top of delivery: every transmission is
recorded as a :class:`Message` (direction, kind, size), which keeps the
paper's bandwidth claims testable (O(l'N) broadcast overhead, zero unicast
on rekey) and doubles as the privacy-audit log -- everything the publisher
ever "sees" crossed this boundary.

``broadcast`` models the paper's multicast: one accounted transmission
(receiver ``"*"``), delivered into every registered inbox.
"""

from __future__ import annotations

from collections import defaultdict, deque
from dataclasses import dataclass
from typing import (
    AbstractSet,
    Deque,
    Dict,
    List,
    Optional,
    Protocol,
    Tuple,
    runtime_checkable,
)

from repro.errors import SystemError_
from repro.obs.trace import current_trace

__all__ = ["Message", "Delivery", "Transport", "InMemoryTransport", "BROADCAST"]

#: The pseudo-receiver used to account one multicast transmission.
BROADCAST = "*"


@dataclass(frozen=True)
class Message:
    """One recorded transmission (the accounting view)."""

    sender: str
    receiver: str
    kind: str
    size: int
    note: str = ""


@dataclass(frozen=True)
class Delivery:
    """One queued payload awaiting pickup (the routing view).

    ``trace`` is the observability trace id that rode the wire frame
    (see :mod:`repro.obs.trace`); ``b""`` when the transmission was
    untraced, so pre-trace comparisons stay field-for-field identical.
    """

    sender: str
    receiver: str
    kind: str
    payload: bytes
    note: str = ""
    trace: bytes = b""


@runtime_checkable
class Transport(Protocol):
    """What the session/facade layer requires of any message backend.

    Implementations route opaque ``bytes`` between named entities; they
    must preserve per-sender ordering but need not provide any global
    order.  A socket/HTTP backend implements exactly these methods (all
    five -- ``requeue`` included: endpoints call it on handler failure).
    """

    def deliver(
        self, sender: str, receiver: str, kind: str, payload: bytes, note: str = ""
    ) -> None:
        """Enqueue ``payload`` into ``receiver``'s inbox."""
        ...

    def broadcast(
        self, sender: str, kind: str, payload: bytes, note: str = ""
    ) -> None:
        """Deliver one payload to every registered entity except ``sender``."""
        ...

    def poll(self, entity: str, limit: Optional[int] = None) -> List[Delivery]:
        """Drain (up to ``limit``) pending deliveries for ``entity``."""
        ...

    def requeue(self, entity: str, deliveries: List[Delivery]) -> None:
        """Push already-polled deliveries back to the *front* of the inbox
        (in order) -- used when a handler fails mid-batch."""
        ...

    def register(self, entity: str) -> None:
        """Create ``entity``'s inbox (broadcasts only reach registered names)."""
        ...


class InMemoryTransport:
    """In-process router with byte accounting.

    Routing: per-entity FIFO inboxes of :class:`Delivery`.  Accounting:
    the historical :class:`Message` log and per-channel byte counters,
    preserved verbatim from the seed API (including the accounting-only
    :meth:`send` used by older callers and tests).
    """

    def __init__(self) -> None:
        self.messages: List[Message] = []
        self._bytes: Dict[Tuple[str, str], int] = defaultdict(int)
        self._inboxes: Dict[str, Deque[Delivery]] = {}

    # -- routing ------------------------------------------------------------

    def register(self, entity: str) -> None:
        """Idempotently create an inbox for ``entity``."""
        self._inboxes.setdefault(entity, deque())

    def entities(self) -> List[str]:
        """All registered entity names."""
        return sorted(self._inboxes)

    def registered(self, entity: str) -> bool:
        """Whether ``entity`` has an inbox."""
        return entity in self._inboxes

    def entity_count(self) -> int:
        """How many inboxes exist (the state a router must bound)."""
        return len(self._inboxes)

    @staticmethod
    def _coerce_payload(payload) -> bytes:
        if not isinstance(payload, (bytes, bytearray)):
            raise SystemError_(
                "transport payloads must be bytes, got %s" % type(payload).__name__
            )
        return bytes(payload)

    def deliver(
        self, sender: str, receiver: str, kind: str, payload: bytes, note: str = ""
    ) -> None:
        """Route ``payload`` to ``receiver`` and account the transmission."""
        payload = self._coerce_payload(payload)
        self.register(sender)
        self.register(receiver)
        self.send(sender, receiver, kind, len(payload), note=note)
        self._inboxes[receiver].append(
            Delivery(sender=sender, receiver=receiver, kind=kind, payload=payload,
                     note=note, trace=current_trace())
        )

    def broadcast(
        self, sender: str, kind: str, payload: bytes, note: str = "",
        exclude: Optional[AbstractSet[str]] = None,
    ) -> None:
        """One multicast: accounted once, delivered to every other inbox.

        ``exclude`` suppresses local inbox delivery for names reached by
        some other fan-out path (the broker's relay-bound entities, which
        receive the multicast through their relay link instead); the
        single accounted transmission is unchanged.
        """
        payload = self._coerce_payload(payload)
        self.register(sender)
        self.send(sender, BROADCAST, kind, len(payload), note=note)
        skip = exclude if exclude is not None else frozenset()
        trace = current_trace()
        for receiver, inbox in self._inboxes.items():
            if receiver != sender and receiver not in skip:
                inbox.append(
                    Delivery(sender=sender, receiver=receiver, kind=kind,
                             payload=payload, note=note, trace=trace)
                )

    def poll(self, entity: str, limit: Optional[int] = None) -> List[Delivery]:
        """Drain pending deliveries for ``entity`` (FIFO)."""
        inbox = self._inboxes.get(entity)
        if not inbox:
            return []
        count = len(inbox) if limit is None else min(limit, len(inbox))
        return [inbox.popleft() for _ in range(count)]

    def requeue(self, entity: str, deliveries: List[Delivery]) -> None:
        """Return unprocessed deliveries to the front of the inbox, keeping
        their original order.  Not accounted: the bytes already were."""
        inbox = self._inboxes.setdefault(entity, deque())
        inbox.extendleft(reversed(deliveries))

    def pending(self, entity: Optional[str] = None) -> int:
        """Queued deliveries for one entity, or across the whole router."""
        if entity is not None:
            return len(self._inboxes.get(entity, ()))
        return sum(len(inbox) for inbox in self._inboxes.values())

    # -- accounting ---------------------------------------------------------

    def send(
        self, sender: str, receiver: str, kind: str, size: int, note: str = ""
    ) -> None:
        """Record a transmission of ``size`` bytes (accounting only)."""
        self.messages.append(
            Message(sender=sender, receiver=receiver, kind=kind, size=size, note=note)
        )
        self._bytes[(sender, receiver)] += size

    def bytes_between(self, sender: str, receiver: str) -> int:
        """Total bytes sent on one directed channel."""
        return self._bytes[(sender, receiver)]

    def bytes_sent_by(self, sender: str) -> int:
        """Total bytes originated by an entity."""
        return sum(
            size for (s, _), size in self._bytes.items() if s == sender
        )

    def bytes_received_by(self, receiver: str) -> int:
        """Total bytes delivered to an entity."""
        return sum(
            size for (_, r), size in self._bytes.items() if r == receiver
        )

    def messages_seen_by(self, entity: str) -> List[Message]:
        """The complete view of one entity (sent + received)."""
        return [
            m for m in self.messages if m.sender == entity or m.receiver == entity
        ]

    def kinds_count(self) -> Dict[str, int]:
        """Message counts per kind."""
        counts: Dict[str, int] = defaultdict(int)
        for m in self.messages:
            counts[m.kind] += 1
        return dict(counts)

    def reset(self) -> None:
        """Clear the log, counters and all inboxes."""
        self.messages.clear()
        self._bytes.clear()
        self._inboxes.clear()
