"""An accounting in-memory transport.

The paper's bandwidth claims (O(l'N) broadcast overhead, zero unicast on
rekey) become testable by routing every inter-entity message through this
transport: it records direction, kind and size, and exposes per-channel
byte counters.  It also doubles as the privacy-audit log -- everything the
publisher ever "sees" is a message recorded here, so tests can assert the
publisher's view is independent of subscribers' attribute values.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

__all__ = ["Message", "InMemoryTransport"]


@dataclass(frozen=True)
class Message:
    """One recorded transmission."""

    sender: str
    receiver: str
    kind: str
    size: int
    note: str = ""


class InMemoryTransport:
    """Records messages and aggregates byte counts."""

    def __init__(self) -> None:
        self.messages: List[Message] = []
        self._bytes: Dict[Tuple[str, str], int] = defaultdict(int)

    def send(
        self, sender: str, receiver: str, kind: str, size: int, note: str = ""
    ) -> None:
        """Record a message of ``size`` bytes."""
        self.messages.append(
            Message(sender=sender, receiver=receiver, kind=kind, size=size, note=note)
        )
        self._bytes[(sender, receiver)] += size

    def bytes_between(self, sender: str, receiver: str) -> int:
        """Total bytes sent on one directed channel."""
        return self._bytes[(sender, receiver)]

    def bytes_sent_by(self, sender: str) -> int:
        """Total bytes originated by an entity."""
        return sum(
            size for (s, _), size in self._bytes.items() if s == sender
        )

    def bytes_received_by(self, receiver: str) -> int:
        """Total bytes delivered to an entity."""
        return sum(
            size for (_, r), size in self._bytes.items() if r == receiver
        )

    def messages_seen_by(self, entity: str) -> List[Message]:
        """The complete view of one entity (sent + received)."""
        return [
            m for m in self.messages if m.sender == entity or m.receiver == entity
        ]

    def kinds_count(self) -> Dict[str, int]:
        """Message counts per kind."""
        counts: Dict[str, int] = defaultdict(int)
        for m in self.messages:
            counts[m.kind] += 1
        return dict(counts)

    def reset(self) -> None:
        """Clear the log and counters."""
        self.messages.clear()
        self._bytes.clear()
