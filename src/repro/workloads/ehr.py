"""The paper's healthcare scenario (Section V-C.2, Example 4).

A hospital data center broadcasts ``EHR.xml``; employees hold ``role`` and
``level`` attributes; six access control policies carve the record into
six policy configurations.  :func:`build_hospital` assembles the complete
running system -- IdP, IdMgr, Publisher and one Subscriber per employee --
and registers everyone following the privacy practice of Section V-B.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.documents.model import Document, document_from_xml
from repro.gkm.acv import FAST_FIELD
from repro.groups import default_group
from repro.groups.base import CyclicGroup
from repro.mathx.field import PrimeField
from repro.policy.acp import AccessControlPolicy, parse_policy
from repro.policy.encoding import AttributeValue
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.registration import register_all_attributes
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport

__all__ = [
    "EHR_XML",
    "EHR_SUBDOCUMENT_TAGS",
    "EHR_POLICIES",
    "build_ehr_document",
    "build_ehr_policies",
    "HospitalScenario",
    "build_hospital",
    "DEFAULT_EMPLOYEES",
]

EHR_XML = """<PatientRecord>
  <ContactInfo>
    <Name>J. Doe</Name><Phone>555-0100</Phone><Address>12 Main St</Address>
  </ContactInfo>
  <BillingInfo>
    <Insurer>Acme Health</Insurer><AccountNo>99-1234</AccountNo>
  </BillingInfo>
  <ClinicalRecord>
    <HistoryOfPresentIllness>Recurring migraines since 2019.</HistoryOfPresentIllness>
    <PastMedicalHistory>Appendectomy (2008).</PastMedicalHistory>
    <Medication>Sumatriptan 50mg as needed.</Medication>
    <AlergiesAndAdverseReactions>Penicillin rash.</AlergiesAndAdverseReactions>
    <FamilyHistory>Father: hypertension.</FamilyHistory>
    <SocialHistory>Non-smoker; occasional wine.</SocialHistory>
    <PhysicalExams>BP 118/76; BMI 23.4; skin test negative.</PhysicalExams>
    <LabRecords>MRI 2024-11: unremarkable. CBC normal.</LabRecords>
    <Plan>Continue current medication; neurology follow-up in 6 months.</Plan>
  </ClinicalRecord>
</PatientRecord>"""

#: The XML tags Example 4 protects individually.
EHR_SUBDOCUMENT_TAGS = (
    "ContactInfo",
    "BillingInfo",
    "Medication",
    "PhysicalExams",
    "LabRecords",
    "Plan",
)

#: (subject expression, protected tags) -- acp1..acp6 of Example 4.
EHR_POLICIES: Tuple[Tuple[str, Tuple[str, ...]], ...] = (
    ('role = "rec"', ("ContactInfo",)),
    ('role = "cas"', ("BillingInfo",)),
    ('role = "doc"', ("Medication", "PhysicalExams", "LabRecords", "Plan")),
    (
        'role = "nur" AND level >= 59',
        ("ContactInfo", "Medication", "PhysicalExams", "LabRecords", "Plan"),
    ),
    ('role = "dat"', ("ContactInfo", "LabRecords")),
    ('role = "pha"', ("BillingInfo", "Medication")),
)

#: Default staff: (name, role, level).  The level-58 nurse reproduces the
#: paper's "nurse of level 58 satisfies neither acp3 nor acp4" walk-through.
DEFAULT_EMPLOYEES: Tuple[Tuple[str, str, int], ...] = (
    ("alice", "rec", 40),
    ("bob", "cas", 45),
    ("carol", "doc", 70),
    ("dave", "nur", 61),
    ("erin", "nur", 58),
    ("frank", "dat", 50),
    ("grace", "pha", 55),
)


def build_ehr_document() -> Document:
    """EHR.xml segmented along the marked tags (plus the ``_rest`` residue).

    Note: in Example 4 the paper's acp3 grants doctors the whole
    ``ClinicalRecord``; the configuration algebra is unchanged if we list
    the four protected leaf tags explicitly, which keeps one policy per
    subdocument mapping identical to the paper's Pc1..Pc6.
    """
    return document_from_xml("EHR.xml", EHR_XML, list(EHR_SUBDOCUMENT_TAGS))


def build_ehr_policies() -> List[AccessControlPolicy]:
    """acp1..acp6 of Example 4."""
    return [
        parse_policy(subject, objects, "EHR.xml")
        for subject, objects in EHR_POLICIES
    ]


@dataclass
class HospitalScenario:
    """A fully wired hospital: entities, staff and the broadcast document."""

    idp: IdentityProvider
    idmgr: IdentityManager
    publisher: Publisher
    subscribers: Dict[str, Subscriber]
    employees: Dict[str, Dict[str, AttributeValue]]
    document: Document
    transport: InMemoryTransport
    nyms: Dict[str, str] = field(default_factory=dict)


def build_hospital(
    employees: Sequence[Tuple[str, str, int]] = DEFAULT_EMPLOYEES,
    group: Optional[CyclicGroup] = None,
    gkm_field: PrimeField = FAST_FIELD,
    rng: Optional[random.Random] = None,
    register: bool = True,
) -> HospitalScenario:
    """Assemble the Example-4 system end to end.

    With ``register=True`` every employee registers each token for every
    matching condition (the Section V-B privacy practice), so the CSS
    table mirrors the paper's Table I shape.
    """
    rng = rng or random.Random(20100301)
    group = group or default_group()

    idp = IdentityProvider("hospital-hr", group, rng=rng)
    idmgr = IdentityManager(group, rng=rng)
    idmgr.trust_idp(idp)

    publisher = Publisher(
        "hospital-datacenter",
        pedersen=idmgr.params,
        idmgr_public_key=idmgr.public_key,
        gkm_field=gkm_field,
        rng=rng,
    )
    for policy in build_ehr_policies():
        publisher.add_policy(policy)

    transport = InMemoryTransport()
    subscribers: Dict[str, Subscriber] = {}
    staff: Dict[str, Dict[str, AttributeValue]] = {}
    nyms: Dict[str, str] = {}

    for name, role, level in employees:
        attributes: Dict[str, AttributeValue] = {"role": role, "level": level}
        staff[name] = attributes
        for attr, value in attributes.items():
            idp.enroll(name, attr, value)
        nym = idmgr.assign_pseudonym()
        nyms[name] = nym
        sub = Subscriber(nym, publisher.params, rng=rng)
        for attr in attributes:
            assertion = idp.assert_attribute(name, attr)
            token, x, r = idmgr.issue_token(nym, assertion, rng=rng)
            sub.hold_token(token, x, r)
        subscribers[name] = sub
        if register:
            register_all_attributes(publisher, sub, transport)

    return HospitalScenario(
        idp=idp,
        idmgr=idmgr,
        publisher=publisher,
        subscribers=subscribers,
        employees=staff,
        document=build_ehr_document(),
        transport=transport,
        nyms=nyms,
    )
