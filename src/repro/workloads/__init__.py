"""Workload builders for examples, tests and benchmarks.

* :mod:`repro.workloads.ehr` -- the paper's running healthcare scenario
  (Example 4): the EHR.xml document, the six role-based policies and a
  ready-to-run hospital with enrolled employees.
* :mod:`repro.workloads.generator` -- synthetic CSS-row and policy
  generators matching the parameterisation of the evaluation section
  (user configurations, policies with a given average condition count).
"""

from repro.workloads.ehr import (
    EHR_POLICIES,
    EHR_SUBDOCUMENT_TAGS,
    EHR_XML,
    HospitalScenario,
    build_ehr_document,
    build_ehr_policies,
    build_hospital,
)
from repro.workloads.generator import (
    SyntheticPolicySet,
    make_css_rows,
    make_policy_set,
    user_configuration_rows,
)

__all__ = [
    "EHR_XML",
    "EHR_POLICIES",
    "EHR_SUBDOCUMENT_TAGS",
    "HospitalScenario",
    "build_ehr_document",
    "build_ehr_policies",
    "build_hospital",
    "SyntheticPolicySet",
    "make_css_rows",
    "make_policy_set",
    "user_configuration_rows",
]
