"""Synthetic workload generation matching the evaluation's parameters.

Section VII's group-key-management experiments use *user configurations*:
"a user configuration indicates the number of current Subs and the maximum
user limit N ... We use 25 policies, each on average containing two
conditions.  Each Sub satisfies the policy in the policy configuration
under consideration."  These helpers produce exactly those inputs for the
ACV-BGKM core API (CSS rows), plus synthetic policy sets for the
system-level sweeps.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.errors import InvalidParameterError
from repro.policy.acp import AccessControlPolicy, parse_policy

__all__ = [
    "draw_attribute_values",
    "make_css_rows",
    "make_subscriber_population",
    "user_configuration_rows",
    "SyntheticPolicySet",
    "make_policy_set",
]


def make_css_rows(
    num_rows: int,
    conditions_per_row: int = 2,
    css_bytes: int = 16,
    rng: Optional[random.Random] = None,
) -> List[Tuple[bytes, ...]]:
    """``num_rows`` CSS tuples of ``conditions_per_row`` secrets each."""
    if num_rows < 0 or conditions_per_row < 1:
        raise InvalidParameterError("invalid row shape")
    rng = rng or random.Random(0)
    return [
        tuple(
            bytes(rng.randrange(256) for _ in range(css_bytes))
            for _ in range(conditions_per_row)
        )
        for _ in range(num_rows)
    ]


def user_configuration_rows(
    max_users: int,
    subscriber_fraction: float,
    num_policies: int = 25,
    avg_conditions: int = 2,
    css_bytes: int = 16,
    rng: Optional[random.Random] = None,
) -> Tuple[List[Tuple[bytes, ...]], int]:
    """One evaluation *user configuration*.

    Returns ``(rows, N)`` where ``rows`` holds one CSS tuple per current
    subscriber (``round(max_users * fraction)`` of them) and ``N`` is the
    maximum-user capacity.  Policies only influence the tuple arity: each
    subscriber satisfies one policy whose condition count averages
    ``avg_conditions`` (alternating around the average like the paper's
    "on average two conditions").
    """
    if not 0.0 <= subscriber_fraction <= 1.0:
        raise InvalidParameterError("fraction must be in [0, 1]")
    rng = rng or random.Random(0)
    current = round(max_users * subscriber_fraction)
    rows: List[Tuple[bytes, ...]] = []
    for i in range(current):
        policy_index = i % max(num_policies, 1)
        # Alternate condition counts around the average (>=1).
        conds = max(1, avg_conditions + (1 if policy_index % 2 else -1) * (i % 2))
        if avg_conditions == 1:
            conds = 1
        rows.append(
            tuple(
                bytes(rng.randrange(256) for _ in range(css_bytes))
                for _ in range(conds)
            )
        )
    return rows, max_users


def draw_attribute_values(
    mix: Dict[str, Tuple[int, int]],
    rng: Optional[random.Random] = None,
) -> Dict[str, int]:
    """One subscriber's attribute assignment drawn from ``mix``.

    ``mix`` maps attribute name to an inclusive ``(low, high)`` integer
    range -- the *attribute mix* of a load scenario.  Every draw goes
    through the supplied ``rng`` (default: ``random.Random(0)``), never
    the module-level ``random`` functions, so two runs with the same
    seed produce bit-identical populations.
    """
    rng = rng or random.Random(0)
    values: Dict[str, int] = {}
    for name in sorted(mix):
        low, high = mix[name]
        if low > high:
            raise InvalidParameterError(
                "attribute %r has an empty range (%d, %d)" % (name, low, high)
            )
        values[name] = rng.randint(low, high)
    return values


def make_subscriber_population(
    count: int,
    mix: Dict[str, Tuple[int, int]],
    rng: Optional[random.Random] = None,
    prefix: str = "user",
    start: int = 0,
) -> Dict[str, Dict[str, int]]:
    """``count`` named subscribers with attributes drawn from ``mix``.

    Returns ``{name: {attribute: value}}`` with names
    ``<prefix><start>..<prefix><start+count-1>`` -- the population input
    of a :mod:`repro.load` scenario (``start`` lets churn phases mint
    users that never collide with the existing population).
    """
    if count < 0:
        raise InvalidParameterError("population count must be >= 0")
    rng = rng or random.Random(0)
    return {
        "%s%d" % (prefix, start + i): draw_attribute_values(mix, rng)
        for i in range(count)
    }


@dataclass(frozen=True)
class SyntheticPolicySet:
    """A generated policy set plus the attribute universe it draws from."""

    policies: Tuple[AccessControlPolicy, ...]
    attributes: Tuple[str, ...]
    document: str


def make_policy_set(
    num_policies: int,
    conditions_per_policy: int,
    subdocuments: Sequence[str],
    document: str = "doc",
    rng: Optional[random.Random] = None,
) -> SyntheticPolicySet:
    """Random conjunctive policies over a synthetic attribute universe.

    Attribute ``attr_i`` takes integer values; conditions are drawn from
    ``>=``/``<=``/``=`` with thresholds in [0, 100).  Each policy protects
    a random non-empty subset of ``subdocuments``.
    """
    if num_policies < 1 or conditions_per_policy < 1:
        raise InvalidParameterError("invalid policy-set shape")
    rng = rng or random.Random(0)
    attributes = tuple(
        "attr_%d" % i for i in range(max(4, conditions_per_policy * 2))
    )
    policies = []
    for _ in range(num_policies):
        chosen = rng.sample(attributes, conditions_per_policy)
        parts = []
        for attr in chosen:
            op = rng.choice([">=", "<=", "="])
            threshold = rng.randrange(100)
            parts.append("%s %s %d" % (attr, op, threshold))
        objects = rng.sample(
            list(subdocuments), rng.randrange(1, len(subdocuments) + 1)
        )
        policies.append(parse_policy(" AND ".join(parts), objects, document))
    return SyntheticPolicySet(
        policies=tuple(policies), attributes=attributes, document=document
    )
