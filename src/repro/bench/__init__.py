"""Measurement harness for reproducing the paper's tables and figures.

:mod:`repro.bench.figures` has one driver per evaluation artifact
(``table2``, ``fig2`` ... ``fig6``); each returns structured rows and can
print the same series the paper plots.  ``benchmarks/`` wraps these in
pytest-benchmark targets; ``examples``/EXPERIMENTS.md use them directly.
"""

from repro.bench.runner import Measurement, avg_time, format_table
from repro.bench.figures import fig2, fig3, fig4, fig5, fig6, table2

__all__ = [
    "Measurement",
    "avg_time",
    "format_table",
    "table2",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
]
