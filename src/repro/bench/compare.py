"""``python -m repro.bench.compare``: gate a bench run against a baseline.

Compares two directories of ``BENCH_<name>.json`` files (the format
:func:`repro.bench.runner.emit_bench_json` writes) and exits nonzero
when the current run *regressed*: a measurement's mean wall time grew
beyond ``--tolerance`` (default +30%), or a byte count moved beyond
``--bytes-tolerance`` (default exact -- byte counts are deterministic
under the seeded RNG policy, so any drift is a real protocol change).

Comparison rules, per benchmark name present in the current run:

* no baseline file        -> ``new`` (pass; the trajectory just started)
* ``params`` differ       -> ``params-changed`` (pass; the benchmark was
  deliberately reconfigured, times are not comparable)
* measurement label only in the baseline -> ``dropped`` (reported; fails
  only with ``--strict``, so refactors can retire measurements loudly)
* otherwise               -> ``ok`` / ``improvement`` / ``regression``

CI wires this as the ``bench-gate`` step: fresh fast-tier results vs
the previous successful run's artifacts (same hardware class, so time
tolerances are meaningful) with a fallback to the committed
``benchmarks/baselines/`` (different hardware: compare ``--fields
bytes`` only).
"""

from __future__ import annotations

import argparse
import glob
import json
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional

from repro.bench.runner import format_table
from repro.errors import InvalidParameterError

__all__ = ["CompareReport", "Delta", "compare_dirs", "compare_payloads", "main"]

#: Default allowed mean-time growth (fraction of the baseline).
DEFAULT_TOLERANCE = 0.30
#: Byte counts are deterministic: default to exact equality.
DEFAULT_BYTES_TOLERANCE = 0.0

FIELDS = ("time", "bytes")


@dataclass(frozen=True)
class Delta:
    """One compared value."""

    bench: str
    label: str
    field: str  # "time" | "bytes"
    baseline: Optional[float]
    current: Optional[float]
    status: str  # ok | improvement | regression | new | params-changed | dropped

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline


@dataclass
class CompareReport:
    """Every delta plus the gating verdict."""

    deltas: List[Delta]

    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    def dropped(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "dropped"]

    def ok(self, strict: bool = False) -> bool:
        if self.regressions():
            return False
        return not (strict and self.dropped())

    def format(self) -> str:
        rows = []
        for delta in self.deltas:
            rows.append(
                [
                    delta.bench,
                    delta.label,
                    delta.field,
                    "-" if delta.baseline is None else "%.6g" % delta.baseline,
                    "-" if delta.current is None else "%.6g" % delta.current,
                    "-" if delta.ratio is None else "%.2fx" % delta.ratio,
                    delta.status,
                ]
            )
        headers = ["bench", "label", "field", "baseline", "current", "ratio"]
        headers.append("status")
        return format_table(
            "bench comparison (current vs baseline)", headers, rows
        )


def _classify(baseline: float, current: float, tolerance: float) -> str:
    if current > baseline * (1.0 + tolerance):
        return "regression"
    if current < baseline * (1.0 - tolerance):
        return "improvement"
    return "ok"


def compare_payloads(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    tolerance: float = DEFAULT_TOLERANCE,
    bytes_tolerance: float = DEFAULT_BYTES_TOLERANCE,
    fields=FIELDS,
) -> CompareReport:
    """Compare two ``{bench name: payload}`` mappings."""
    if tolerance < 0 or bytes_tolerance < 0:
        raise InvalidParameterError("tolerances must be >= 0")
    unknown = [field for field in fields if field not in FIELDS]
    if unknown or not fields:
        raise InvalidParameterError(
            "fields must be a non-empty subset of %s" % (FIELDS,)
        )
    deltas: List[Delta] = []
    for name in sorted(current):
        fresh = current[name]
        base = baseline.get(name)
        if base is None:
            deltas.append(Delta(name, "*", "time", None, None, "new"))
            continue
        if base.get("params") != fresh.get("params"):
            deltas.append(Delta(name, "*", "time", None, None, "params-changed"))
            continue
        if "time" in fields:
            base_m = base.get("measurements", {})
            fresh_m = fresh.get("measurements", {})
            for label in sorted(set(base_m) | set(fresh_m)):
                b = base_m.get(label, {}).get("mean_s")
                c = fresh_m.get(label, {}).get("mean_s")
                if b is None:
                    deltas.append(Delta(name, label, "time", None, c, "new"))
                elif c is None:
                    deltas.append(Delta(name, label, "time", b, None, "dropped"))
                else:
                    status = _classify(b, c, tolerance)
                    deltas.append(Delta(name, label, "time", b, c, status))
        if "bytes" in fields:
            base_b = base.get("bytes", {})
            fresh_b = fresh.get("bytes", {})
            for label in sorted(set(base_b) | set(fresh_b)):
                b = base_b.get(label)
                c = fresh_b.get(label)
                if b is None:
                    deltas.append(Delta(name, label, "bytes", None, c, "new"))
                elif c is None:
                    deltas.append(Delta(name, label, "bytes", b, None, "dropped"))
                else:
                    status = _classify(b, c, bytes_tolerance)
                    deltas.append(Delta(name, label, "bytes", b, c, status))
    for name in sorted(set(baseline) - set(current)):
        # A whole benchmark file vanished from the run (renamed emitter,
        # skipped step): the bigger version of a dropped label, gated
        # the same way under --strict instead of passing silently.
        deltas.append(Delta(name, "*", "time", None, None, "dropped"))
    return CompareReport(deltas=deltas)


def load_bench_dir(path: str) -> Dict[str, dict]:
    """Read every ``BENCH_*.json`` under ``path`` (non-recursive)."""
    if not os.path.isdir(path):
        raise InvalidParameterError("%r is not a directory" % path)
    payloads: Dict[str, dict] = {}
    for file_path in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        with open(file_path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise InvalidParameterError(
                    "%r is not valid JSON: %s" % (file_path, exc)
                ) from exc
        name = payload.get("name")
        if not isinstance(name, str):
            raise InvalidParameterError("%r has no 'name' field" % file_path)
        payloads[name] = payload
    return payloads


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    tolerance: float = DEFAULT_TOLERANCE,
    bytes_tolerance: float = DEFAULT_BYTES_TOLERANCE,
    fields=FIELDS,
) -> CompareReport:
    """Directory-level :func:`compare_payloads`."""
    return compare_payloads(
        load_bench_dir(baseline_dir),
        load_bench_dir(current_dir),
        tolerance=tolerance,
        bytes_tolerance=bytes_tolerance,
        fields=fields,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Gate fresh BENCH_*.json results against a baseline.",
    )
    parser.add_argument(
        "--baseline",
        required=True,
        help="directory of baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        required=True,
        help="directory of freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed mean-time growth as a fraction "
        "(default %(default)s = +30%%)",
    )
    parser.add_argument(
        "--bytes-tolerance",
        type=float,
        default=DEFAULT_BYTES_TOLERANCE,
        help="allowed byte-count drift as a fraction (default %(default)s: exact)",
    )
    parser.add_argument(
        "--fields",
        default="time,bytes",
        help="comma-separated subset of {time,bytes} to gate",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a baseline measurement disappeared "
        "from the current run",
    )
    args = parser.parse_args(argv)

    fields = tuple(f for f in args.fields.split(",") if f)
    try:
        report = compare_dirs(
            args.baseline,
            args.current,
            tolerance=args.tolerance,
            bytes_tolerance=args.bytes_tolerance,
            fields=fields,
        )
    except InvalidParameterError as exc:
        print("bench-compare: %s" % exc, file=sys.stderr)
        return 2

    print(report.format())
    for delta in report.regressions():
        line = "REGRESSION: %s/%s %s grew %.6g -> %.6g (%.2fx)" % (
            delta.bench,
            delta.label,
            delta.field,
            delta.baseline,
            delta.current,
            delta.ratio,
        )
        print(line, file=sys.stderr)
    if args.strict:
        for delta in report.dropped():
            line = "DROPPED: %s/%s %s vanished from the current run" % (
                delta.bench,
                delta.label,
                delta.field,
            )
            print(line, file=sys.stderr)
    if not report.ok(strict=args.strict):
        return 1
    print("bench-gate: OK (%d values compared)" % len(report.deltas))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
