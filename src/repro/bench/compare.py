"""``python -m repro.bench.compare``: gate a bench run against a baseline.

Compares two directories of ``BENCH_<name>.json`` files (the format
:func:`repro.bench.runner.emit_bench_json` writes) and exits nonzero
when the current run *regressed*: a measurement's mean wall time grew
beyond ``--tolerance`` (default +30%), or a byte count moved beyond
``--bytes-tolerance`` (default exact -- byte counts are deterministic
under the seeded RNG policy, so any drift is a real protocol change).

Comparison rules, per benchmark name present in the current run:

* no baseline file        -> ``new`` (pass; the trajectory just started)
* ``params`` differ       -> ``params-changed`` (pass; the benchmark was
  deliberately reconfigured, times are not comparable)
* measurement label only in the baseline -> ``dropped`` (reported; fails
  only with ``--strict``, so refactors can retire measurements loudly)
* otherwise               -> ``ok`` / ``improvement`` / ``regression``

Noisy benchmarks (sub-millisecond phases, scheduler-sensitive socket
paths) can carry **per-benchmark tolerance overrides**:
``--tolerance-override load_smoke=0.8`` widens one benchmark,
``--tolerance-override load_smoke/total=0.5`` one measurement label
(most specific wins; same syntax for ``--bytes-tolerance-override``),
instead of widening the global gate for everyone.

``--trend DIR`` (repeatable, ordered oldest-to-newest) switches to the
**trend view**: instead of gating a pair, it renders each measurement's
mean across the whole artifact history side by side -- the quick answer
to "is this creeping up" that a pairwise last-vs-current gate can't
give.  View only; always exits 0.

CI wires this as the ``bench-gate`` step: fresh fast-tier results vs
the previous successful run's artifacts (same hardware class, so time
tolerances are meaningful) with a fallback to the committed
``benchmarks/baselines/`` (different hardware: compare ``--fields
bytes`` only).
"""

from __future__ import annotations

import argparse
import glob
import json
import math
import os
import sys
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.bench.runner import format_table
from repro.errors import InvalidParameterError

__all__ = [
    "CompareReport",
    "Delta",
    "compare_dirs",
    "compare_payloads",
    "format_trend",
    "main",
    "parse_overrides",
]

#: Default allowed mean-time growth (fraction of the baseline).
DEFAULT_TOLERANCE = 0.30
#: Byte counts are deterministic: default to exact equality.
DEFAULT_BYTES_TOLERANCE = 0.0

FIELDS = ("time", "bytes")


@dataclass(frozen=True)
class Delta:
    """One compared value."""

    bench: str
    label: str
    field: str  # "time" | "bytes"
    baseline: Optional[float]
    current: Optional[float]
    status: str  # ok | improvement | regression | new | params-changed | dropped

    @property
    def ratio(self) -> Optional[float]:
        if not self.baseline or self.current is None:
            return None
        return self.current / self.baseline


@dataclass
class CompareReport:
    """Every delta plus the gating verdict."""

    deltas: List[Delta]

    def regressions(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "regression"]

    def dropped(self) -> List[Delta]:
        return [d for d in self.deltas if d.status == "dropped"]

    def ok(self, strict: bool = False) -> bool:
        if self.regressions():
            return False
        return not (strict and self.dropped())

    def format(self) -> str:
        rows = []
        for delta in self.deltas:
            rows.append(
                [
                    delta.bench,
                    delta.label,
                    delta.field,
                    "-" if delta.baseline is None else "%.6g" % delta.baseline,
                    "-" if delta.current is None else "%.6g" % delta.current,
                    "-" if delta.ratio is None else "%.2fx" % delta.ratio,
                    delta.status,
                ]
            )
        headers = ["bench", "label", "field", "baseline", "current", "ratio"]
        headers.append("status")
        return format_table(
            "bench comparison (current vs baseline)", headers, rows
        )


def _classify(baseline: float, current: float, tolerance: float) -> str:
    if current > baseline * (1.0 + tolerance):
        return "regression"
    if current < baseline * (1.0 - tolerance):
        return "improvement"
    return "ok"


def _resolve_tolerance(
    overrides: Optional[Dict[str, float]],
    default: float,
    bench: str,
    label: str,
) -> float:
    """Most specific override wins: ``bench/label``, then ``bench``."""
    if overrides:
        for key in ("%s/%s" % (bench, label), bench):
            if key in overrides:
                return overrides[key]
    return default


def parse_overrides(pairs: Sequence[str]) -> Dict[str, float]:
    """``["name=0.5", "name/label=0.2"]`` -> an override mapping."""
    overrides: Dict[str, float] = {}
    for pair in pairs:
        key, sep, value = pair.partition("=")
        if not sep or not key:
            raise InvalidParameterError(
                "override %r must look like BENCH[/LABEL]=FRACTION" % pair
            )
        try:
            fraction = float(value)
        except ValueError as exc:
            raise InvalidParameterError(
                "override %r has a non-numeric tolerance" % pair
            ) from exc
        if not math.isfinite(fraction) or fraction < 0:
            # NaN/inf would silently disarm the gate for this benchmark
            # (every threshold comparison comes out False).
            raise InvalidParameterError(
                "override %r needs a finite tolerance >= 0" % pair
            )
        overrides[key] = fraction
    return overrides


def compare_payloads(
    baseline: Dict[str, dict],
    current: Dict[str, dict],
    tolerance: float = DEFAULT_TOLERANCE,
    bytes_tolerance: float = DEFAULT_BYTES_TOLERANCE,
    fields=FIELDS,
    tolerance_overrides: Optional[Dict[str, float]] = None,
    bytes_tolerance_overrides: Optional[Dict[str, float]] = None,
) -> CompareReport:
    """Compare two ``{bench name: payload}`` mappings.

    The override mappings key on ``"bench"`` or ``"bench/label"`` (most
    specific wins) and replace the corresponding default tolerance for
    just that value -- per-benchmark gating without a global loosening.
    """
    if tolerance < 0 or bytes_tolerance < 0:
        raise InvalidParameterError("tolerances must be >= 0")
    for overrides in (tolerance_overrides, bytes_tolerance_overrides):
        if overrides and any(
            not math.isfinite(value) or value < 0
            for value in overrides.values()
        ):
            raise InvalidParameterError(
                "tolerance overrides must be finite and >= 0"
            )
    unknown = [field for field in fields if field not in FIELDS]
    if unknown or not fields:
        raise InvalidParameterError(
            "fields must be a non-empty subset of %s" % (FIELDS,)
        )
    deltas: List[Delta] = []
    for name in sorted(current):
        fresh = current[name]
        base = baseline.get(name)
        if base is None:
            deltas.append(Delta(name, "*", "time", None, None, "new"))
            continue
        if base.get("params") != fresh.get("params"):
            deltas.append(Delta(name, "*", "time", None, None, "params-changed"))
            continue
        if "time" in fields:
            base_m = base.get("measurements", {})
            fresh_m = fresh.get("measurements", {})
            for label in sorted(set(base_m) | set(fresh_m)):
                b = base_m.get(label, {}).get("mean_s")
                c = fresh_m.get(label, {}).get("mean_s")
                if b is None:
                    deltas.append(Delta(name, label, "time", None, c, "new"))
                elif c is None:
                    deltas.append(Delta(name, label, "time", b, None, "dropped"))
                else:
                    status = _classify(
                        b, c,
                        _resolve_tolerance(
                            tolerance_overrides, tolerance, name, label
                        ),
                    )
                    deltas.append(Delta(name, label, "time", b, c, status))
        if "bytes" in fields:
            base_b = base.get("bytes", {})
            fresh_b = fresh.get("bytes", {})
            for label in sorted(set(base_b) | set(fresh_b)):
                b = base_b.get(label)
                c = fresh_b.get(label)
                if b is None:
                    deltas.append(Delta(name, label, "bytes", None, c, "new"))
                elif c is None:
                    deltas.append(Delta(name, label, "bytes", b, None, "dropped"))
                else:
                    status = _classify(
                        b, c,
                        _resolve_tolerance(
                            bytes_tolerance_overrides, bytes_tolerance,
                            name, label,
                        ),
                    )
                    deltas.append(Delta(name, label, "bytes", b, c, status))
    for name in sorted(set(baseline) - set(current)):
        # A whole benchmark file vanished from the run (renamed emitter,
        # skipped step): the bigger version of a dropped label, gated
        # the same way under --strict instead of passing silently.
        deltas.append(Delta(name, "*", "time", None, None, "dropped"))
    return CompareReport(deltas=deltas)


def load_bench_dir(path: str) -> Dict[str, dict]:
    """Read every ``BENCH_*.json`` under ``path`` (non-recursive)."""
    if not os.path.isdir(path):
        raise InvalidParameterError("%r is not a directory" % path)
    payloads: Dict[str, dict] = {}
    for file_path in sorted(glob.glob(os.path.join(path, "BENCH_*.json"))):
        with open(file_path, "r", encoding="utf-8") as handle:
            try:
                payload = json.load(handle)
            except ValueError as exc:
                raise InvalidParameterError(
                    "%r is not valid JSON: %s" % (file_path, exc)
                ) from exc
        name = payload.get("name")
        if not isinstance(name, str):
            raise InvalidParameterError("%r has no 'name' field" % file_path)
        payloads[name] = payload
    return payloads


def compare_dirs(
    baseline_dir: str,
    current_dir: str,
    tolerance: float = DEFAULT_TOLERANCE,
    bytes_tolerance: float = DEFAULT_BYTES_TOLERANCE,
    fields=FIELDS,
    tolerance_overrides: Optional[Dict[str, float]] = None,
    bytes_tolerance_overrides: Optional[Dict[str, float]] = None,
) -> CompareReport:
    """Directory-level :func:`compare_payloads`."""
    return compare_payloads(
        load_bench_dir(baseline_dir),
        load_bench_dir(current_dir),
        tolerance=tolerance,
        bytes_tolerance=bytes_tolerance,
        fields=fields,
        tolerance_overrides=tolerance_overrides,
        bytes_tolerance_overrides=bytes_tolerance_overrides,
    )


def format_trend(runs: Sequence[Tuple[str, Dict[str, dict]]]) -> str:
    """The trend view: each measurement's mean across a run history.

    ``runs`` is ordered oldest-to-newest ``(run label, payloads)``; the
    rendered table has one column per run, with time cells in
    milliseconds and byte cells exact, and ``-`` where a run lacks the
    value (a benchmark that appeared or retired mid-history).
    """
    if not runs:
        raise InvalidParameterError("trend view needs at least one run")
    keys = {
        (name, label, field)
        for _, payloads in runs
        for name, payload in payloads.items()
        for field, section in (("time", "measurements"), ("bytes", "bytes"))
        for label in payload.get(section, {})
    }
    rows = []
    for name, label, field in sorted(keys):
        cells: List[str] = [name, label, field]
        for _, payloads in runs:
            payload = payloads.get(name)
            value = None
            if payload is not None:
                if field == "time":
                    value = (
                        payload.get("measurements", {})
                        .get(label, {})
                        .get("mean_s")
                    )
                    if value is not None:
                        value = "%.3f" % (value * 1e3)
                else:
                    value = payload.get("bytes", {}).get(label)
                    if value is not None:
                        value = "%d" % value
            cells.append("-" if value is None else value)
        rows.append(cells)
    headers = ["bench", "label", "field"] + [label for label, _ in runs]
    return format_table(
        "bench trend, oldest to newest (time in ms, bytes exact)",
        headers,
        rows,
    )


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.bench.compare",
        description="Gate fresh BENCH_*.json results against a baseline.",
    )
    parser.add_argument(
        "--baseline",
        default=None,
        help="directory of baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--current",
        default=None,
        help="directory of freshly emitted BENCH_*.json files",
    )
    parser.add_argument(
        "--trend",
        action="append",
        default=[],
        metavar="DIR",
        help="trend view instead of a gate: render every measurement "
        "across these run directories (repeat, oldest first); exits 0",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=DEFAULT_TOLERANCE,
        help="allowed mean-time growth as a fraction "
        "(default %(default)s = +30%%)",
    )
    parser.add_argument(
        "--bytes-tolerance",
        type=float,
        default=DEFAULT_BYTES_TOLERANCE,
        help="allowed byte-count drift as a fraction (default %(default)s: exact)",
    )
    parser.add_argument(
        "--tolerance-override",
        action="append",
        default=[],
        metavar="BENCH[/LABEL]=FRACTION",
        help="per-benchmark (or per-measurement) time tolerance; most "
        "specific wins; repeatable",
    )
    parser.add_argument(
        "--bytes-tolerance-override",
        action="append",
        default=[],
        metavar="BENCH[/LABEL]=FRACTION",
        help="per-benchmark (or per-label) byte tolerance; repeatable",
    )
    parser.add_argument(
        "--fields",
        default="time,bytes",
        help="comma-separated subset of {time,bytes} to gate",
    )
    parser.add_argument(
        "--strict",
        action="store_true",
        help="also fail when a baseline measurement disappeared "
        "from the current run",
    )
    args = parser.parse_args(argv)

    if args.trend:
        if args.baseline or args.current:
            parser.error("--trend replaces --baseline/--current")
        try:
            runs = [
                (os.path.basename(os.path.normpath(path)) or path,
                 load_bench_dir(path))
                for path in args.trend
            ]
            print(format_trend(runs))
        except InvalidParameterError as exc:
            print("bench-compare: %s" % exc, file=sys.stderr)
            return 2
        return 0
    if not args.baseline or not args.current:
        parser.error("--baseline and --current are required (or use --trend)")

    fields = tuple(f for f in args.fields.split(",") if f)
    try:
        report = compare_dirs(
            args.baseline,
            args.current,
            tolerance=args.tolerance,
            bytes_tolerance=args.bytes_tolerance,
            fields=fields,
            tolerance_overrides=parse_overrides(args.tolerance_override),
            bytes_tolerance_overrides=parse_overrides(
                args.bytes_tolerance_override
            ),
        )
    except InvalidParameterError as exc:
        print("bench-compare: %s" % exc, file=sys.stderr)
        return 2

    print(report.format())
    for delta in report.regressions():
        line = "REGRESSION: %s/%s %s grew %.6g -> %.6g (%.2fx)" % (
            delta.bench,
            delta.label,
            delta.field,
            delta.baseline,
            delta.current,
            delta.ratio,
        )
        print(line, file=sys.stderr)
    if args.strict:
        for delta in report.dropped():
            line = "DROPPED: %s/%s %s vanished from the current run" % (
                delta.bench,
                delta.label,
                delta.field,
            )
            print(line, file=sys.stderr)
    if not report.ok(strict=args.strict):
        return 1
    print("bench-gate: OK (%d values compared)" % len(report.deltas))
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
