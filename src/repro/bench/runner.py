"""Small timing utilities shared by the figure drivers, plus the
machine-readable ``BENCH_<name>.json`` emitter that makes the perf
trajectory trackable across PRs (CI uploads the files as artifacts)."""

from __future__ import annotations

import json
import os
import re
import time
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from repro.errors import BenchError, InvalidParameterError

__all__ = [
    "Measurement",
    "avg_time",
    "bench_output_dir",
    "emit_bench_json",
    "format_table",
]

#: Bench names become file names (``BENCH_<name>.json``): keep them flat.
_NAME_RE = re.compile(r"^[A-Za-z0-9][A-Za-z0-9_.-]*$")


@dataclass(frozen=True)
class Measurement:
    """Mean/min/max of repeated timings, in seconds."""

    mean: float
    minimum: float
    maximum: float
    rounds: int

    @property
    def mean_ms(self) -> float:
        """Mean in milliseconds."""
        return self.mean * 1e3


def avg_time(fn: Callable[[], object], rounds: int = 3) -> Measurement:
    """Average wall-clock time of ``fn`` over ``rounds`` calls."""
    times: List[float] = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return Measurement(
        mean=sum(times) / len(times),
        minimum=min(times),
        maximum=max(times),
        rounds=len(times),
    )


def bench_output_dir() -> str:
    """Where ``BENCH_*.json`` files land.

    ``REPRO_BENCH_DIR`` overrides (CI sets it to the artifact directory);
    the default is the current working directory, so a local
    ``pytest benchmarks/`` run leaves its results next to the checkout.
    """
    return os.environ.get("REPRO_BENCH_DIR", ".")


def emit_bench_json(
    name: str,
    op: str,
    params: Dict[str, object],
    measurements: Dict[str, Measurement],
    bytes_counts: Optional[Dict[str, int]] = None,
    extra: Optional[Dict[str, object]] = None,
) -> str:
    """Write one benchmark's result as ``BENCH_<name>.json``; returns the path.

    The schema is deliberately flat and stable: ``op`` names what was
    measured, ``params`` the knobs, ``measurements`` maps each measured
    variant to its wall-time statistics (seconds), ``bytes`` any size
    observations.  Comparing two PRs is ``python -m repro.bench.compare``
    over two directories.

    Re-emitting an existing ``name`` atomically replaces the previous
    file: the newest run of a benchmark is its result.  Invalid inputs
    raise :class:`~repro.errors.InvalidParameterError`; output paths that
    cannot be created or written raise :class:`~repro.errors.BenchError`
    (never a bare ``OSError`` half way through a partial file).
    """
    if not _NAME_RE.match(name):
        raise InvalidParameterError(
            "bench name %r is not a safe file-name component" % name
        )
    payload: Dict[str, object] = {
        "name": name,
        "op": op,
        "params": dict(params),
        "measurements": {
            label: {
                "mean_s": m.mean,
                "min_s": m.minimum,
                "max_s": m.maximum,
                "rounds": m.rounds,
            }
            for label, m in measurements.items()
        },
    }
    if bytes_counts:
        payload["bytes"] = dict(bytes_counts)
    if extra:
        payload.update(extra)
    try:
        # Serialize up front: a params dict holding a live object must be a
        # typed error before anything touches the filesystem, not a
        # TypeError from inside json.dump over a half-written file.
        encoded = json.dumps(payload, indent=2, sort_keys=True) + "\n"
    except (TypeError, ValueError) as exc:
        raise InvalidParameterError(
            "bench %r payload is not JSON-serializable: %s" % (name, exc)
        ) from exc
    out_dir = bench_output_dir()
    path = os.path.join(out_dir, "BENCH_%s.json" % name)
    tmp = path + ".tmp"
    try:
        os.makedirs(out_dir, exist_ok=True)
        with open(tmp, "w", encoding="utf-8") as handle:
            handle.write(encoded)
        os.replace(tmp, path)
    except OSError as exc:
        raise BenchError(
            "cannot write bench result %r under %r: %s" % (name, out_dir, exc)
        ) from exc
    return path


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table (the harness's printed output)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)
