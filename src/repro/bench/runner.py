"""Small timing utilities shared by the figure drivers."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, List, Sequence

__all__ = ["Measurement", "avg_time", "format_table"]


@dataclass(frozen=True)
class Measurement:
    """Mean/min/max of repeated timings, in seconds."""

    mean: float
    minimum: float
    maximum: float
    rounds: int

    @property
    def mean_ms(self) -> float:
        """Mean in milliseconds."""
        return self.mean * 1e3


def avg_time(fn: Callable[[], object], rounds: int = 3) -> Measurement:
    """Average wall-clock time of ``fn`` over ``rounds`` calls."""
    times: List[float] = []
    for _ in range(max(rounds, 1)):
        start = time.perf_counter()
        fn()
        times.append(time.perf_counter() - start)
    return Measurement(
        mean=sum(times) / len(times),
        minimum=min(times),
        maximum=max(times),
        rounds=len(times),
    )


def format_table(
    title: str, headers: Sequence[str], rows: Sequence[Sequence[object]]
) -> str:
    """Fixed-width ASCII table (the harness's printed output)."""
    str_rows = [[_fmt(cell) for cell in row] for row in rows]
    widths = [
        max(len(str(h)), *(len(r[i]) for r in str_rows)) if str_rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    lines = [title]
    lines.append(" | ".join(str(h).ljust(w) for h, w in zip(headers, widths)))
    lines.append("-+-".join("-" * w for w in widths))
    for row in str_rows:
        lines.append(" | ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def _fmt(cell: object) -> str:
    if isinstance(cell, float):
        return "%.3f" % cell
    return str(cell)
