"""Per-figure experiment drivers (Section VII of the paper).

Every driver accepts the sweep parameters with defaults scaled for a
pure-Python run and returns a list of result rows; pass ``verbose=True``
to print the paper-style series.  The faithful parameterisation (the
paper's genus-2 group, 80-bit GKM field, N up to 1000) is available by
argument; ``benchmarks/`` and EXPERIMENTS.md state which was used.

Mapping to the paper:

* ``table2``  -- Table II, EQ-OCBE per-step cost;
* ``fig2``    -- Figure 2, GE-OCBE per-step cost vs bit length l;
* ``fig3``    -- Figure 3, ACV generation time vs N per user configuration;
* ``fig4``    -- Figure 4, key derivation time vs N;
* ``fig5``    -- Figure 5, ACV size vs N;
* ``fig6``    -- Figure 6, ACV generation/derivation vs conditions/policy.
"""

from __future__ import annotations

import random
from typing import Dict, List, Optional, Sequence

from repro.bench.runner import avg_time, format_table
from repro.crypto.pedersen import PedersenParams
from repro.gkm.acv import AcvBgkm, FAST_FIELD, PAPER_FIELD
from repro.groups import get_group
from repro.mathx.field import PrimeField
from repro.ocbe import (
    EqOCBEReceiver,
    EqOCBESender,
    EqPredicate,
    GeOCBEReceiver,
    GeOCBESender,
    GePredicate,
    OCBESetup,
)
from repro.workloads.generator import user_configuration_rows

__all__ = ["table2", "fig2", "fig3", "fig4", "fig5", "fig6"]

#: The four "user configurations" of Figures 3-5.
DEFAULT_FRACTIONS = (0.25, 0.50, 0.75, 1.00)


def _setup(group_name: str) -> OCBESetup:
    return OCBESetup(pedersen=PedersenParams(get_group(group_name)))


def table2(
    group_name: str = "paper-genus2",
    rounds: int = 5,
    message: bytes = b"conditional-subscription-secret!",
    verbose: bool = False,
    rng: Optional[random.Random] = None,
) -> Dict[str, float]:
    """Table II: EQ-OCBE per-step time (milliseconds).

    Steps as in the paper: "Create Extra Commitments (Sub)" (0 for EQ by
    construction), "Compose Envelope (Pub)", "Open Envelope (Sub)".
    """
    rng = rng or random.Random(2)
    setup = _setup(group_name)
    predicate = EqPredicate(28)
    commitment, r = setup.pedersen.commit(28, rng=rng)

    def compose_once() -> None:
        sender = EqOCBESender(setup, predicate, rng)
        compose_once.envelope = sender.compose(commitment, None, message)  # type: ignore[attr-defined]

    compose = avg_time(compose_once, rounds)
    envelope = compose_once.envelope  # type: ignore[attr-defined]

    receiver = EqOCBEReceiver(setup, predicate, 28, r, commitment, rng)
    open_t = avg_time(lambda: receiver.open(envelope), rounds)

    results = {
        "create_commitments_ms": 0.0,
        "compose_envelope_ms": compose.mean_ms,
        "open_envelope_ms": open_t.mean_ms,
    }
    if verbose:
        print(
            format_table(
                "Table II: EQ-OCBE average per-step time (group=%s)" % group_name,
                ["Computation", "Time (ms)"],
                [
                    ["Create Extra Commitments (Sub)", results["create_commitments_ms"]],
                    ["Open Envelope (Sub)", results["open_envelope_ms"]],
                    ["Compose Envelope (Pub)", results["compose_envelope_ms"]],
                ],
            )
        )
    return results


def fig2(
    ells: Sequence[int] = (5, 10, 15, 20, 25, 30, 35, 40),
    group_name: str = "nist-p192",
    rounds: int = 2,
    message: bytes = b"conditional-subscription-secret!",
    verbose: bool = False,
    rng: Optional[random.Random] = None,
) -> List[Dict[str, float]]:
    """Figure 2: GE-OCBE per-step time vs bit length ``l`` (ms).

    The paper runs the genus-2 group; the default here is the faster EC
    backend (same protocol, same O(l) scalar-multiplication scaling) --
    pass ``group_name="paper-genus2"`` for the faithful run.
    """
    rng = rng or random.Random(3)
    setup = _setup(group_name)
    rows: List[Dict[str, float]] = []
    for ell in ells:
        predicate = GePredicate(x0=3, ell=ell)
        x = rng.randrange(3, 1 << min(ell, 20))  # satisfies the predicate
        commitment, r = setup.pedersen.commit(x, rng=rng)

        def commit_once() -> None:
            receiver = GeOCBEReceiver(setup, predicate, x, r, commitment, rng)
            commit_once.aux = receiver.commitment_message()  # type: ignore[attr-defined]
            commit_once.receiver = receiver  # type: ignore[attr-defined]

        commit_t = avg_time(commit_once, rounds)
        receiver = commit_once.receiver  # type: ignore[attr-defined]
        aux = commit_once.aux  # type: ignore[attr-defined]

        def compose_once() -> None:
            sender = GeOCBESender(setup, predicate, rng)
            compose_once.envelope = sender.compose(commitment, aux, message)  # type: ignore[attr-defined]

        compose_t = avg_time(compose_once, rounds)
        envelope = compose_once.envelope  # type: ignore[attr-defined]
        open_t = avg_time(lambda: receiver.open(envelope), rounds)

        rows.append(
            {
                "ell": ell,
                "create_commitments_ms": commit_t.mean_ms,
                "compose_envelope_ms": compose_t.mean_ms,
                "open_envelope_ms": open_t.mean_ms,
            }
        )
    if verbose:
        print(
            format_table(
                "Figure 2: GE-OCBE per-step time vs l (group=%s)" % group_name,
                ["l", "Create Commitments (Sub) ms", "Compose Envelope (Pub) ms",
                 "Open Envelope (Sub) ms"],
                [
                    [r["ell"], r["create_commitments_ms"], r["compose_envelope_ms"],
                     r["open_envelope_ms"]]
                    for r in rows
                ],
            )
        )
    return rows


def _sweep_gkm(
    max_users: Sequence[int],
    fractions: Sequence[float],
    field: PrimeField,
    rounds: int,
    what: str,
    rng: Optional[random.Random],
) -> List[Dict[str, float]]:
    """Shared sweep for Figures 3, 4 and 5."""
    rng = rng or random.Random(4)
    gkm = AcvBgkm(field)
    rows_out: List[Dict[str, float]] = []
    for n in max_users:
        entry: Dict[str, float] = {"max_users": n}
        for fraction in fractions:
            css_rows, capacity = user_configuration_rows(n, fraction, rng=rng)
            if what == "generate":
                m = avg_time(
                    lambda: gkm.generate(css_rows, n_max=capacity, rng=rng), rounds
                )
                entry["%d%%" % round(fraction * 100)] = (
                    m.mean  # seconds, as in the paper's Figure 3
                )
            else:
                key, header = gkm.generate(css_rows, n_max=capacity, rng=rng)
                if what == "derive":
                    target = css_rows[0] if css_rows else (b"none",)
                    m = avg_time(lambda: gkm.derive(header, target), rounds)
                    entry["%d%%" % round(fraction * 100)] = m.mean_ms
                elif what == "size":
                    entry["%d%%" % round(fraction * 100)] = (
                        header.byte_size() / 1024.0
                    )
        rows_out.append(entry)
    return rows_out


def fig3(
    max_users: Sequence[int] = (100, 200, 300, 400, 500),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    field: PrimeField = FAST_FIELD,
    rounds: int = 1,
    verbose: bool = False,
    rng: Optional[random.Random] = None,
) -> List[Dict[str, float]]:
    """Figure 3: ACV generation time (seconds) vs N per user configuration.

    ``field=PAPER_FIELD`` runs the faithful 80-bit arithmetic (pure-Python
    kernel); the default 31-bit field uses the vectorised kernel, making
    the paper's full N=1000 sweep tractable.
    """
    rows = _sweep_gkm(max_users, fractions, field, rounds, "generate", rng)
    if verbose:
        headers = ["Max Users"] + ["%d%% Subs (s)" % round(f * 100) for f in fractions]
        print(
            format_table(
                "Figure 3: ACV generation time (field=%d bits)" % field.bit_length,
                headers,
                [
                    [r["max_users"]] + [r["%d%%" % round(f * 100)] for f in fractions]
                    for r in rows
                ],
            )
        )
    return rows


def fig4(
    max_users: Sequence[int] = (100, 200, 300, 400, 500),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    field: PrimeField = FAST_FIELD,
    rounds: int = 3,
    verbose: bool = False,
    rng: Optional[random.Random] = None,
) -> List[Dict[str, float]]:
    """Figure 4: key derivation time (milliseconds) vs N."""
    rows = _sweep_gkm(max_users, fractions, field, rounds, "derive", rng)
    if verbose:
        headers = ["Max Users"] + [
            "%d%% Subs (ms)" % round(f * 100) for f in fractions
        ]
        print(
            format_table(
                "Figure 4: key derivation time (field=%d bits)" % field.bit_length,
                headers,
                [
                    [r["max_users"]] + [r["%d%%" % round(f * 100)] for f in fractions]
                    for r in rows
                ],
            )
        )
    return rows


def fig5(
    max_users: Sequence[int] = (100, 200, 300, 400, 500),
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    field: PrimeField = PAPER_FIELD,
    verbose: bool = False,
    rng: Optional[random.Random] = None,
) -> List[Dict[str, float]]:
    """Figure 5: compressed ACV size (KB) vs N per user configuration.

    Size is a property of the header, not of timing, so the faithful
    80-bit field is the default here.
    """
    rows = _sweep_gkm(max_users, fractions, field, 1, "size", rng)
    if verbose:
        headers = ["Max Users"] + [
            "%d%% Subs (KB)" % round(f * 100) for f in fractions
        ]
        print(
            format_table(
                "Figure 5: ACV size (field=%d bits)" % field.bit_length,
                headers,
                [
                    [r["max_users"]] + [r["%d%%" % round(f * 100)] for f in fractions]
                    for r in rows
                ],
            )
        )
    return rows


def fig6(
    conditions: Sequence[int] = (1, 2, 3, 4, 5, 6, 7, 8, 9, 10),
    max_users: int = 500,
    num_policies: int = 25,
    field: PrimeField = FAST_FIELD,
    rounds: int = 1,
    verbose: bool = False,
    rng: Optional[random.Random] = None,
) -> List[Dict[str, float]]:
    """Figure 6: ACV generation and key derivation vs conditions/policy.

    N and the policy count stay fixed (500 and 25 in the paper); only the
    average number of conditions per policy -- the length of the hashed
    CSS concatenation -- varies.
    """
    rng = rng or random.Random(6)
    gkm = AcvBgkm(field)
    out: List[Dict[str, float]] = []
    for conds in conditions:
        css_rows, capacity = user_configuration_rows(
            max_users, 1.0, num_policies=num_policies, avg_conditions=conds, rng=rng
        )
        gen = avg_time(lambda: gkm.generate(css_rows, n_max=capacity, rng=rng), rounds)
        key, header = gkm.generate(css_rows, n_max=capacity, rng=rng)
        der = avg_time(lambda: gkm.derive(header, css_rows[0]), max(rounds, 3))
        out.append(
            {
                "conditions": conds,
                "generation_ms": gen.mean_ms,
                "derivation_ms": der.mean_ms,
            }
        )
    if verbose:
        print(
            format_table(
                "Figure 6: ACV generation / key derivation vs conditions per policy "
                "(N=%d, policies=%d)" % (max_users, num_policies),
                ["Avg conditions", "ACV generation (ms)", "Key derivation (ms)"],
                [
                    [r["conditions"], r["generation_ms"], r["derivation_ms"]]
                    for r in out
                ],
            )
        )
    return out
