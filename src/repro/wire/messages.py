"""Typed, versioned wire messages for the whole dissemination protocol.

Every inter-entity interaction in the system is one of the frozen message
classes below, each with a stable numeric ``TYPE_ID``, a transport
accounting ``KIND`` string, and an exact byte encoding.  :func:`encode_message`
wraps a message in the versioned frame from :mod:`repro.wire.codec`;
:func:`decode_message` is its inverse (it needs the commitment group to
validate embedded group elements).

Message flow (also in ``DESIGN.md``)::

    Sub -> IdMgr   TokenRequest        (assertion, or decoy flag)
    IdMgr -> Sub   TokenGrant          (token + private opening (x, r))
    Sub -> Pub     ConditionQuery      (attribute name)
    Pub -> Sub     ConditionList       (matching policy conditions)
    Sub -> Pub     RegistrationRequest (token + condition key)
    Pub -> Sub     RegistrationAck     (token verified, CSS minted)
    Sub -> Pub     AuxCommitments      (OCBE receiver commitments)
    Pub -> Sub     OCBEEnvelope        (OCBE sender envelope)
    Pub -> *       BroadcastMessage    (the encrypted document package)

All of a registration's per-condition messages carry ``(nym,
condition_key)`` so the publisher can interleave any number of concurrent
registrations.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional, Tuple, Type

from repro.documents.package import BroadcastPackage
from repro.errors import PolicyParseError, SerializationError
from repro.groups.base import CyclicGroup
from repro.ocbe.serial import (
    AuxMessage,
    OcbeEnvelope,
    decode_aux,
    decode_envelope,
    encode_aux,
    encode_envelope,
)
from repro.policy.condition import AttributeCondition
from repro.system.identity import (
    AttributeAssertion,
    IdentityToken,
    pack_attribute_value,
    read_attribute_value,
)
from repro.wire.codec import (
    DEFAULT_MAX_FRAME_PAYLOAD,
    Cursor,
    decode_frame,
    encode_frame,
    pack_bool,
    pack_bytes,
    pack_scalar,
    pack_str,
    pack_u16,
)

__all__ = [
    "WireMessage",
    "ConditionQuery",
    "ConditionList",
    "RegistrationRequest",
    "RegistrationAck",
    "AuxCommitments",
    "OCBEEnvelope",
    "TokenRequest",
    "TokenGrant",
    "BroadcastMessage",
    "encode_message",
    "pack_condition",
    "read_condition",
    "decode_message",
    "MESSAGE_TYPES",
]


def pack_condition(condition: AttributeCondition) -> bytes:
    return (
        pack_str(condition.name)
        + pack_str(condition.op)
        + pack_attribute_value(condition.value)
    )


def read_condition(cursor: Cursor) -> AttributeCondition:
    name = cursor.read_str()
    op = cursor.read_str()
    value = read_attribute_value(cursor)
    try:
        return AttributeCondition(name=name, op=op, value=value)
    except PolicyParseError as exc:
        # Keep the codec contract: malformed wire input is always a
        # SerializationError, whatever layer detects it.
        raise SerializationError("invalid condition on the wire: %s" % exc) from exc


class WireMessage:
    """Base class: subclasses define ``TYPE_ID``, ``KIND`` and the codec."""

    TYPE_ID: int = -1
    KIND: str = "?"

    def payload_bytes(self) -> bytes:
        raise NotImplementedError

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "WireMessage":
        raise NotImplementedError

    def encode(self, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD) -> bytes:
        """The complete frame for this message.

        The default frame-size cap (16 MiB) bounds what any peer can be
        made to buffer.  The endpoint/session layer always uses this
        default, so in practice a single message cannot exceed it --
        documents larger than the cap must be segmented
        (:mod:`repro.documents.segmentation`), which is also what the
        ACP model wants.  The parameter exists for direct codec users
        (tools, tests) working with raw frames.
        """
        return encode_frame(self.TYPE_ID, self.payload_bytes(), max_payload)


@dataclass(frozen=True)
class ConditionQuery(WireMessage):
    """Sub -> Pub: which conditions mention this attribute?"""

    attribute: str

    TYPE_ID = 1
    KIND = "condition-query"

    def payload_bytes(self) -> bytes:
        return pack_str(self.attribute)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "ConditionQuery":
        cursor = Cursor(payload)
        attribute = cursor.read_str()
        cursor.expect_end()
        return cls(attribute=attribute)


@dataclass(frozen=True)
class ConditionList(WireMessage):
    """Pub -> Sub: the (public) conditions for a queried attribute."""

    attribute: str
    conditions: Tuple[AttributeCondition, ...]

    TYPE_ID = 2
    KIND = "condition-list"

    def payload_bytes(self) -> bytes:
        out = bytearray(pack_str(self.attribute))
        out += pack_u16(len(self.conditions))
        for condition in self.conditions:
            out += pack_condition(condition)
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "ConditionList":
        cursor = Cursor(payload)
        attribute = cursor.read_str()
        count = cursor.read_u16()
        conditions = tuple(read_condition(cursor) for _ in range(count))
        cursor.expect_end()
        return cls(attribute=attribute, conditions=conditions)


@dataclass(frozen=True)
class RegistrationRequest(WireMessage):
    """Sub -> Pub: register ``token`` for the condition named by its key."""

    nym: str
    condition_key: str
    token: IdentityToken

    TYPE_ID = 3
    KIND = "token+condition-request"

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.nym)
            + pack_str(self.condition_key)
            + pack_bytes(self.token.to_bytes())
        )

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "RegistrationRequest":
        cursor = Cursor(payload)
        nym = cursor.read_str()
        condition_key = cursor.read_str()
        token = IdentityToken.from_bytes(cursor.read_bytes(), group)
        cursor.expect_end()
        return cls(nym=nym, condition_key=condition_key, token=token)


@dataclass(frozen=True)
class RegistrationAck(WireMessage):
    """Pub -> Sub: request outcome.  ``ok`` means the token verified and a
    CSS was minted; it never reveals whether the OCBE transfer will open."""

    nym: str
    condition_key: str
    ok: bool
    reason: str = ""

    TYPE_ID = 4
    KIND = "registration-ack"

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.nym)
            + pack_str(self.condition_key)
            + pack_bool(self.ok)
            + pack_str(self.reason)
        )

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "RegistrationAck":
        cursor = Cursor(payload)
        nym = cursor.read_str()
        condition_key = cursor.read_str()
        ok = cursor.read_bool()
        reason = cursor.read_str()
        cursor.expect_end()
        return cls(nym=nym, condition_key=condition_key, ok=ok, reason=reason)


@dataclass(frozen=True)
class AuxCommitments(WireMessage):
    """Sub -> Pub: the OCBE receiver's auxiliary commitments (``None``
    payload for EQ-OCBE, which needs no first message)."""

    nym: str
    condition_key: str
    aux: AuxMessage

    TYPE_ID = 5
    KIND = "ocbe-bit-commitments"

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.nym)
            + pack_str(self.condition_key)
            + pack_bytes(encode_aux(self.aux))
        )

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "AuxCommitments":
        cursor = Cursor(payload)
        nym = cursor.read_str()
        condition_key = cursor.read_str()
        aux = decode_aux(cursor.read_bytes(), group)
        cursor.expect_end()
        return cls(nym=nym, condition_key=condition_key, aux=aux)


@dataclass(frozen=True)
class OCBEEnvelope(WireMessage):
    """Pub -> Sub: the OCBE sender's envelope carrying the encrypted CSS."""

    nym: str
    condition_key: str
    envelope: OcbeEnvelope

    TYPE_ID = 6
    KIND = "ocbe-envelope"

    def payload_bytes(self) -> bytes:
        return (
            pack_str(self.nym)
            + pack_str(self.condition_key)
            + pack_bytes(encode_envelope(self.envelope))
        )

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "OCBEEnvelope":
        cursor = Cursor(payload)
        nym = cursor.read_str()
        condition_key = cursor.read_str()
        envelope = decode_envelope(cursor.read_bytes(), group)
        cursor.expect_end()
        return cls(nym=nym, condition_key=condition_key, envelope=envelope)


@dataclass(frozen=True)
class TokenRequest(WireMessage):
    """Sub -> IdMgr: issue a token for an asserted (or decoy) attribute."""

    nym: str
    attribute: str
    assertion: Optional[AttributeAssertion]  # None for decoy requests
    decoy: bool = False

    TYPE_ID = 7
    KIND = "token-request"

    def payload_bytes(self) -> bytes:
        out = bytearray(pack_str(self.nym))
        out += pack_str(self.attribute)
        out += pack_bool(self.decoy)
        out += pack_bool(self.assertion is not None)
        if self.assertion is not None:
            out += pack_bytes(self.assertion.to_bytes())
        return bytes(out)

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "TokenRequest":
        cursor = Cursor(payload)
        nym = cursor.read_str()
        attribute = cursor.read_str()
        decoy = cursor.read_bool()
        assertion = (
            AttributeAssertion.from_bytes(cursor.read_bytes())
            if cursor.read_bool()
            else None
        )
        cursor.expect_end()
        return cls(nym=nym, attribute=attribute, assertion=assertion, decoy=decoy)


@dataclass(frozen=True)
class TokenGrant(WireMessage):
    """IdMgr -> Sub (private channel): the token and its opening."""

    token: IdentityToken
    x: int
    r: int

    TYPE_ID = 8
    KIND = "token-grant"

    def payload_bytes(self) -> bytes:
        return pack_bytes(self.token.to_bytes()) + pack_scalar(self.x) + pack_scalar(
            self.r
        )

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "TokenGrant":
        cursor = Cursor(payload)
        token = IdentityToken.from_bytes(cursor.read_bytes(), group)
        x = cursor.read_scalar()
        r = cursor.read_scalar()
        cursor.expect_end()
        return cls(token=token, x=x, r=r)


@dataclass(frozen=True)
class BroadcastMessage(WireMessage):
    """Pub -> everyone: one encrypted document broadcast."""

    package: BroadcastPackage

    TYPE_ID = 9
    KIND = "broadcast-package"

    def payload_bytes(self) -> bytes:
        return self.package.to_bytes()

    @classmethod
    def from_payload(cls, payload: bytes, group: CyclicGroup) -> "BroadcastMessage":
        return cls(package=BroadcastPackage.from_bytes(payload))


MESSAGE_TYPES: Dict[int, Type[WireMessage]] = {
    cls.TYPE_ID: cls
    for cls in (
        ConditionQuery,
        ConditionList,
        RegistrationRequest,
        RegistrationAck,
        AuxCommitments,
        OCBEEnvelope,
        TokenRequest,
        TokenGrant,
        BroadcastMessage,
    )
}


def encode_message(
    message: WireMessage, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> bytes:
    """Frame any wire message for transmission."""
    return message.encode(max_payload)


def decode_message(
    data: bytes, group: CyclicGroup, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> WireMessage:
    """Parse one frame back into its typed message.

    ``max_payload`` mirrors :meth:`WireMessage.encode` (and its caveat:
    the endpoint layer always decodes at the default cap).
    """
    type_id, payload = decode_frame(data, max_payload)
    cls = MESSAGE_TYPES.get(type_id)
    if cls is None:
        raise SerializationError("unknown message type %d" % type_id)
    return cls.from_payload(payload, group)
