"""Low-level wire codec: bounded readers, field packers, versioned frames.

Every inter-entity message in the system serializes through this module so
that a single set of rules governs the whole protocol surface:

* all integers are big-endian and explicitly sized;
* every variable-length field is length-prefixed (``u16`` for short
  strings/scalars, ``u32`` for payloads), so a frame can be skipped
  without understanding its interior;
* a frame is ``MAGIC || version || type || u32 length || payload`` --
  length-prefixed at the top level so frames can be concatenated on a
  stream transport and split back apart;
* malformed input of any shape raises
  :class:`~repro.errors.SerializationError` -- never ``struct.error`` or
  ``IndexError`` -- so remote peers cannot crash an entity with garbage.

The :class:`Cursor` reader enforces the bounds checking; the ``pack_*`` /
``Cursor.read_*`` pairs are inverses by construction.
"""

from __future__ import annotations

import struct
from typing import Iterator, Tuple

from repro.errors import SerializationError

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "FRAME_HEADER_SIZE",
    "DEFAULT_MAX_FRAME_PAYLOAD",
    "check_frame_length",
    "Cursor",
    "pack_u8",
    "pack_u16",
    "pack_u32",
    "pack_bool",
    "pack_str",
    "pack_bytes",
    "pack_scalar",
    "pack_element",
    "read_element",
    "encode_frame",
    "decode_frame",
    "iter_frames",
    "parse_frame_header",
]

#: Two-byte frame magic ("repro wire").
WIRE_MAGIC = b"RW"
#: Current protocol version; bumped on any incompatible layout change.
WIRE_VERSION = 1

_FRAME_HEADER = struct.Struct(">2sBBI")  # magic, version, type, payload length

#: Fixed size of the frame header (magic + version + type + u32 length).
FRAME_HEADER_SIZE = _FRAME_HEADER.size

#: Hard ceiling on a frame's declared payload length (16 MiB).  A u32
#: length field lets a hostile peer declare ~4 GiB and force the receiver
#: to allocate it; every decode path rejects lengths above this cap
#: *before* touching (or, on a stream, waiting for) the payload.  Callers
#: with a genuine need can pass a different ``max_payload`` explicitly.
DEFAULT_MAX_FRAME_PAYLOAD = 16 * 1024 * 1024


def check_frame_length(length: int, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD) -> int:
    """Validate a declared frame payload length against the cap."""
    if length > max_payload:
        raise SerializationError(
            "frame payload of %d bytes exceeds the %d-byte cap"
            % (length, max_payload)
        )
    return length


# -- field packers ----------------------------------------------------------


def pack_u8(value: int) -> bytes:
    if not 0 <= value < (1 << 8):
        raise SerializationError("u8 out of range: %r" % value)
    return struct.pack(">B", value)


def pack_u16(value: int) -> bytes:
    if not 0 <= value < (1 << 16):
        raise SerializationError("u16 out of range: %r" % value)
    return struct.pack(">H", value)


def pack_u32(value: int) -> bytes:
    if not 0 <= value < (1 << 32):
        raise SerializationError("u32 out of range: %r" % value)
    return struct.pack(">I", value)


def pack_bool(value: bool) -> bytes:
    return pack_u8(1 if value else 0)


def pack_str(text: str) -> bytes:
    """``u16`` length-prefixed UTF-8."""
    raw = text.encode("utf-8")
    return pack_u16(len(raw)) + raw


def pack_bytes(raw: bytes) -> bytes:
    """``u32`` length-prefixed octets."""
    return pack_u32(len(raw)) + raw


def pack_scalar(value: int) -> bytes:
    """A non-negative big integer, ``u16`` length-prefixed big-endian.

    Used for openings ``(x, r)`` and signature scalars whose magnitude is
    not bounded by the wire layer (decoy values exceed every group order).
    """
    if value < 0:
        raise SerializationError("scalars on the wire are non-negative")
    raw = value.to_bytes((value.bit_length() + 7) // 8 or 1, "big")
    return pack_u16(len(raw)) + raw


def pack_element(element) -> bytes:
    """A group element via its canonical encoding, length-prefixed."""
    return pack_bytes(element.to_bytes())


def read_element(cursor: "Cursor", group):
    """Read one group element; decode errors surface as library errors.

    ``group.element_from_bytes`` validates membership and raises
    :class:`~repro.errors.GroupError` subclasses itself; anything else a
    hostile encoding provokes is normalized to :class:`SerializationError`.
    """
    from repro.errors import ReproError

    raw = cursor.read_bytes()
    try:
        return group.element_from_bytes(raw)
    except ReproError:
        raise
    except Exception as exc:  # defensive: backends must not leak raw errors
        raise SerializationError("undecodable group element") from exc


# -- bounded reader ---------------------------------------------------------


class Cursor:
    """A bounds-checked sequential reader over immutable bytes.

    Every ``read_*`` raises :class:`SerializationError` on truncation; a
    fully-parsed message should end with :meth:`expect_end` so trailing
    garbage is rejected rather than silently ignored.
    """

    __slots__ = ("data", "offset")

    def __init__(self, data: bytes, offset: int = 0):
        if not isinstance(data, (bytes, bytearray, memoryview)):
            raise SerializationError(
                "wire input must be bytes, got %s" % type(data).__name__
            )
        self.data = bytes(data)
        self.offset = offset

    def remaining(self) -> int:
        return len(self.data) - self.offset

    def take(self, n: int) -> bytes:
        if n < 0 or self.remaining() < n:
            raise SerializationError(
                "truncated input: need %d bytes at offset %d, have %d"
                % (n, self.offset, self.remaining())
            )
        out = self.data[self.offset : self.offset + n]
        self.offset += n
        return out

    def read_u8(self) -> int:
        return self.take(1)[0]

    def read_u16(self) -> int:
        return int.from_bytes(self.take(2), "big")

    def read_u32(self) -> int:
        return int.from_bytes(self.take(4), "big")

    def read_bool(self) -> bool:
        flag = self.read_u8()
        if flag not in (0, 1):
            raise SerializationError("bad boolean byte %#x" % flag)
        return bool(flag)

    def read_str(self) -> str:
        length = self.read_u16()
        raw = self.take(length)
        try:
            return raw.decode("utf-8")
        except UnicodeDecodeError as exc:
            raise SerializationError("invalid UTF-8 in string field") from exc

    def read_bytes(self) -> bytes:
        return self.take(self.read_u32())

    def read_scalar(self) -> int:
        return int.from_bytes(self.take(self.read_u16()), "big")

    def expect_end(self) -> None:
        if self.remaining():
            raise SerializationError(
                "%d trailing bytes after message" % self.remaining()
            )


# -- frames -----------------------------------------------------------------


def encode_frame(
    type_id: int, payload: bytes, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> bytes:
    """Wrap a message payload in the versioned, length-prefixed frame."""
    if not 0 <= type_id < (1 << 8):
        raise SerializationError("frame type out of range: %r" % type_id)
    check_frame_length(len(payload), max_payload)
    return _FRAME_HEADER.pack(WIRE_MAGIC, WIRE_VERSION, type_id, len(payload)) + payload


def decode_frame(
    data: bytes, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> Tuple[int, bytes]:
    """Parse exactly one frame; rejects bad magic/version/length."""
    type_id, payload, end = _decode_frame_at(data, 0, max_payload)
    if end != len(data):
        raise SerializationError("%d trailing bytes after frame" % (len(data) - end))
    return type_id, payload


def iter_frames(
    data: bytes, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> Iterator[Tuple[int, bytes]]:
    """Split a concatenation of frames (a stream read) back into messages."""
    offset = 0
    while offset < len(data):
        type_id, payload, offset = _decode_frame_at(data, offset, max_payload)
        yield type_id, payload


def parse_frame_header(header: bytes) -> Tuple[int, int]:
    """Validate a raw frame header, returning ``(type_id, payload length)``.

    Shared by the in-memory decoders below and the incremental stream
    decoder in :mod:`repro.net.stream`, so magic/version/length policy
    lives in exactly one place.  The length is *not* checked against any
    cap here -- callers apply :func:`check_frame_length` so a stream can
    reject an oversized declaration before waiting for its payload.
    """
    if len(header) != FRAME_HEADER_SIZE:
        raise SerializationError("frame header must be %d bytes" % FRAME_HEADER_SIZE)
    magic, version, type_id, length = _FRAME_HEADER.unpack(header)
    if magic != WIRE_MAGIC:
        raise SerializationError("bad frame magic %r" % magic)
    if version != WIRE_VERSION:
        raise SerializationError(
            "unsupported wire version %d (speaking %d)" % (version, WIRE_VERSION)
        )
    return type_id, length


def _decode_frame_at(
    data: bytes, offset: int, max_payload: int = DEFAULT_MAX_FRAME_PAYLOAD
) -> Tuple[int, bytes, int]:
    cursor = Cursor(data, offset)
    header = cursor.take(FRAME_HEADER_SIZE)
    type_id, length = parse_frame_header(header)
    check_frame_length(length, max_payload)
    payload = cursor.take(length)
    return type_id, payload, cursor.offset
