"""The wire protocol: codec, typed messages and session state machines.

Everything two entities of the dissemination system say to each other is
a serializable, versioned message defined here.  The layering is:

* :mod:`repro.wire.codec` -- length-prefixed fields and the
  ``magic || version || type || length || payload`` frame;
* :mod:`repro.wire.messages` -- one frozen dataclass per protocol
  message, with exact byte encodings;
* :mod:`repro.wire.sessions` -- per-entity state machines that consume
  and produce framed bytes (no transport knowledge);
* :mod:`repro.system.service` -- endpoints binding sessions to a
  :class:`~repro.system.transport.Transport`.

See ``DESIGN.md`` for the message-flow diagram.

The message/session names are re-exported lazily (PEP 562): the OCBE and
system layers import :mod:`repro.wire.codec` at module load, so an eager
re-export here would close an import cycle.
"""

from repro.wire.codec import (  # the cycle-free base layer
    WIRE_MAGIC,
    WIRE_VERSION,
    Cursor,
    decode_frame,
    encode_frame,
    iter_frames,
)

_MESSAGE_NAMES = (
    "WireMessage",
    "MESSAGE_TYPES",
    "ConditionQuery",
    "ConditionList",
    "RegistrationRequest",
    "RegistrationAck",
    "AuxCommitments",
    "OCBEEnvelope",
    "TokenRequest",
    "TokenGrant",
    "BroadcastMessage",
    "encode_message",
    "decode_message",
)
_SESSION_NAMES = (
    "PublisherRegistrationSession",
    "SubscriberRegistrationSession",
)

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "Cursor",
    "encode_frame",
    "decode_frame",
    "iter_frames",
    *_MESSAGE_NAMES,
    *_SESSION_NAMES,
]


def __getattr__(name):
    if name in _MESSAGE_NAMES:
        from repro.wire import messages

        return getattr(messages, name)
    if name in _SESSION_NAMES:
        from repro.wire import sessions

        return getattr(sessions, name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(__all__)
