"""Per-entity session state machines for the registration protocol.

These classes replace the seed's live-object handshake
(``Publisher.open_registration`` returning an offer the subscriber's
``accept_offer`` called back into).  Both sides now consume and produce
*bytes* -- framed wire messages from :mod:`repro.wire.messages` -- so the
two entities can sit on opposite ends of any transport:

* :class:`SubscriberRegistrationSession` drives ONE (token, condition)
  registration on the Sub side:
  ``start()`` emits the ``RegistrationRequest`` frame, and ``handle()``
  turns the Pub's ``RegistrationAck`` into ``AuxCommitments`` and the
  final ``OCBEEnvelope`` into a locally-stored CSS (or a recorded failure
  the Pub never learns about).

* :class:`PublisherRegistrationSession` is the Pub-side message handler
  for ANY number of concurrent subscriber registrations (state is keyed
  by ``(nym, condition key)``); ``handle()`` maps each incoming frame to
  a list of reply frames.

Neither class touches a transport; the facade in
:mod:`repro.system.service` moves the produced frames between inboxes.
"""

from __future__ import annotations

import random
from collections import OrderedDict
from typing import List, Optional

from repro.errors import (
    DecryptionError,
    OCBEError,
    ProtocolStateError,
    RegistrationError,
    SerializationError,
    SignatureError,
)
from repro.obs.metrics import get_registry
from repro.obs.trace import stage
from repro.ocbe.base import receiver_for
from repro.policy.condition import AttributeCondition
from repro.wire.messages import (
    AuxCommitments,
    ConditionList,
    ConditionQuery,
    OCBEEnvelope,
    RegistrationAck,
    RegistrationRequest,
    decode_message,
)

__all__ = ["SubscriberRegistrationSession", "PublisherRegistrationSession"]


class SubscriberRegistrationSession:
    """State machine for one (token, condition) registration, Sub side.

    States: ``start`` -> ``await-ack`` -> ``await-envelope`` -> ``done``.
    ``succeeded`` is knowledge only this end ever has.
    """

    def __init__(
        self,
        subscriber,
        condition: AttributeCondition,
        rng: Optional[random.Random] = None,
    ):
        self.subscriber = subscriber
        self.condition = condition
        self.condition_key = condition.key()
        wallet = subscriber.wallet_for(condition.name)
        self._wallet = wallet
        self._rng = rng if rng is not None else subscriber.rng
        self._group = subscriber.params.pedersen.group
        self._receiver = None
        self.state = "start"
        self.succeeded: Optional[bool] = None
        self.failure_reason: str = ""

    @property
    def done(self) -> bool:
        return self.state == "done"

    def start(self) -> bytes:
        """Emit the opening ``RegistrationRequest`` frame."""
        if self.state != "start":
            raise ProtocolStateError("session already started")
        self.state = "await-ack"
        return RegistrationRequest(
            nym=self.subscriber.nym,
            condition_key=self.condition_key,
            token=self._wallet.token,
        ).encode()

    def handle(self, data: bytes) -> Optional[bytes]:
        """Consume one publisher frame; return the next frame to send, if any."""
        return self.handle_message(decode_message(data, self._group))

    def handle_message(self, message) -> Optional[bytes]:
        """Like :meth:`handle` for an already-decoded message (so a caller
        that dispatched on the message type does not pay a second decode)."""
        if isinstance(message, RegistrationAck):
            return self._on_ack(message)
        if isinstance(message, OCBEEnvelope):
            return self._on_envelope(message)
        raise ProtocolStateError(
            "unexpected %s in state %r" % (type(message).__name__, self.state)
        )

    def _on_ack(self, ack: RegistrationAck) -> Optional[bytes]:
        if self.state not in ("await-ack", "await-envelope"):
            raise ProtocolStateError("RegistrationAck in state %r" % self.state)
        if ack.condition_key != self.condition_key:
            raise ProtocolStateError("ack for foreign condition %r" % ack.condition_key)
        if not ack.ok:
            # A negative ack aborts the exchange in either waiting state.
            # Recorded, not raised: an abort must not wedge the other
            # in-flight sessions sharing the client's inbox.
            self.state = "done"
            self.succeeded = False
            self.failure_reason = ack.reason or "registration rejected"
            return None
        if self.state != "await-ack":
            return None  # duplicate/retransmitted positive ack: absorb
        predicate = self.condition.predicate(self.subscriber.params.attribute_bits)
        self._receiver = receiver_for(
            self.subscriber.ocbe_setup,
            predicate,
            self._wallet.x,
            self._wallet.r,
            self._wallet.token.commitment,
            self._rng,
        )
        aux = self._receiver.commitment_message()
        self.state = "await-envelope"
        return AuxCommitments(
            nym=self.subscriber.nym, condition_key=self.condition_key, aux=aux
        ).encode()

    def _on_envelope(self, message: OCBEEnvelope) -> None:
        if self.state != "await-envelope" or self._receiver is None:
            raise ProtocolStateError("OCBEEnvelope in state %r" % self.state)
        if message.condition_key != self.condition_key:
            raise ProtocolStateError(
                "envelope for foreign condition %r" % message.condition_key
            )
        self.state = "done"
        try:
            css = self._receiver.open(message.envelope)
        except DecryptionError:
            # The committed value does not satisfy the condition: record the
            # failure locally.  The publisher cannot observe this branch.
            self.succeeded = False
            return None
        except (OCBEError, SerializationError, AttributeError, TypeError) as exc:
            # A variant-mismatched or malformed envelope from a buggy/hostile
            # publisher: fail this one registration, never the whole client.
            self.succeeded = False
            self.failure_reason = "malformed envelope: %s" % exc
            return None
        self.subscriber.store_css(self.condition_key, css)
        self.succeeded = True
        return None


class PublisherRegistrationSession:
    """Pub-side handler: frames in, reply frames out, table updated.

    One instance serves every subscriber; per-registration state (the OCBE
    sender awaiting auxiliary commitments) is keyed by ``(nym, condition
    key)``.  *Protocol-level* failures -- an unverifiable token, unknown
    condition, bad auxiliary commitments, an aux message with no matching
    request -- produce a negative :class:`RegistrationAck`.  Frames that
    are not even well-formed protocol messages (garbage bytes, message
    types a publisher never receives) still raise
    :class:`~repro.errors.SerializationError` /
    :class:`~repro.errors.ProtocolStateError`; the endpoint driving this
    session (``_Endpoint.pump``) requeues the rest of its batch before
    propagating those, so hostile traffic cannot destroy queued frames.

    In-flight state is bounded: at most ``max_pending`` offers are held,
    evicting the oldest first, so clients that send ``RegistrationRequest``
    and never follow up with ``AuxCommitments`` cannot grow memory without
    bound.  An evicted registration simply draws a negative ack when its
    aux finally arrives, and the client may retry.

    With ``pool`` (an :class:`~repro.ocbe.parallel.OcbeWorkerPool`) the
    endpoint calls :meth:`prefetch` on each polled batch: every
    ``AuxCommitments`` frame with a live offer has its envelope's
    randomness drawn immediately (in delivery order, from the offer's
    own derived RNG stream) and its deterministic arithmetic submitted
    to the pool, so independent builds overlap while replies still go
    out in delivery order.  A broken pool degrades to inline builds from
    the already-drawn randomness -- same frames, just slower.
    """

    def __init__(self, publisher, max_pending: int = 4096, pool=None):
        self.publisher = publisher
        self.max_pending = max_pending
        self.pool = pool
        self._group = publisher.params.pedersen.group
        self._pending: "OrderedDict[Tuple[str, str], object]" = OrderedDict()
        # (nym, condition key) -> FIFO of (offer, future-or-None, drawn),
        # one entry per prefetched aux frame, popped by _on_aux in the
        # same delivery order prefetch() pushed them.
        self._prefetched: dict = {}
        # id()s of Delivery objects already prefetched: a handler raising
        # mid-batch requeues the remainder, and a requeued frame must not
        # draw its randomness twice when the next poll sees it again.
        self._prefetch_seen: dict = {}

    def prefetch(self, deliveries) -> None:
        """Kick off pool builds for a polled batch (no-op without a pool)."""
        pool = self.pool
        if pool is None or pool.broken:
            return
        seen = self._prefetch_seen
        current: dict = {}
        for delivery in deliveries:
            mark = id(delivery)
            if mark in seen:
                current[mark] = True
                continue
            payload = delivery.payload
            # O(1) type peek (same frame layout contract as the service
            # facade's _frame_type); false positives fail decode below.
            if len(payload) < 4 or payload[3] != AuxCommitments.TYPE_ID:
                continue
            current[mark] = True
            try:
                message = decode_message(payload, self._group)
            except SerializationError:
                continue  # handle() will produce the precise error
            if delivery.sender is not None and message.nym != delivery.sender:
                continue  # handle() rejects it; never build for a hijack
            offer = self._pending.get((message.nym, message.condition_key))
            if offer is None:
                continue
            drawn = offer.sender.draw_randomness()
            future = pool.submit_compose(
                offer.condition.predicate(
                    self.publisher.params.attribute_bits
                ),
                offer.token.commitment,
                message.aux,
                offer.css,
                drawn,
            )
            self._prefetched.setdefault(
                (message.nym, message.condition_key), []
            ).append((offer, future, drawn))
            if pool.broken:
                break  # submission failed; the entry still carries `drawn`
        # Keep only ids still in flight: requeued frames reappear in the
        # next batch, everything else was handled (or dropped) already.
        self._prefetch_seen = current

    def handle(self, data: bytes, sender: Optional[str] = None) -> List[bytes]:
        """Process one subscriber frame; return the reply frames.

        ``sender`` is the transport-authenticated origin, when the
        transport provides one.  Registration state is keyed by the
        message-carried nym, so a frame whose nym differs from its actual
        sender is rejected -- otherwise any peer could hijack or cancel
        another subscriber's in-flight registration (nyms are public
        strings).
        """
        message = decode_message(data, self._group)
        if isinstance(message, ConditionQuery):
            return [self._on_condition_query(message)]
        if isinstance(message, (RegistrationRequest, AuxCommitments)):
            if sender is not None and message.nym != sender:
                return [
                    RegistrationAck(
                        nym=message.nym,
                        condition_key=message.condition_key,
                        ok=False,
                        reason="nym %r does not match sender %r"
                        % (message.nym, sender),
                    ).encode()
                ]
            if isinstance(message, RegistrationRequest):
                return [self._on_request(message)]
            return [self._on_aux(message)]
        raise ProtocolStateError(
            "publisher cannot handle %s" % type(message).__name__
        )

    def _on_condition_query(self, query: ConditionQuery) -> bytes:
        conditions = tuple(
            self.publisher.conditions_for_attribute(query.attribute)
        )
        return ConditionList(attribute=query.attribute, conditions=conditions).encode()

    def _on_request(self, request: RegistrationRequest) -> bytes:
        key = (request.nym, request.condition_key)
        try:
            condition = self.publisher.condition_by_key(request.condition_key)
            if request.token.nym != request.nym:
                raise RegistrationError(
                    "token pseudonym %r does not match requester %r"
                    % (request.token.nym, request.nym)
                )
            offer = self.publisher.open_registration(request.token, condition)
        except (RegistrationError, SignatureError) as exc:
            return RegistrationAck(
                nym=request.nym,
                condition_key=request.condition_key,
                ok=False,
                reason=str(exc),
            ).encode()
        self._pending.pop(key, None)  # a re-request replaces, not duplicates
        self._pending[key] = offer
        while len(self._pending) > self.max_pending:
            self._pending.popitem(last=False)
        return RegistrationAck(
            nym=request.nym, condition_key=request.condition_key, ok=True
        ).encode()

    def _pop_prefetched(self, key) -> Optional[tuple]:
        """Next prefetched (offer, future, drawn) for ``key``, if any."""
        entries = self._prefetched.get(key)
        if not entries:
            return None
        entry = entries.pop(0)
        if not entries:
            del self._prefetched[key]
        return entry

    def _on_aux(self, message: AuxCommitments) -> bytes:
        key = (message.nym, message.condition_key)
        # The prefetch entry is positionally paired with this frame: pop
        # it even when the offer is gone (negative-ack path) or was
        # replaced by a re-request (the stale build must not be used).
        entry = self._pop_prefetched(key)
        offer = self._pending.pop(key, None)
        if offer is None:
            return RegistrationAck(
                nym=message.nym,
                condition_key=message.condition_key,
                ok=False,
                reason="no registration in progress for this condition",
            ).encode()
        try:
            with stage("ocbe.build", condition=message.condition_key):
                with get_registry().timer("ocbe.envelope_build_seconds"):
                    envelope = None
                    if entry is not None and entry[0] is offer:
                        _, future, drawn = entry
                        if future is not None:
                            envelope = self.pool.result(future)
                        if envelope is None:
                            # Pool degraded: rebuild inline from the
                            # randomness drawn at prefetch time, so the
                            # emitted frame is unchanged.
                            envelope = offer.sender.compose_with(
                                offer.token.commitment, message.aux,
                                offer.css, drawn,
                            )
                    else:
                        envelope = offer.sender.compose(
                            offer.token.commitment, message.aux, offer.css
                        )
            get_registry().inc("ocbe.envelopes")
        except (OCBEError, SerializationError, AttributeError, TypeError) as exc:
            # AttributeError/TypeError cover a well-formed frame carrying the
            # wrong OCBE variant for this condition (e.g. a bare None aux for
            # a bitwise predicate) -- remote input must never crash the Pub.
            return RegistrationAck(
                nym=message.nym,
                condition_key=message.condition_key,
                ok=False,
                reason="invalid auxiliary commitments: %s" % exc,
            ).encode()
        return OCBEEnvelope(
            nym=message.nym, condition_key=message.condition_key, envelope=envelope
        ).encode()
