"""repro: privacy-preserving policy-based content dissemination.

A from-scratch Python reproduction of Shang, Nabeel, Paci & Bertino,
"A Privacy-Preserving Approach to Policy-Based Content Dissemination"
(ICDE 2010 / CERIAS TR 2009-27):

* **ACV-BGKM** (:mod:`repro.gkm`) -- the paper's broadcast group key
  management scheme plus the baselines it is evaluated against;
* **OCBE** (:mod:`repro.ocbe`) -- oblivious commitment-based envelopes for
  =, !=, >=, <=, >, < predicates over Pedersen commitments;
* **groups** (:mod:`repro.groups`) -- Schnorr, elliptic-curve and the
  paper's genus-2 hyperelliptic Jacobian backends;
* **wire** (:mod:`repro.wire`) -- the versioned wire protocol: every
  inter-entity interaction as a serializable message, plus the session
  state machines that speak it;
* **system** (:mod:`repro.system`) -- IdP, IdMgr, Publisher and Subscriber
  as endpoints exchanging bytes over a routing transport;
* **net / store** (:mod:`repro.net`, :mod:`repro.store`) -- the asyncio
  socket runtime (broker + ``python -m repro.net.*`` entity servers) and
  crash-recoverable durable entity state (``--data-dir``);
* **load** (:mod:`repro.load`) -- the declarative load & churn engine:
  scenario specs, in-memory/TCP drivers, per-phase lockout/derivation/
  zero-unicast invariant checks, ``python -m repro.load``;
* **documents / policy / workloads / bench** -- segmentation, the policy
  language, the EHR scenario and the evaluation harness (with the
  ``BENCH_*.json`` emitter and ``python -m repro.bench.compare`` gate).

Quickstart::

    from repro.workloads import build_hospital

    hospital = build_hospital()
    package = hospital.publisher.publish(hospital.document)
    plaintexts = hospital.subscribers["carol"].receive(package)  # a doctor

See ``examples/`` for complete scenarios and DESIGN.md for the system map.
"""

from repro.documents import BroadcastPackage, Document, Subdocument, document_from_xml
from repro.gkm import AcvBgkm, AcvHeader, BucketedAcvBgkm
from repro.groups import default_group, get_group, list_groups
from repro.ocbe import OCBESetup, run_ocbe
from repro.policy import (
    AccessControlPolicy,
    AttributeCondition,
    PolicyConfiguration,
    parse_condition,
    parse_policy,
)
from repro.system import (
    DisseminationService,
    IdentityManager,
    IdentityManagerEndpoint,
    IdentityProvider,
    InMemoryTransport,
    Publisher,
    Subscriber,
    SubscriberClient,
    Transport,
    register_all_attributes,
    register_for_attribute,
    run_until_idle,
)
from repro.wire import decode_message, encode_message

__version__ = "1.0.0"

__all__ = [
    "__version__",
    "AcvBgkm",
    "AcvHeader",
    "BucketedAcvBgkm",
    "BroadcastPackage",
    "Document",
    "Subdocument",
    "document_from_xml",
    "default_group",
    "get_group",
    "list_groups",
    "OCBESetup",
    "run_ocbe",
    "AccessControlPolicy",
    "AttributeCondition",
    "PolicyConfiguration",
    "parse_condition",
    "parse_policy",
    "IdentityManager",
    "IdentityProvider",
    "InMemoryTransport",
    "Transport",
    "Publisher",
    "Subscriber",
    "DisseminationService",
    "SubscriberClient",
    "IdentityManagerEndpoint",
    "run_until_idle",
    "encode_message",
    "decode_message",
    "register_all_attributes",
    "register_for_attribute",
]
