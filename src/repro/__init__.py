"""repro: privacy-preserving policy-based content dissemination.

A from-scratch Python reproduction of Shang, Nabeel, Paci & Bertino,
"A Privacy-Preserving Approach to Policy-Based Content Dissemination"
(ICDE 2010 / CERIAS TR 2009-27):

* **ACV-BGKM** (:mod:`repro.gkm`) -- the paper's broadcast group key
  management scheme plus the baselines it is evaluated against;
* **OCBE** (:mod:`repro.ocbe`) -- oblivious commitment-based envelopes for
  =, !=, >=, <=, >, < predicates over Pedersen commitments;
* **groups** (:mod:`repro.groups`) -- Schnorr, elliptic-curve and the
  paper's genus-2 hyperelliptic Jacobian backends;
* **wire** (:mod:`repro.wire`) -- the versioned wire protocol: every
  inter-entity interaction as a serializable message, plus the session
  state machines that speak it;
* **system** (:mod:`repro.system`) -- IdP, IdMgr, Publisher and Subscriber
  as endpoints exchanging bytes over a routing transport;
* **net / store** (:mod:`repro.net`, :mod:`repro.store`) -- the asyncio
  socket runtime (broker + ``python -m repro.net.*`` entity servers) and
  crash-recoverable durable entity state (``--data-dir``);
* **load** (:mod:`repro.load`) -- the declarative load & churn engine:
  scenario specs, in-memory/TCP drivers, per-phase lockout/derivation/
  zero-unicast invariant checks, ``python -m repro.load``;
* **documents / policy / workloads / bench** -- segmentation, the policy
  language, the EHR scenario and the evaluation harness (with the
  ``BENCH_*.json`` emitter and ``python -m repro.bench.compare`` gate).

Quickstart::

    from repro.workloads import build_hospital

    hospital = build_hospital()
    package = hospital.publisher.publish(hospital.document)
    plaintexts = hospital.subscribers["carol"].receive(package)  # a doctor

See ``examples/`` for complete scenarios and DESIGN.md for the system map.
"""

import importlib

__version__ = "1.0.0"

# Lazy (PEP 562) exports, like :mod:`repro.net`: importing any one
# subsystem must not drag in the others.  This is a hard requirement for
# the federation tier -- a relay OS process imports ``repro.net.relay``
# and its keyless claim is pinned as an import boundary (it never loads
# crypto, GKM, policy or publisher modules), which only holds if the
# package root stays side-effect free.  ``from repro import X`` and
# ``repro.X`` still resolve exactly as before, on first touch.
_EXPORTS = {
    "BroadcastPackage": "repro.documents",
    "Document": "repro.documents",
    "Subdocument": "repro.documents",
    "document_from_xml": "repro.documents",
    "AcvBgkm": "repro.gkm",
    "AcvHeader": "repro.gkm",
    "BucketedAcvBgkm": "repro.gkm",
    "default_group": "repro.groups",
    "get_group": "repro.groups",
    "list_groups": "repro.groups",
    "OCBESetup": "repro.ocbe",
    "run_ocbe": "repro.ocbe",
    "AccessControlPolicy": "repro.policy",
    "AttributeCondition": "repro.policy",
    "PolicyConfiguration": "repro.policy",
    "parse_condition": "repro.policy",
    "parse_policy": "repro.policy",
    "DisseminationService": "repro.system",
    "IdentityManager": "repro.system",
    "IdentityManagerEndpoint": "repro.system",
    "IdentityProvider": "repro.system",
    "InMemoryTransport": "repro.system",
    "Publisher": "repro.system",
    "Subscriber": "repro.system",
    "SubscriberClient": "repro.system",
    "Transport": "repro.system",
    "register_all_attributes": "repro.system",
    "register_for_attribute": "repro.system",
    "run_until_idle": "repro.system",
    "decode_message": "repro.wire",
    "encode_message": "repro.wire",
}


def __getattr__(name: str):
    if name in _EXPORTS:
        return getattr(importlib.import_module(_EXPORTS[name]), name)
    raise AttributeError("module %r has no attribute %r" % (__name__, name))


def __dir__():
    return sorted(set(globals()) | set(_EXPORTS))

__all__ = [
    "__version__",
    "AcvBgkm",
    "AcvHeader",
    "BucketedAcvBgkm",
    "BroadcastPackage",
    "Document",
    "Subdocument",
    "document_from_xml",
    "default_group",
    "get_group",
    "list_groups",
    "OCBESetup",
    "run_ocbe",
    "AccessControlPolicy",
    "AttributeCondition",
    "PolicyConfiguration",
    "parse_condition",
    "parse_policy",
    "IdentityManager",
    "IdentityProvider",
    "InMemoryTransport",
    "Transport",
    "Publisher",
    "Subscriber",
    "DisseminationService",
    "SubscriberClient",
    "IdentityManagerEndpoint",
    "run_until_idle",
    "encode_message",
    "decode_message",
    "register_all_attributes",
    "register_for_attribute",
]
