"""Documents and subdocuments.

The unit of encryption is the subdocument: a named byte payload within a
document.  The paper's running example marks subdocuments with XML tags
inside ``EHR.xml``; :func:`document_from_xml` reproduces that segmentation
by extracting the subtree of each marked tag (everything not captured by a
marked tag becomes the residual ``_rest`` subdocument -- the "Other stuff"
of Example 4).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.errors import DocumentError

__all__ = ["Subdocument", "Document", "document_from_xml", "REST"]

#: Name of the residual subdocument (content no marked tag captured).
REST = "_rest"


@dataclass(frozen=True)
class Subdocument:
    """A named content portion of a document."""

    name: str
    content: bytes

    def __post_init__(self) -> None:
        if not self.name:
            raise DocumentError("subdocument needs a non-empty name")

    @property
    def size(self) -> int:
        """Payload size in bytes."""
        return len(self.content)


@dataclass(frozen=True)
class Document:
    """An ordered collection of uniquely-named subdocuments."""

    name: str
    subdocuments: Tuple[Subdocument, ...]

    def __post_init__(self) -> None:
        names = [s.name for s in self.subdocuments]
        if len(set(names)) != len(names):
            raise DocumentError("duplicate subdocument names in %r" % self.name)

    @classmethod
    def of(cls, name: str, parts: Dict[str, bytes]) -> "Document":
        """Build from a name->content mapping (insertion order preserved)."""
        return cls(
            name=name,
            subdocuments=tuple(
                Subdocument(sub_name, content) for sub_name, content in parts.items()
            ),
        )

    def subdocument_names(self) -> List[str]:
        """Names in document order."""
        return [s.name for s in self.subdocuments]

    def get(self, name: str) -> Subdocument:
        """Look up a subdocument by name."""
        for sub in self.subdocuments:
            if sub.name == name:
                return sub
        raise DocumentError("no subdocument %r in %r" % (name, self.name))

    @property
    def total_size(self) -> int:
        """Total payload bytes across subdocuments."""
        return sum(s.size for s in self.subdocuments)

    def __iter__(self):
        return iter(self.subdocuments)

    def __len__(self) -> int:
        return len(self.subdocuments)


def document_from_xml(
    name: str,
    xml_text: str,
    marked_tags: Sequence[str],
    include_rest: bool = True,
) -> Document:
    """Segment an XML document along ``marked_tags``.

    Each marked tag contributes one subdocument holding the serialized
    subtree (first occurrence anywhere in the tree).  The remaining
    skeleton -- the document with marked subtrees pruned -- becomes the
    ``_rest`` subdocument when ``include_rest`` is set.

    >>> doc = document_from_xml("d", "<a><b>x</b><c>y</c></a>", ["b"])
    >>> doc.subdocument_names()
    ['b', '_rest']
    """
    try:
        root = ET.fromstring(xml_text)
    except ET.ParseError as exc:
        raise DocumentError("invalid XML: %s" % exc) from exc

    parts: Dict[str, bytes] = {}
    for tag in marked_tags:
        element = root if root.tag == tag else root.find(".//%s" % tag)
        if element is None:
            raise DocumentError("marked tag %r not found" % tag)
        parts[tag] = ET.tostring(element, encoding="utf-8")

    if include_rest:
        pruned = ET.fromstring(xml_text)
        for tag in marked_tags:
            if pruned.tag == tag:
                raise DocumentError("cannot prune the document root %r" % tag)
            parent = pruned.find(".//%s/.." % tag)
            while parent is not None:
                child = parent.find(tag)
                if child is not None:
                    parent.remove(child)
                parent = pruned.find(".//%s/.." % tag)
        parts[REST] = ET.tostring(pruned, encoding="utf-8")

    return Document.of(name, parts)
