"""The broadcast package: what the Pub actually transmits (Section V-C).

For every policy configuration the package carries a :class:`ConfigHeader`
with

* the ordered condition-key lists of the member policies (public -- the
  paper's ACPs are known to subscribers so they can pick "an access control
  policy acp_k it satisfies"), and
* the ACV-BGKM header ``(X, z_1..z_N)``; the empty configuration carries no
  header at all ("the Pub can just encrypt ... without the need of
  publishing X or z_i", Example 4).

plus each subdocument encrypted (authenticated) under its configuration's
key.  The whole package serializes to a single byte string; subscribers
need nothing else besides their CSSs.
"""

from __future__ import annotations

import struct
from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SerializationError
from repro.gkm.acv import AcvHeader

__all__ = ["ConfigHeader", "EncryptedSubdocument", "BroadcastPackage"]

_MAGIC = b"BPK1"


def _pack_str(text: str) -> bytes:
    raw = text.encode("utf-8")
    return struct.pack(">H", len(raw)) + raw


def _unpack_str(data: bytes, offset: int) -> Tuple[str, int]:
    (length,) = struct.unpack_from(">H", data, offset)
    offset += 2
    if offset + length > len(data):
        raise SerializationError("truncated string field")
    return data[offset : offset + length].decode("utf-8"), offset + length


def _pack_bytes(raw: bytes) -> bytes:
    return struct.pack(">I", len(raw)) + raw


def _unpack_bytes(data: bytes, offset: int) -> Tuple[bytes, int]:
    (length,) = struct.unpack_from(">I", data, offset)
    offset += 4
    if offset + length > len(data):
        raise SerializationError("truncated bytes field")
    return data[offset : offset + length], offset + length


@dataclass(frozen=True)
class ConfigHeader:
    """Public keying material for one policy configuration."""

    config_id: str
    policies: Tuple[Tuple[str, ...], ...]  # ordered condition keys per policy
    acv: Optional[AcvHeader]

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += _pack_str(self.config_id)
        out += struct.pack(">H", len(self.policies))
        for policy in self.policies:
            out += struct.pack(">H", len(policy))
            for key in policy:
                out += _pack_str(key)
        if self.acv is None:
            out += _pack_bytes(b"")
        else:
            out += _pack_bytes(self.acv.to_bytes())
        return bytes(out)

    @classmethod
    def from_bytes_at(cls, data: bytes, offset: int) -> Tuple["ConfigHeader", int]:
        config_id, offset = _unpack_str(data, offset)
        (n_policies,) = struct.unpack_from(">H", data, offset)
        offset += 2
        policies: List[Tuple[str, ...]] = []
        for _ in range(n_policies):
            (n_conds,) = struct.unpack_from(">H", data, offset)
            offset += 2
            conds = []
            for _ in range(n_conds):
                key, offset = _unpack_str(data, offset)
                conds.append(key)
            policies.append(tuple(conds))
        acv_raw, offset = _unpack_bytes(data, offset)
        acv = AcvHeader.from_bytes(acv_raw) if acv_raw else None
        return (
            cls(config_id=config_id, policies=tuple(policies), acv=acv),
            offset,
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class EncryptedSubdocument:
    """One subdocument ciphertext, tagged with its configuration."""

    name: str
    config_id: str
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        return _pack_str(self.name) + _pack_str(self.config_id) + _pack_bytes(
            self.ciphertext
        )

    @classmethod
    def from_bytes_at(
        cls, data: bytes, offset: int
    ) -> Tuple["EncryptedSubdocument", int]:
        name, offset = _unpack_str(data, offset)
        config_id, offset = _unpack_str(data, offset)
        ciphertext, offset = _unpack_bytes(data, offset)
        return cls(name=name, config_id=config_id, ciphertext=ciphertext), offset


@dataclass(frozen=True)
class BroadcastPackage:
    """A complete encrypted document broadcast."""

    document: str
    headers: Tuple[ConfigHeader, ...]
    subdocuments: Tuple[EncryptedSubdocument, ...]

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += _pack_str(self.document)
        out += struct.pack(">H", len(self.headers))
        for header in self.headers:
            out += _pack_bytes(header.to_bytes())
        out += struct.pack(">H", len(self.subdocuments))
        for sub in self.subdocuments:
            out += sub.to_bytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BroadcastPackage":
        try:
            if data[:4] != _MAGIC:
                raise SerializationError("bad magic")
            offset = 4
            document, offset = _unpack_str(data, offset)
            (n_headers,) = struct.unpack_from(">H", data, offset)
            offset += 2
            headers = []
            for _ in range(n_headers):
                raw, offset = _unpack_bytes(data, offset)
                header, _ = ConfigHeader.from_bytes_at(raw, 0)
                headers.append(header)
            (n_subs,) = struct.unpack_from(">H", data, offset)
            offset += 2
            subs = []
            for _ in range(n_subs):
                sub, offset = EncryptedSubdocument.from_bytes_at(data, offset)
                subs.append(sub)
            return cls(
                document=document,
                headers=tuple(headers),
                subdocuments=tuple(subs),
            )
        except (IndexError, struct.error, UnicodeDecodeError) as exc:
            raise SerializationError("truncated broadcast package") from exc

    def header_for(self, config_id: str) -> ConfigHeader:
        """Look up a configuration header by id."""
        for header in self.headers:
            if header.config_id == config_id:
                return header
        raise SerializationError("no header for configuration %r" % config_id)

    def byte_size(self) -> int:
        """Total wire size."""
        return len(self.to_bytes())

    def header_overhead(self) -> int:
        """Bytes spent on keying headers (the paper's bandwidth overhead)."""
        return sum(h.byte_size() for h in self.headers)
