"""The broadcast package: what the Pub actually transmits (Section V-C).

For every policy configuration the package carries a :class:`ConfigHeader`
with

* the ordered condition-key lists of the member policies (public -- the
  paper's ACPs are known to subscribers so they can pick "an access control
  policy acp_k it satisfies"), and
* the ACV-BGKM header ``(X, z_1..z_N)``; the empty configuration carries no
  header at all ("the Pub can just encrypt ... without the need of
  publishing X or z_i", Example 4).

plus each subdocument encrypted (authenticated) under its configuration's
key.  The whole package serializes to a single byte string; subscribers
need nothing else besides their CSSs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple

from repro.errors import SerializationError
from repro.gkm.strategy import KeyingHeader, decode_keying_header
from repro.wire.codec import (
    Cursor,
    pack_bytes as _pack_bytes,
    pack_str as _pack_str,
    pack_u16 as _pack_u16,
)

__all__ = ["ConfigHeader", "EncryptedSubdocument", "BroadcastPackage"]

_MAGIC = b"BPK1"


@dataclass(frozen=True)
class ConfigHeader:
    """Public keying material for one policy configuration.

    ``acv`` is either a dense :class:`~repro.gkm.acv.AcvHeader` or a
    :class:`~repro.gkm.buckets.BucketedHeader` (one ACV per row-order
    bucket, shared key) -- receivers dispatch on the serialized magic
    tag, so dense and bucketed publishers interoperate transparently.
    """

    config_id: str
    policies: Tuple[Tuple[str, ...], ...]  # ordered condition keys per policy
    acv: Optional[KeyingHeader]

    def to_bytes(self) -> bytes:
        out = bytearray()
        out += _pack_str(self.config_id)
        out += _pack_u16(len(self.policies))
        for policy in self.policies:
            out += _pack_u16(len(policy))
            for key in policy:
                out += _pack_str(key)
        if self.acv is None:
            out += _pack_bytes(b"")
        else:
            out += _pack_bytes(self.acv.to_bytes())
        return bytes(out)

    @classmethod
    def from_bytes_at(cls, data: bytes, offset: int) -> Tuple["ConfigHeader", int]:
        cursor = Cursor(data, offset)
        config_id = cursor.read_str()
        n_policies = cursor.read_u16()
        policies: List[Tuple[str, ...]] = []
        for _ in range(n_policies):
            n_conds = cursor.read_u16()
            policies.append(tuple(cursor.read_str() for _ in range(n_conds)))
        acv_raw = cursor.read_bytes()
        acv = decode_keying_header(acv_raw) if acv_raw else None
        return (
            cls(config_id=config_id, policies=tuple(policies), acv=acv),
            cursor.offset,
        )

    def byte_size(self) -> int:
        return len(self.to_bytes())


@dataclass(frozen=True)
class EncryptedSubdocument:
    """One subdocument ciphertext, tagged with its configuration."""

    name: str
    config_id: str
    ciphertext: bytes

    def to_bytes(self) -> bytes:
        return _pack_str(self.name) + _pack_str(self.config_id) + _pack_bytes(
            self.ciphertext
        )

    @classmethod
    def from_bytes_at(
        cls, data: bytes, offset: int
    ) -> Tuple["EncryptedSubdocument", int]:
        cursor = Cursor(data, offset)
        name = cursor.read_str()
        config_id = cursor.read_str()
        ciphertext = cursor.read_bytes()
        return cls(name=name, config_id=config_id, ciphertext=ciphertext), cursor.offset


@dataclass(frozen=True)
class BroadcastPackage:
    """A complete encrypted document broadcast."""

    document: str
    headers: Tuple[ConfigHeader, ...]
    subdocuments: Tuple[EncryptedSubdocument, ...]

    def to_bytes(self) -> bytes:
        out = bytearray(_MAGIC)
        out += _pack_str(self.document)
        out += _pack_u16(len(self.headers))
        for header in self.headers:
            out += _pack_bytes(header.to_bytes())
        out += _pack_u16(len(self.subdocuments))
        for sub in self.subdocuments:
            out += sub.to_bytes()
        return bytes(out)

    @classmethod
    def from_bytes(cls, data: bytes) -> "BroadcastPackage":
        cursor = Cursor(data)
        if cursor.take(4) != _MAGIC:
            raise SerializationError("bad magic")
        document = cursor.read_str()
        n_headers = cursor.read_u16()
        headers = []
        for _ in range(n_headers):
            raw = cursor.read_bytes()
            header, end = ConfigHeader.from_bytes_at(raw, 0)
            if end != len(raw):
                raise SerializationError("trailing bytes inside config header")
            headers.append(header)
        n_subs = cursor.read_u16()
        subs = []
        for _ in range(n_subs):
            sub, cursor.offset = EncryptedSubdocument.from_bytes_at(
                cursor.data, cursor.offset
            )
            subs.append(sub)
        cursor.expect_end()  # canonical encodings only: reject trailing bytes
        return cls(
            document=document,
            headers=tuple(headers),
            subdocuments=tuple(subs),
        )

    def header_for(self, config_id: str) -> ConfigHeader:
        """Look up a configuration header by id."""
        for header in self.headers:
            if header.config_id == config_id:
                return header
        raise SerializationError("no header for configuration %r" % config_id)

    def byte_size(self) -> int:
        """Total wire size."""
        return len(self.to_bytes())

    def header_overhead(self) -> int:
        """Bytes spent on keying headers (the paper's bandwidth overhead)."""
        return sum(h.byte_size() for h in self.headers)
