"""Document model, policy-driven segmentation and broadcast packaging.

A :class:`~repro.documents.model.Document` is an ordered set of named
subdocuments (Section V: "documents are divided in subdocuments based on
the access control policies").  :func:`~repro.documents.segmentation.segment`
groups subdocuments by policy configuration, and
:class:`~repro.documents.package.BroadcastPackage` is the self-contained
broadcast artifact: per-configuration key headers (ACV + nonces + the
public policy descriptions) and the encrypted subdocuments.

XML documents (the paper's EHR.xml scenario) are supported through
:func:`~repro.documents.model.document_from_xml`.
"""

from repro.documents.model import Document, Subdocument, document_from_xml
from repro.documents.package import (
    BroadcastPackage,
    ConfigHeader,
    EncryptedSubdocument,
)
from repro.documents.segmentation import SegmentPlan, segment

__all__ = [
    "Document",
    "Subdocument",
    "document_from_xml",
    "BroadcastPackage",
    "ConfigHeader",
    "EncryptedSubdocument",
    "SegmentPlan",
    "segment",
]
