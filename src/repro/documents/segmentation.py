"""Grouping subdocuments by policy configuration (Section V-C.1).

``segment`` computes, for a document and a policy set, the distinct policy
configurations and which subdocuments each governs -- the unit at which
symmetric keys are assigned ("for each policy configuration of D, the Pub
generates a key K ... and uses K to encrypt all subdocuments associated
with this policy configuration").
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

from repro.documents.model import Document
from repro.errors import DocumentError
from repro.policy.acp import AccessControlPolicy
from repro.policy.configuration import PolicyConfiguration, build_configurations

__all__ = ["SegmentPlan", "segment"]


@dataclass(frozen=True)
class SegmentPlan:
    """The outcome of segmentation.

    ``groups`` maps a stable configuration id (``pc1``, ``pc2``, ... in
    first-appearance document order; the empty configuration, if any, is
    always last as ``pc0``) to the pair (configuration, subdocument names).
    """

    document: str
    groups: Tuple[Tuple[str, PolicyConfiguration, Tuple[str, ...]], ...]

    def configuration_of(self, subdocument: str) -> Tuple[str, PolicyConfiguration]:
        """The (config id, configuration) governing a subdocument."""
        for config_id, config, names in self.groups:
            if subdocument in names:
                return config_id, config
        raise DocumentError("subdocument %r not in plan" % subdocument)

    def non_empty_groups(
        self,
    ) -> List[Tuple[str, PolicyConfiguration, Tuple[str, ...]]]:
        """Groups whose configuration has at least one policy."""
        return [g for g in self.groups if not g[1].is_empty]


def segment(
    document: Document, policies: Sequence[AccessControlPolicy]
) -> SegmentPlan:
    """Compute the segmentation plan for ``document`` under ``policies``.

    Policies whose target document name differs from ``document.name`` are
    ignored; policies referencing unknown subdocuments raise
    :class:`DocumentError` (a misconfigured policy should fail loudly, not
    silently protect nothing).
    """
    relevant = [p for p in policies if p.document == document.name]
    known = set(document.subdocument_names())
    for policy in relevant:
        missing = policy.objects - known
        if missing:
            raise DocumentError(
                "policy %s references unknown subdocuments %s"
                % (policy.describe(), sorted(missing))
            )

    by_sub = build_configurations(document.subdocument_names(), relevant)

    # Group subdocuments sharing a configuration, in document order.
    order: List[PolicyConfiguration] = []
    members: Dict[PolicyConfiguration, List[str]] = {}
    for sub_name in document.subdocument_names():
        config = by_sub[sub_name]
        if config not in members:
            members[config] = []
            order.append(config)
        members[config].append(sub_name)

    groups = []
    counter = 1
    for config in order:
        if config.is_empty:
            config_id = "pc0"
        else:
            config_id = "pc%d" % counter
            counter += 1
        groups.append((config_id, config, tuple(members[config])))
    # Keep the empty configuration (if present) at the end for readability.
    groups.sort(key=lambda g: g[0] == "pc0")
    return SegmentPlan(document=document.name, groups=tuple(groups))
