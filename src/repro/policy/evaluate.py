"""Ground-truth policy evaluation against attribute assignments.

The privacy-preserving protocol never evaluates policies on cleartext
attributes -- that is the whole point -- but tests, baselines (which are
*not* privacy preserving) and workload generators need the ground truth:
"which subscribers are qualified for which subdocuments?".
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import PolicyError
from repro.policy.acp import AccessControlPolicy
from repro.policy.condition import AttributeCondition
from repro.policy.configuration import PolicyConfiguration
from repro.policy.encoding import AttributeValue

__all__ = ["satisfies_condition", "satisfies_policy", "satisfies_configuration"]


def satisfies_condition(
    attributes: Mapping[str, AttributeValue], condition: AttributeCondition
) -> bool:
    """True when ``attributes`` contains a value satisfying ``condition``.

    A missing attribute never satisfies.  Comparing a string attribute with
    an order operator raises :class:`PolicyError` (the policy itself forbids
    it, so reaching this means the caller mixed types).
    """
    if condition.name not in attributes:
        return False
    actual = attributes[condition.name]
    expected = condition.value
    if condition.op == "=":
        return actual == expected
    if condition.op == "!=":
        return actual != expected
    if isinstance(actual, str) or isinstance(expected, str):
        raise PolicyError(
            "order comparison between %r and %r" % (actual, expected)
        )
    if condition.op == ">=":
        return actual >= expected
    if condition.op == "<=":
        return actual <= expected
    if condition.op == ">":
        return actual > expected
    if condition.op == "<":
        return actual < expected
    raise PolicyError("unknown operator %r" % condition.op)


def satisfies_policy(
    attributes: Mapping[str, AttributeValue], policy: AccessControlPolicy
) -> bool:
    """True when every condition of the conjunction holds."""
    return all(satisfies_condition(attributes, c) for c in policy.conditions)


def satisfies_configuration(
    attributes: Mapping[str, AttributeValue], configuration: PolicyConfiguration
) -> bool:
    """True when at least one member policy is satisfied."""
    return any(satisfies_policy(attributes, acp) for acp in configuration.policies)
