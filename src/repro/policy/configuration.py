"""Policy configurations (Definition 5) and dominance (Definition 6).

The *policy configuration* of a subdocument is the set of policies that
apply to it; subdocuments sharing a configuration share one symmetric key.
``Pc_i`` *dominates* ``Pc_j`` iff ``Pc_i`` is a subset of ``Pc_j`` -- a Sub
able to derive ``Pc_i``'s key satisfies some policy in ``Pc_i`` and hence
in ``Pc_j``, so dominance induces the hierarchical access control of
Section VIII-A.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Iterable, List, Sequence, Tuple

from repro.policy.acp import AccessControlPolicy

__all__ = ["PolicyConfiguration", "build_configurations", "dominates", "dominance_order"]


@dataclass(frozen=True)
class PolicyConfiguration:
    """The (possibly empty) set of policies protecting a subdocument."""

    policies: FrozenSet[AccessControlPolicy]

    @classmethod
    def of(cls, policies: Iterable[AccessControlPolicy]) -> "PolicyConfiguration":
        """Normalizing constructor."""
        return cls(policies=frozenset(policies))

    @property
    def is_empty(self) -> bool:
        """Empty configuration: nobody can access (Pc6 in Example 4)."""
        return not self.policies

    def dominates(self, other: "PolicyConfiguration") -> bool:
        """Definition 6: ``self`` dominates ``other`` iff ``self <= other``."""
        return self.policies <= other.policies

    def condition_keys(self) -> FrozenSet[str]:
        """All condition identifiers appearing in any member policy."""
        keys = set()
        for acp in self.policies:
            keys.update(acp.condition_keys())
        return frozenset(keys)

    def sorted_policies(self) -> List[AccessControlPolicy]:
        """Member policies in a deterministic order (by description)."""
        return sorted(self.policies, key=lambda acp: acp.describe())

    def __len__(self) -> int:
        return len(self.policies)

    def __iter__(self):
        return iter(self.sorted_policies())

    def describe(self) -> str:
        """Rendering like ``{acp1, acp3}``."""
        if self.is_empty:
            return "{}"
        return "{%s}" % ", ".join(a.describe() for a in self.sorted_policies())


def dominates(a: PolicyConfiguration, b: PolicyConfiguration) -> bool:
    """Module-level alias for :meth:`PolicyConfiguration.dominates`."""
    return a.dominates(b)


def build_configurations(
    subdocuments: Sequence[str],
    policies: Sequence[AccessControlPolicy],
) -> Dict[str, PolicyConfiguration]:
    """Map every subdocument to its policy configuration.

    This is the segmentation step of Section V-C.1: each subdocument's
    configuration is the set of policies whose object list contains it.
    Subdocuments no policy mentions get the empty configuration.
    """
    return {
        sub: PolicyConfiguration.of(
            acp for acp in policies if acp.applies_to(sub)
        )
        for sub in subdocuments
    }


def dominance_order(
    configurations: Iterable[PolicyConfiguration],
) -> List[Tuple[PolicyConfiguration, PolicyConfiguration]]:
    """All strict dominance pairs ``(a, b)`` with ``a`` dominating ``b``.

    Useful for the Section VIII-A optimisation: keys of dominated
    configurations are derivable from dominating ones.
    """
    unique = list({c for c in configurations})
    pairs = []
    for a in unique:
        for b in unique:
            if a is not b and a.policies != b.policies and a.dominates(b):
                pairs.append((a, b))
    return pairs
