"""Attribute conditions (Definition 3): ``"nameA op l"`` atoms.

A condition pairs an identity-attribute name with a comparison against a
literal, e.g. ``level >= 59`` or ``role = "nur"``.  Conditions know how to
turn themselves into the OCBE :class:`~repro.ocbe.predicates.Predicate`
that the Pub uses during registration -- order comparisons require integer
literals, equality/inequality also accept strings (which are hash-encoded
by :mod:`repro.policy.encoding`).
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import PolicyParseError, PredicateError
from repro.ocbe.predicates import (
    DEFAULT_BIT_LENGTH,
    Predicate,
    predicate_from_op,
)
from repro.policy.encoding import MAX_STRING_BITS, AttributeValue, encode_value

__all__ = ["AttributeCondition", "parse_condition"]

_ORDER_OPS = {">", "<", ">=", "<="}
_ALL_OPS = {"=", "!=", ">=", "<=", ">", "<"}

_CONDITION_RE = re.compile(
    r"""^\s*
        (?P<name>[A-Za-z_][A-Za-z0-9_\-]*)
        \s*(?P<op>!=|>=|<=|==|=|>|<)\s*
        (?P<value>"[^"]*"|'[^']*'|-?\d+|[A-Za-z_][A-Za-z0-9_\-]*)
        \s*$""",
    re.VERBOSE,
)


@dataclass(frozen=True)
class AttributeCondition:
    """``attribute op value``, the atom of the policy language."""

    name: str
    op: str
    value: AttributeValue

    def __post_init__(self) -> None:
        if self.op not in _ALL_OPS:
            raise PolicyParseError("unsupported operator %r" % self.op)
        if self.op in _ORDER_OPS and not isinstance(self.value, int):
            raise PolicyParseError(
                "order comparison %r requires an integer literal, got %r"
                % (self.op, self.value)
            )

    def predicate(self, ell: int = DEFAULT_BIT_LENGTH) -> Predicate:
        """The OCBE predicate enforcing this condition.

        ``ell`` bounds the bit length of integer attribute values; string
        values use the fixed :data:`MAX_STRING_BITS` domain.
        """
        x0 = encode_value(self.value)
        if isinstance(self.value, str):
            if self.op not in ("=", "!="):
                raise PredicateError("order comparison on string value")
            ell = MAX_STRING_BITS
        return predicate_from_op(self.op, x0, ell)

    def key(self) -> str:
        """Stable identifier used for CSS-table columns, e.g. ``"role = nur"``."""
        return "%s %s %s" % (self.name, self.op, self.value)

    def __str__(self) -> str:
        return self.key()


def parse_condition(text: str) -> AttributeCondition:
    """Parse ``"level >= 59"`` / ``'role = "nur"'`` / ``"role = nur"``.

    Bare words and quoted strings are string literals; digit sequences are
    integers.
    """
    match = _CONDITION_RE.match(text)
    if not match:
        raise PolicyParseError("cannot parse condition %r" % text)
    name = match.group("name")
    op = match.group("op")
    if op == "==":
        op = "="
    raw = match.group("value")
    value: AttributeValue
    if raw[0] in "\"'":
        value = raw[1:-1]
    elif re.fullmatch(r"-?\d+", raw):
        value = int(raw)
    else:
        value = raw
    return AttributeCondition(name=name, op=op, value=value)
