"""The attribute-based policy language of Section V (Definitions 3-6).

* :class:`~repro.policy.condition.AttributeCondition` -- ``"name op l"``
  atoms such as ``level >= 59`` or ``role = nur`` (Definition 3);
* :class:`~repro.policy.acp.AccessControlPolicy` -- a conjunction of
  conditions applied to a set of subdocuments of a document (Definition 4);
* :class:`~repro.policy.configuration.PolicyConfiguration` -- the set of
  policies that protect one subdocument (Definition 5), with the dominance
  partial order of Definition 6;
* :mod:`~repro.policy.encoding` -- the "standard encoding" of attribute
  values into field elements the paper assumes;
* :mod:`~repro.policy.evaluate` -- ground-truth evaluation of conditions /
  policies against attribute assignments (used by tests and baselines; the
  protocol itself never sees attribute values in clear).
"""

from repro.policy.acp import AccessControlPolicy, parse_policy
from repro.policy.condition import AttributeCondition, parse_condition
from repro.policy.configuration import (
    PolicyConfiguration,
    build_configurations,
    dominates,
)
from repro.policy.encoding import encode_value, MAX_STRING_BITS
from repro.policy.evaluate import satisfies_condition, satisfies_policy

__all__ = [
    "AttributeCondition",
    "parse_condition",
    "AccessControlPolicy",
    "parse_policy",
    "PolicyConfiguration",
    "build_configurations",
    "dominates",
    "encode_value",
    "MAX_STRING_BITS",
    "satisfies_condition",
    "satisfies_policy",
]
