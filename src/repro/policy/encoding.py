"""Canonical encoding of attribute values as integers.

The paper's IdMgr "encodes the identity attribute value as ``x in F_p`` in
a standard way"; we pin that standard down:

* non-negative integers encode as themselves (so comparison predicates act
  on the natural order);
* strings encode as a 128-bit hash (collision probability ``2**-64`` by the
  birthday bound) -- sufficient for equality/inequality predicates, while
  order comparisons on strings are rejected because hashing does not
  preserve order.

Both the IdMgr (committing a Sub's value) and the Pub (building predicates
from policy conditions) must use this same function, otherwise equality
predicates would never match.
"""

from __future__ import annotations

from typing import Union

from repro.crypto.hashes import default_hash, hash_to_int
from repro.errors import InvalidParameterError

__all__ = ["encode_value", "MAX_STRING_BITS", "AttributeValue"]

#: Bit width of encoded string values.
MAX_STRING_BITS = 128

AttributeValue = Union[int, str]


def encode_value(value: AttributeValue) -> int:
    """Encode an attribute value as a non-negative integer.

    >>> encode_value(28)
    28
    >>> encode_value("nurse") == encode_value("nurse")
    True
    """
    if isinstance(value, bool):
        raise InvalidParameterError("bool attribute values are ambiguous; use 0/1")
    if isinstance(value, int):
        if value < 0:
            raise InvalidParameterError(
                "attribute values must be non-negative, got %d" % value
            )
        return value
    if isinstance(value, str):
        data = b"repro/attribute-value:" + value.encode("utf-8")
        return hash_to_int(default_hash(), data, MAX_STRING_BITS)
    raise InvalidParameterError(
        "unsupported attribute value type %r" % type(value).__name__
    )
