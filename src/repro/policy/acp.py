"""Access control policies (Definition 4): ``acp = (s, o, D)``.

``s`` is a conjunction of attribute conditions, ``o`` a set of subdocument
identifiers of document ``D``.  Example 2 of the paper:

>>> acp = parse_policy(
...     'level >= 58 AND role = "nurse"',
...     ["physical_exam", "treatment_plan"],
...     "EHR.xml",
... )
>>> len(acp.conditions)
2
"""

from __future__ import annotations

import re
from dataclasses import dataclass
from typing import FrozenSet, Iterable, Tuple

from repro.errors import PolicyParseError
from repro.policy.condition import AttributeCondition, parse_condition

__all__ = ["AccessControlPolicy", "parse_policy"]

_CONJUNCTION_RE = re.compile(r"\s+(?:AND|and)\s+|\s*(?:&&|∧)\s*")


@dataclass(frozen=True)
class AccessControlPolicy:
    """A conjunction of conditions granting access to subdocuments."""

    conditions: Tuple[AttributeCondition, ...]
    objects: FrozenSet[str]
    document: str

    def __post_init__(self) -> None:
        if not self.conditions:
            raise PolicyParseError("a policy needs at least one condition")
        if not self.objects:
            raise PolicyParseError("a policy needs at least one object")

    @property
    def attribute_names(self) -> FrozenSet[str]:
        """Names of all attributes the subject expression mentions."""
        return frozenset(c.name for c in self.conditions)

    def condition_keys(self) -> Tuple[str, ...]:
        """Stable identifiers of the conditions (CSS-table columns)."""
        return tuple(c.key() for c in self.conditions)

    def applies_to(self, subdocument: str) -> bool:
        """True when this policy governs ``subdocument``."""
        return subdocument in self.objects

    def describe(self) -> str:
        """Human-readable rendering close to the paper's notation."""
        subject = " AND ".join(str(c) for c in self.conditions)
        return "(%s, {%s}, %s)" % (subject, ", ".join(sorted(self.objects)), self.document)

    def __str__(self) -> str:
        return self.describe()


def parse_policy(
    subject: str, objects: Iterable[str], document: str
) -> AccessControlPolicy:
    """Build a policy from a conjunction string and an object list.

    The subject accepts ``AND``, ``and``, ``&&`` or the logical-and symbol
    as conjunction separators.
    """
    parts = [p for p in _CONJUNCTION_RE.split(subject) if p.strip()]
    if not parts:
        raise PolicyParseError("empty policy subject %r" % subject)
    conditions = tuple(parse_condition(part) for part in parts)
    return AccessControlPolicy(
        conditions=conditions, objects=frozenset(objects), document=document
    )
