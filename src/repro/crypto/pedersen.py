"""Pedersen commitments over any prime-order cyclic group (Section IV-B).

A trusted party publishes ``(G, p, g, h)`` with the discrete log of ``h``
to base ``g`` unknown; a committer hides ``x`` as ``c = g^x h^r``.  The
scheme is unconditionally hiding and computationally binding under the DL
assumption.

The :class:`PedersenParams` setup derives ``h`` by hashing into the group,
so *nobody* (including the setup party) knows ``log_g h``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import CommitmentError, InvalidParameterError
from repro.groups.base import CyclicGroup, GroupElement
from repro.groups.precompute import shared_table

__all__ = ["PedersenParams", "PedersenCommitment"]


@dataclass(frozen=True)
class PedersenCommitment:
    """An opened-or-unopened commitment value ``c = g^x h^r``."""

    value: GroupElement

    def to_bytes(self) -> bytes:
        """Canonical encoding of the commitment (the group element)."""
        return self.value.to_bytes()

    def __mul__(self, other: "PedersenCommitment") -> "PedersenCommitment":
        """Homomorphic combination: commits to the sum of values."""
        if not isinstance(other, PedersenCommitment):
            return NotImplemented
        return PedersenCommitment(self.value * other.value)


# Naive exponentiations of a base before its fixed-base table is built:
# one-shot uses (tiny unit tests, ad-hoc verification) never pay the
# build, while any registration-shaped workload crosses the threshold
# within its first commitment batch.
_TABLE_THRESHOLD = 4


class PedersenParams:
    """System parameters ``(G, g, h)`` for Pedersen commitments.

    Exponentiations of the two (public) bases go through lazily built
    fixed-base tables (:mod:`repro.groups.precompute`), shared process-
    wide per base.  Tables are deterministic and never serialized:
    pickling drops them and a recovered instance rebuilds on use.
    """

    __slots__ = ("group", "g", "h", "_tables", "_uses")

    def __init__(
        self,
        group: CyclicGroup,
        g: Optional[GroupElement] = None,
        h: Optional[GroupElement] = None,
    ):
        self.group = group
        self.g = g if g is not None else group.generator()
        self.h = h if h is not None else group.second_generator()
        if self.g.is_identity() or self.h.is_identity():
            raise InvalidParameterError("generators must be non-identity")
        if self.g == self.h:
            raise InvalidParameterError("g and h must be distinct")
        self._tables = [None, None]
        self._uses = [0, 0]

    @property
    def order(self) -> int:
        """The exponent-space modulus p (the group order)."""
        return self.group.order

    def _pow(self, idx: int, base: GroupElement, exponent: int) -> GroupElement:
        table = self._tables[idx]
        if table is None:
            self._uses[idx] += 1
            if self._uses[idx] < _TABLE_THRESHOLD:
                return base**exponent
            table = self._tables[idx] = shared_table(base)
        return table.pow(exponent)

    def pow_g(self, exponent: int) -> GroupElement:
        """``g ** exponent`` through the fixed-base fast path."""
        return self._pow(0, self.g, exponent)

    def pow_h(self, exponent: int) -> GroupElement:
        """``h ** exponent`` through the fixed-base fast path."""
        return self._pow(1, self.h, exponent)

    def precompute_now(self) -> None:
        """Force-build both tables (e.g. in a worker-pool initializer)."""
        self._tables[0] = shared_table(self.g)
        self._tables[1] = shared_table(self.h)

    def __getstate__(self):
        # Tables are never serialized -- they are pure functions of the
        # public bases and are rebuilt (lazily) wherever this lands.
        return (self.group, self.g, self.h)

    def __setstate__(self, state):
        self.group, self.g, self.h = state
        self._tables = [None, None]
        self._uses = [0, 0]

    def commit(
        self, x: int, r: Optional[int] = None, rng: Optional[random.Random] = None
    ) -> Tuple[PedersenCommitment, int]:
        """Commit to ``x``; returns ``(commitment, r)``.

        When ``r`` is omitted a uniform blinding scalar is drawn (from
        ``rng`` if given, else from the system CSPRNG).
        """
        p = self.order
        x %= p
        if r is None:
            if rng is not None:
                r = rng.randrange(p)
            else:
                import secrets

                r = secrets.randbelow(p)
        r %= p
        c = self.pow_g(x) * self.pow_h(r)
        return PedersenCommitment(c), r

    def verify_open(self, commitment: PedersenCommitment, x: int, r: int) -> bool:
        """Check that ``commitment`` opens to ``(x, r)``."""
        expected = self.pow_g(x % self.order) * self.pow_h(r % self.order)
        return commitment.value == expected

    def require_open(self, commitment: PedersenCommitment, x: int, r: int) -> None:
        """Like :meth:`verify_open` but raises :class:`CommitmentError`."""
        if not self.verify_open(commitment, x, r):
            raise CommitmentError("commitment does not open to claimed (x, r)")

    def __repr__(self) -> str:
        return "PedersenParams(group=%s)" % self.group.name
