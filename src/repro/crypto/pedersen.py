"""Pedersen commitments over any prime-order cyclic group (Section IV-B).

A trusted party publishes ``(G, p, g, h)`` with the discrete log of ``h``
to base ``g`` unknown; a committer hides ``x`` as ``c = g^x h^r``.  The
scheme is unconditionally hiding and computationally binding under the DL
assumption.

The :class:`PedersenParams` setup derives ``h`` by hashing into the group,
so *nobody* (including the setup party) knows ``log_g h``.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.errors import CommitmentError, InvalidParameterError
from repro.groups.base import CyclicGroup, GroupElement

__all__ = ["PedersenParams", "PedersenCommitment"]


@dataclass(frozen=True)
class PedersenCommitment:
    """An opened-or-unopened commitment value ``c = g^x h^r``."""

    value: GroupElement

    def to_bytes(self) -> bytes:
        """Canonical encoding of the commitment (the group element)."""
        return self.value.to_bytes()

    def __mul__(self, other: "PedersenCommitment") -> "PedersenCommitment":
        """Homomorphic combination: commits to the sum of values."""
        if not isinstance(other, PedersenCommitment):
            return NotImplemented
        return PedersenCommitment(self.value * other.value)


class PedersenParams:
    """System parameters ``(G, g, h)`` for Pedersen commitments."""

    __slots__ = ("group", "g", "h")

    def __init__(
        self,
        group: CyclicGroup,
        g: Optional[GroupElement] = None,
        h: Optional[GroupElement] = None,
    ):
        self.group = group
        self.g = g if g is not None else group.generator()
        self.h = h if h is not None else group.second_generator()
        if self.g.is_identity() or self.h.is_identity():
            raise InvalidParameterError("generators must be non-identity")
        if self.g == self.h:
            raise InvalidParameterError("g and h must be distinct")

    @property
    def order(self) -> int:
        """The exponent-space modulus p (the group order)."""
        return self.group.order

    def commit(
        self, x: int, r: Optional[int] = None, rng: Optional[random.Random] = None
    ) -> Tuple[PedersenCommitment, int]:
        """Commit to ``x``; returns ``(commitment, r)``.

        When ``r`` is omitted a uniform blinding scalar is drawn (from
        ``rng`` if given, else from the system CSPRNG).
        """
        p = self.order
        x %= p
        if r is None:
            if rng is not None:
                r = rng.randrange(p)
            else:
                import secrets

                r = secrets.randbelow(p)
        r %= p
        c = (self.g ** x) * (self.h ** r)
        return PedersenCommitment(c), r

    def verify_open(self, commitment: PedersenCommitment, x: int, r: int) -> bool:
        """Check that ``commitment`` opens to ``(x, r)``."""
        expected = (self.g ** (x % self.order)) * (self.h ** (r % self.order))
        return commitment.value == expected

    def require_open(self, commitment: PedersenCommitment, x: int, r: int) -> None:
        """Like :meth:`verify_open` but raises :class:`CommitmentError`."""
        if not self.verify_open(commitment, x, r):
            raise CommitmentError("commitment does not open to claimed (x, r)")

    def __repr__(self) -> str:
        return "PedersenParams(group=%s)" % self.group.name
