"""HMAC (RFC 2104) over any :class:`~repro.crypto.hashes.HashFunction`.

Implemented from the definition rather than delegating to :mod:`hmac`, so it
composes with the from-scratch hash implementations; the test suite checks
it against the standard library for random inputs.
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashes import HashFunction, default_hash

__all__ = ["hmac_digest", "constant_time_equal"]

_IPAD = 0x36
_OPAD = 0x5C


def hmac_digest(
    key: bytes, message: bytes, h: Optional[HashFunction] = None
) -> bytes:
    """HMAC of ``message`` under ``key`` with hash ``h`` (default SHA-256)."""
    h = h or default_hash()
    block = h.block_size
    if len(key) > block:
        key = h.digest(key)
    key = key.ljust(block, b"\x00")
    inner = h.digest(bytes(k ^ _IPAD for k in key) + message)
    return h.digest(bytes(k ^ _OPAD for k in key) + inner)


def constant_time_equal(a: bytes, b: bytes) -> bool:
    """Compare two byte strings without early exit on mismatch."""
    if len(a) != len(b):
        return False
    diff = 0
    for x, y in zip(a, b):
        diff |= x ^ y
    return diff == 0
