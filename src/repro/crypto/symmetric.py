"""Semantically secure symmetric envelopes (the paper's ``E_Key[M]``).

The OCBE protocols and the document-dissemination layer both need an
IND-CPA-secure symmetric scheme keyed by arbitrary-length secrets.  Two
interchangeable backends implement the small :class:`SymmetricCipher`
interface:

* :class:`AesCtrHmacCipher` -- AES-CTR with HMAC-SHA-256 in
  encrypt-then-MAC composition (authenticated; the default);
* :class:`HashStreamCipher` -- a hash-counter stream cipher with an HMAC
  tag, useful where a very cheap software cipher is wanted and as an
  independent implementation for differential testing.

Both produce self-contained ciphertexts ``nonce || body || tag`` and raise
:class:`~repro.errors.DecryptionError` on any authentication failure, so a
subscriber that derived a *wrong* group key learns nothing but "failed" --
matching the OCBE requirement that decryption under the wrong committed
value yields no information.
"""

from __future__ import annotations

import abc
import secrets
from typing import Optional

from repro.crypto.aes import AES
from repro.crypto.hashes import HashFunction, default_hash, expand_message
from repro.crypto.kdf import derive_key
from repro.crypto.mac import constant_time_equal, hmac_digest
from repro.crypto.modes import ctr_xor
from repro.errors import DecryptionError, InvalidParameterError

__all__ = [
    "SymmetricCipher",
    "AesCtrHmacCipher",
    "HashStreamCipher",
    "default_cipher",
    "NONCE_LEN",
]

NONCE_LEN = 16
_NONCE_LEN = NONCE_LEN
_TAG_LEN = 16


def _resolve_nonce(nonce: Optional[bytes]) -> bytes:
    if nonce is None:
        return secrets.token_bytes(_NONCE_LEN)
    if len(nonce) != _NONCE_LEN:
        raise InvalidParameterError("nonce must be %d bytes" % _NONCE_LEN)
    return nonce


class SymmetricCipher(abc.ABC):
    """Key-based authenticated encryption of byte strings."""

    name: str = "abstract"

    @abc.abstractmethod
    def encrypt(
        self, key: bytes, plaintext: bytes, nonce: Optional[bytes] = None
    ) -> bytes:
        """Encrypt; output embeds nonce and authentication tag.

        ``nonce`` defaults to a fresh CSPRNG draw.  Callers that manage
        their own randomness streams (the OCBE senders, which draw every
        envelope's random choices up front so the arithmetic can run in
        worker processes) pass an explicit ``NONCE_LEN``-byte value; it
        must never repeat under the same key.
        """

    @abc.abstractmethod
    def decrypt(self, key: bytes, ciphertext: bytes) -> bytes:
        """Decrypt; raises :class:`DecryptionError` on any failure."""

    def overhead(self) -> int:
        """Ciphertext expansion in bytes."""
        return _NONCE_LEN + _TAG_LEN


class AesCtrHmacCipher(SymmetricCipher):
    """AES-CTR + HMAC (encrypt-then-MAC).  The library default.

    The caller's ``key`` may have any length; it is stretched with HKDF
    into independent encryption and MAC subkeys.
    """

    name = "aes-ctr-hmac"

    def __init__(self, aes_key_size: int = 16, h: Optional[HashFunction] = None):
        if aes_key_size not in (16, 24, 32):
            raise InvalidParameterError("aes_key_size must be 16/24/32")
        self.aes_key_size = aes_key_size
        self.h = h or default_hash()

    def _subkeys(self, key: bytes) -> tuple:
        enc = derive_key(key, self.aes_key_size, info=b"repro/aes-ctr/enc", h=self.h)
        mac = derive_key(key, 32, info=b"repro/aes-ctr/mac", h=self.h)
        return enc, mac

    def encrypt(
        self, key: bytes, plaintext: bytes, nonce: Optional[bytes] = None
    ) -> bytes:
        enc_key, mac_key = self._subkeys(key)
        nonce = _resolve_nonce(nonce)
        body = ctr_xor(AES(enc_key), nonce, plaintext)
        tag = hmac_digest(mac_key, nonce + body, self.h)[:_TAG_LEN]
        return nonce + body + tag

    def decrypt(self, key: bytes, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _NONCE_LEN + _TAG_LEN:
            raise DecryptionError("ciphertext too short")
        enc_key, mac_key = self._subkeys(key)
        nonce = ciphertext[:_NONCE_LEN]
        body = ciphertext[_NONCE_LEN:-_TAG_LEN]
        tag = ciphertext[-_TAG_LEN:]
        expected = hmac_digest(mac_key, nonce + body, self.h)[:_TAG_LEN]
        if not constant_time_equal(tag, expected):
            raise DecryptionError("authentication tag mismatch")
        return ctr_xor(AES(enc_key), nonce, body)


class HashStreamCipher(SymmetricCipher):
    """Hash-counter stream cipher with an HMAC tag.

    Keystream = ``H(counter || key || nonce)`` blocks; security reduces to
    the hash behaving as a random oracle, the same assumption the paper's
    GKM analysis already makes.  Much faster than pure-Python AES for large
    payloads.
    """

    name = "hash-stream"

    def __init__(self, h: Optional[HashFunction] = None):
        self.h = h or default_hash()

    def encrypt(
        self, key: bytes, plaintext: bytes, nonce: Optional[bytes] = None
    ) -> bytes:
        nonce = _resolve_nonce(nonce)
        stream = expand_message(self.h, key + nonce, len(plaintext))
        body = bytes(a ^ b for a, b in zip(plaintext, stream))
        mac_key = derive_key(key, 32, info=b"repro/hash-stream/mac", h=self.h)
        tag = hmac_digest(mac_key, nonce + body, self.h)[:_TAG_LEN]
        return nonce + body + tag

    def decrypt(self, key: bytes, ciphertext: bytes) -> bytes:
        if len(ciphertext) < _NONCE_LEN + _TAG_LEN:
            raise DecryptionError("ciphertext too short")
        nonce = ciphertext[:_NONCE_LEN]
        body = ciphertext[_NONCE_LEN:-_TAG_LEN]
        tag = ciphertext[-_TAG_LEN:]
        mac_key = derive_key(key, 32, info=b"repro/hash-stream/mac", h=self.h)
        expected = hmac_digest(mac_key, nonce + body, self.h)[:_TAG_LEN]
        if not constant_time_equal(tag, expected):
            raise DecryptionError("authentication tag mismatch")
        stream = expand_message(self.h, key + nonce, len(body))
        return bytes(a ^ b for a, b in zip(body, stream))


_DEFAULT = AesCtrHmacCipher()


def default_cipher() -> SymmetricCipher:
    """The library-wide default authenticated cipher (AES-CTR + HMAC)."""
    return _DEFAULT
