"""HKDF (RFC 5869) and key-derivation helpers.

The OCBE envelopes encrypt under ``H(sigma)``; :func:`derive_key` is the
canonical way the library turns a group element / shared secret into a
symmetric key of the publisher's configured length ``l'`` (Section V-B).
"""

from __future__ import annotations

from typing import Optional

from repro.crypto.hashes import HashFunction, default_hash
from repro.crypto.mac import hmac_digest
from repro.errors import InvalidParameterError

__all__ = ["hkdf_extract", "hkdf_expand", "derive_key"]


def hkdf_extract(
    salt: bytes, ikm: bytes, h: Optional[HashFunction] = None
) -> bytes:
    """HKDF-Extract: a pseudorandom key from input keying material."""
    h = h or default_hash()
    if not salt:
        salt = b"\x00" * h.digest_size
    return hmac_digest(salt, ikm, h)


def hkdf_expand(
    prk: bytes, info: bytes, length: int, h: Optional[HashFunction] = None
) -> bytes:
    """HKDF-Expand: stretch a pseudorandom key to ``length`` bytes."""
    h = h or default_hash()
    if length <= 0:
        raise InvalidParameterError("length must be positive")
    if length > 255 * h.digest_size:
        raise InvalidParameterError("HKDF output too long for one expand")
    blocks = []
    prev = b""
    counter = 1
    while sum(len(b) for b in blocks) < length:
        prev = hmac_digest(prk, prev + info + bytes([counter]), h)
        blocks.append(prev)
        counter += 1
    return b"".join(blocks)[:length]


def derive_key(
    secret: bytes,
    length: int,
    info: bytes = b"repro/key",
    salt: bytes = b"",
    h: Optional[HashFunction] = None,
) -> bytes:
    """Derive a ``length``-byte symmetric key from ``secret``.

    This realises the paper's ``H(sigma)`` keying step while supporting any
    key length the publisher configures (the paper's ``l'`` parameter).
    """
    return hkdf_expand(hkdf_extract(salt, secret, h), info, length, h)
