"""Schnorr signatures over any prime-order cyclic group.

The IdMgr signs identity tokens ``(nym, id-tag, c)``; any EUF-CMA signature
works, and Schnorr is the natural choice because it reuses the group
infrastructure already required by the Pedersen commitments (and is proven
secure in the random-oracle model, matching the paper's analysis setting).
"""

from __future__ import annotations

import random
import secrets
from dataclasses import dataclass
from typing import Optional

from repro.crypto.hashes import HashFunction, default_hash, hash_to_range
from repro.errors import InvalidParameterError
from repro.groups.base import CyclicGroup, GroupElement
from repro.groups.precompute import generator_table

__all__ = ["SchnorrSignature", "SchnorrKeyPair"]


@dataclass(frozen=True)
class SchnorrSignature:
    """A signature ``(e, s)`` with ``e = H(R || pub || m)``, ``s = k - e*sk``."""

    e: int
    s: int

    def to_bytes(self, scalar_len: int) -> bytes:
        """Fixed-width encoding ``e || s``."""
        return self.e.to_bytes(scalar_len, "big") + self.s.to_bytes(scalar_len, "big")

    @classmethod
    def from_bytes(cls, data: bytes, scalar_len: int) -> "SchnorrSignature":
        """Parse the fixed-width encoding."""
        if len(data) != 2 * scalar_len:
            raise InvalidParameterError("bad signature length")
        return cls(
            int.from_bytes(data[:scalar_len], "big"),
            int.from_bytes(data[scalar_len:], "big"),
        )


class SchnorrKeyPair:
    """A Schnorr signing/verification key pair over ``group``."""

    __slots__ = ("group", "g", "sk", "pk", "h")

    def __init__(
        self,
        group: CyclicGroup,
        sk: Optional[int] = None,
        rng: Optional[random.Random] = None,
        h: Optional[HashFunction] = None,
    ):
        self.group = group
        self.g = group.generator()
        if sk is None:
            if rng is not None:
                sk = rng.randrange(1, group.order)
            else:
                sk = secrets.randbelow(group.order - 1) + 1
        self.sk = sk % group.order
        if self.sk == 0:
            raise InvalidParameterError("secret key must be nonzero")
        self.pk = self.g**self.sk
        self.h = h or default_hash()

    def _challenge(self, commitment: GroupElement, message: bytes) -> int:
        data = (
            b"repro/schnorr-sig"
            + commitment.to_bytes()
            + self.pk.to_bytes()
            + message
        )
        return hash_to_range(self.h, data, self.group.order)

    def sign(
        self, message: bytes, rng: Optional[random.Random] = None
    ) -> SchnorrSignature:
        """Sign ``message``; nondeterministic nonce unless ``rng`` given."""
        q = self.group.order
        if rng is not None:
            k = rng.randrange(1, q)
        else:
            k = secrets.randbelow(q - 1) + 1
        # The nonce commitment is a fixed-base exponentiation of the
        # canonical generator: go through the shared precomputed table
        # (one table per group per process, also used by Pedersen's g).
        commitment = generator_table(self.group).pow(k)
        e = self._challenge(commitment, message)
        s = (k - e * self.sk) % q
        return SchnorrSignature(e, s)

    def verify(self, message: bytes, signature: SchnorrSignature) -> bool:
        """Verify with this key pair's public key."""
        return verify(self.group, self.pk, message, signature, self.h)


def verify(
    group: CyclicGroup,
    pk: GroupElement,
    message: bytes,
    signature: SchnorrSignature,
    h: Optional[HashFunction] = None,
) -> bool:
    """Public-key Schnorr verification: ``R' = g^s pk^e``; accept iff
    ``H(R' || pk || m) == e``."""
    h = h or default_hash()
    q = group.order
    if not (0 <= signature.e < q and 0 <= signature.s < q):
        return False
    commitment = generator_table(group).pow(signature.s) * (pk**signature.e)
    data = b"repro/schnorr-sig" + commitment.to_bytes() + pk.to_bytes() + message
    return hash_to_range(h, data, q) == signature.e
