"""Cryptographic primitives built from scratch.

The paper's C/C++ system uses OpenSSL SHA-1, AES and NTL; this package
reimplements the needed primitives in pure Python:

* :mod:`repro.crypto.hashes` -- SHA-1/SHA-256 (from-scratch implementations
  validated against ``hashlib``, plus fast ``hashlib``-backed defaults) and
  the canonical ``H(r_1 || ... || r_m || z)`` used by the GKM scheme;
* :mod:`repro.crypto.aes` -- FIPS-197 AES-128/192/256 block cipher;
* :mod:`repro.crypto.modes` -- CTR and CBC/PKCS#7 modes;
* :mod:`repro.crypto.mac` / :mod:`repro.crypto.kdf` -- HMAC and HKDF;
* :mod:`repro.crypto.symmetric` -- the semantically-secure symmetric
  envelope ``E_Key[M]`` the OCBE protocols require (AES-CTR with
  encrypt-then-MAC, or a hash-based stream cipher);
* :mod:`repro.crypto.pedersen` -- Pedersen commitments over any
  :class:`~repro.groups.base.CyclicGroup`;
* :mod:`repro.crypto.schnorr_sig` -- Schnorr signatures (the IdMgr's token
  signature).
"""

from repro.crypto.hashes import (
    HashFunction,
    PureSha1,
    PureSha256,
    default_hash,
    hash_concat,
    hash_to_int,
    hash_to_range,
)
from repro.crypto.aes import AES
from repro.crypto.kdf import hkdf_expand, hkdf_extract, derive_key
from repro.crypto.mac import hmac_digest
from repro.crypto.modes import cbc_decrypt, cbc_encrypt, ctr_keystream, ctr_xor
from repro.crypto.pedersen import PedersenCommitment, PedersenParams
from repro.crypto.schnorr_sig import SchnorrKeyPair, SchnorrSignature
from repro.crypto.symmetric import (
    AesCtrHmacCipher,
    HashStreamCipher,
    SymmetricCipher,
    default_cipher,
)

__all__ = [
    "HashFunction",
    "PureSha1",
    "PureSha256",
    "default_hash",
    "hash_concat",
    "hash_to_int",
    "hash_to_range",
    "AES",
    "hkdf_expand",
    "hkdf_extract",
    "derive_key",
    "hmac_digest",
    "cbc_decrypt",
    "cbc_encrypt",
    "ctr_keystream",
    "ctr_xor",
    "PedersenCommitment",
    "PedersenParams",
    "SchnorrKeyPair",
    "SchnorrSignature",
    "AesCtrHmacCipher",
    "HashStreamCipher",
    "SymmetricCipher",
    "default_cipher",
]
