"""AES block cipher (FIPS-197), implemented from first principles.

The S-box is *derived* at import time from the GF(2^8) multiplicative
inverse followed by the affine transform, rather than pasted as a table, so
the construction is auditable; known-answer tests in the suite pin the
result to the FIPS-197 vectors.

Only the raw 16-byte block transform lives here; chaining modes are in
:mod:`repro.crypto.modes`.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.errors import InvalidParameterError

__all__ = ["AES"]


def _gf_mul(a: int, b: int) -> int:
    """Multiplication in GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1."""
    result = 0
    for _ in range(8):
        if b & 1:
            result ^= a
        carry = a & 0x80
        a = (a << 1) & 0xFF
        if carry:
            a ^= 0x1B
        b >>= 1
    return result


def _build_sbox() -> tuple:
    """Compute the AES S-box from inversion + affine map."""
    # Build the inverse table via exp/log over the generator 3.
    exp = [0] * 256
    log = [0] * 256
    x = 1
    for i in range(255):
        exp[i] = x
        log[x] = i
        x = _gf_mul(x, 3)
    exp[255] = exp[0]

    def inv(a: int) -> int:
        return 0 if a == 0 else exp[255 - log[a]]

    sbox = [0] * 256
    for a in range(256):
        b = inv(a)
        # affine transform: b ^ rotl1(b) ^ rotl2(b) ^ rotl3(b) ^ rotl4(b) ^ 0x63
        r = b
        for shift in range(1, 5):
            r ^= ((b << shift) | (b >> (8 - shift))) & 0xFF
        sbox[a] = r ^ 0x63
    inv_sbox = [0] * 256
    for a, s in enumerate(sbox):
        inv_sbox[s] = a
    return tuple(sbox), tuple(inv_sbox)


_SBOX, _INV_SBOX = _build_sbox()

# Precomputed GF(2^8) multiplication tables for MixColumns.
_MUL2 = tuple(_gf_mul(x, 2) for x in range(256))
_MUL3 = tuple(_gf_mul(x, 3) for x in range(256))
_MUL9 = tuple(_gf_mul(x, 9) for x in range(256))
_MUL11 = tuple(_gf_mul(x, 11) for x in range(256))
_MUL13 = tuple(_gf_mul(x, 13) for x in range(256))
_MUL14 = tuple(_gf_mul(x, 14) for x in range(256))

_RCON = (0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40, 0x80, 0x1B, 0x36, 0x6C, 0xD8)

_ROUNDS_BY_KEYLEN = {16: 10, 24: 12, 32: 14}


class AES:
    """AES-128/192/256 raw block cipher.

    >>> cipher = AES(bytes(range(16)))
    >>> block = cipher.encrypt_block(bytes(16))
    >>> cipher.decrypt_block(block) == bytes(16)
    True
    """

    block_size = 16

    def __init__(self, key: bytes):
        if len(key) not in _ROUNDS_BY_KEYLEN:
            raise InvalidParameterError(
                "AES key must be 16/24/32 bytes, got %d" % len(key)
            )
        self.key_size = len(key)
        self.rounds = _ROUNDS_BY_KEYLEN[len(key)]
        self._round_keys = self._expand_key(key)

    # -- key schedule --------------------------------------------------------

    def _expand_key(self, key: bytes) -> List[List[int]]:
        nk = len(key) // 4
        total_words = 4 * (self.rounds + 1)
        words: List[List[int]] = [list(key[4 * i : 4 * i + 4]) for i in range(nk)]
        for i in range(nk, total_words):
            temp = words[i - 1][:]
            if i % nk == 0:
                temp = temp[1:] + temp[:1]                     # RotWord
                temp = [_SBOX[b] for b in temp]                # SubWord
                temp[0] ^= _RCON[i // nk - 1]
            elif nk > 6 and i % nk == 4:
                temp = [_SBOX[b] for b in temp]                # AES-256 extra Sub
            words.append([a ^ b for a, b in zip(words[i - nk], temp)])
        # Group into 16-byte round keys (column-major state order).
        round_keys = []
        for r in range(self.rounds + 1):
            rk = []
            for c in range(4):
                rk.extend(words[4 * r + c])
            round_keys.append(rk)
        return round_keys

    # -- block transforms ------------------------------------------------------

    def encrypt_block(self, block: bytes) -> bytes:
        """Encrypt one 16-byte block."""
        if len(block) != 16:
            raise InvalidParameterError("block must be 16 bytes")
        s = [b ^ k for b, k in zip(block, self._round_keys[0])]
        for rnd in range(1, self.rounds):
            s = self._encrypt_round(s, self._round_keys[rnd])
        # Final round: SubBytes + ShiftRows + AddRoundKey (no MixColumns).
        s = [_SBOX[b] for b in s]
        s = self._shift_rows(s)
        rk = self._round_keys[self.rounds]
        return bytes(b ^ k for b, k in zip(s, rk))

    def decrypt_block(self, block: bytes) -> bytes:
        """Decrypt one 16-byte block."""
        if len(block) != 16:
            raise InvalidParameterError("block must be 16 bytes")
        s = [b ^ k for b, k in zip(block, self._round_keys[self.rounds])]
        s = self._inv_shift_rows(s)
        s = [_INV_SBOX[b] for b in s]
        for rnd in range(self.rounds - 1, 0, -1):
            rk = self._round_keys[rnd]
            s = [b ^ k for b, k in zip(s, rk)]
            s = self._inv_mix_columns(s)
            s = self._inv_shift_rows(s)
            s = [_INV_SBOX[b] for b in s]
        rk = self._round_keys[0]
        return bytes(b ^ k for b, k in zip(s, rk))

    # -- round helpers (state is a 16-list in column-major order) -------------

    def _encrypt_round(self, s: Sequence[int], rk: Sequence[int]) -> List[int]:
        s = [_SBOX[b] for b in s]
        s = self._shift_rows(s)
        s = self._mix_columns(s)
        return [b ^ k for b, k in zip(s, rk)]

    @staticmethod
    def _shift_rows(s: Sequence[int]) -> List[int]:
        # state[r + 4c]; row r rotates left by r.
        return [
            s[0], s[5], s[10], s[15],
            s[4], s[9], s[14], s[3],
            s[8], s[13], s[2], s[7],
            s[12], s[1], s[6], s[11],
        ]

    @staticmethod
    def _inv_shift_rows(s: Sequence[int]) -> List[int]:
        return [
            s[0], s[13], s[10], s[7],
            s[4], s[1], s[14], s[11],
            s[8], s[5], s[2], s[15],
            s[12], s[9], s[6], s[3],
        ]

    @staticmethod
    def _mix_columns(s: Sequence[int]) -> List[int]:
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL2[a0] ^ _MUL3[a1] ^ a2 ^ a3
            out[c + 1] = a0 ^ _MUL2[a1] ^ _MUL3[a2] ^ a3
            out[c + 2] = a0 ^ a1 ^ _MUL2[a2] ^ _MUL3[a3]
            out[c + 3] = _MUL3[a0] ^ a1 ^ a2 ^ _MUL2[a3]
        return out

    @staticmethod
    def _inv_mix_columns(s: Sequence[int]) -> List[int]:
        out = [0] * 16
        for c in range(0, 16, 4):
            a0, a1, a2, a3 = s[c], s[c + 1], s[c + 2], s[c + 3]
            out[c] = _MUL14[a0] ^ _MUL11[a1] ^ _MUL13[a2] ^ _MUL9[a3]
            out[c + 1] = _MUL9[a0] ^ _MUL14[a1] ^ _MUL11[a2] ^ _MUL13[a3]
            out[c + 2] = _MUL13[a0] ^ _MUL9[a1] ^ _MUL14[a2] ^ _MUL11[a3]
            out[c + 3] = _MUL11[a0] ^ _MUL13[a1] ^ _MUL9[a2] ^ _MUL14[a3]
        return out
