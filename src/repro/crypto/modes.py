"""Block-cipher modes of operation: CTR and CBC with PKCS#7 padding.

These operate over the raw :class:`~repro.crypto.aes.AES` block transform.
CTR is the library default (no padding, seekable); CBC is provided for
completeness and interoperability tests.
"""

from __future__ import annotations

from repro.crypto.aes import AES
from repro.errors import DecryptionError, InvalidParameterError

__all__ = [
    "ctr_keystream",
    "ctr_xor",
    "cbc_encrypt",
    "cbc_decrypt",
    "pkcs7_pad",
    "pkcs7_unpad",
]

_BLOCK = 16


def ctr_keystream(cipher: AES, nonce: bytes, length: int) -> bytes:
    """Generate ``length`` keystream bytes from a 16-byte initial counter."""
    if len(nonce) != _BLOCK:
        raise InvalidParameterError("CTR nonce/counter must be 16 bytes")
    counter = int.from_bytes(nonce, "big")
    out = bytearray()
    while len(out) < length:
        out += cipher.encrypt_block(counter.to_bytes(_BLOCK, "big"))
        counter = (counter + 1) % (1 << 128)
    return bytes(out[:length])


def ctr_xor(cipher: AES, nonce: bytes, data: bytes) -> bytes:
    """CTR-mode transform (encryption and decryption are identical)."""
    stream = ctr_keystream(cipher, nonce, len(data))
    return bytes(a ^ b for a, b in zip(data, stream))


def pkcs7_pad(data: bytes) -> bytes:
    """Pad to a multiple of the block size (always adds 1..16 bytes)."""
    pad = _BLOCK - len(data) % _BLOCK
    return data + bytes([pad]) * pad


def pkcs7_unpad(data: bytes) -> bytes:
    """Strip PKCS#7 padding, raising :class:`DecryptionError` if malformed."""
    if not data or len(data) % _BLOCK:
        raise DecryptionError("ciphertext length is not a block multiple")
    pad = data[-1]
    if pad < 1 or pad > _BLOCK or data[-pad:] != bytes([pad]) * pad:
        raise DecryptionError("invalid PKCS#7 padding")
    return data[:-pad]


def cbc_encrypt(cipher: AES, iv: bytes, plaintext: bytes) -> bytes:
    """CBC-encrypt with PKCS#7 padding."""
    if len(iv) != _BLOCK:
        raise InvalidParameterError("CBC IV must be 16 bytes")
    padded = pkcs7_pad(plaintext)
    out = bytearray()
    prev = iv
    for offset in range(0, len(padded), _BLOCK):
        block = bytes(a ^ b for a, b in zip(padded[offset : offset + _BLOCK], prev))
        prev = cipher.encrypt_block(block)
        out += prev
    return bytes(out)


def cbc_decrypt(cipher: AES, iv: bytes, ciphertext: bytes) -> bytes:
    """CBC-decrypt and strip PKCS#7 padding."""
    if len(iv) != _BLOCK:
        raise InvalidParameterError("CBC IV must be 16 bytes")
    if len(ciphertext) % _BLOCK:
        raise DecryptionError("ciphertext length is not a block multiple")
    out = bytearray()
    prev = iv
    for offset in range(0, len(ciphertext), _BLOCK):
        block = ciphertext[offset : offset + _BLOCK]
        out += bytes(a ^ b for a, b in zip(cipher.decrypt_block(block), prev))
        prev = block
    return pkcs7_unpad(bytes(out))
