"""Cryptographic hash functions and hash-to-field helpers.

Two families live here:

* **From-scratch SHA-1 and SHA-256** (:class:`PureSha1`,
  :class:`PureSha256`).  The paper's system hashes with OpenSSL's SHA-1; we
  reimplement both functions from the FIPS specs and validate them against
  ``hashlib`` in the test suite.  They are interchangeable with the
  ``hashlib``-backed default through the small :class:`HashFunction`
  adapter.

* **Canonical concatenation hashing** (:func:`hash_concat`).  The GKM
  scheme computes ``a_{i,j} = H(r_{i,1} || r_{i,2} || ... || z_j)``; the
  paper notes that a "canonical encoding" is assumed.  We make that
  canonical encoding explicit -- every part is length-prefixed so distinct
  tuples can never collide by concatenation ambiguity -- and reduce into
  ``F_q`` with doubled output length to keep the modular bias negligible.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Callable, Sequence, Union

from repro.errors import InvalidParameterError

__all__ = [
    "HashFunction",
    "PureSha1",
    "PureSha256",
    "default_hash",
    "get_hash",
    "sha1",
    "sha256",
    "hash_to_int",
    "hash_to_range",
    "hash_concat",
    "expand_message",
]

BytesLike = Union[bytes, bytearray, memoryview]


class HashFunction:
    """A named hash function: ``digest(data) -> bytes`` plus metadata."""

    __slots__ = ("name", "digest_size", "_fn")

    def __init__(self, name: str, digest_size: int, fn: Callable[[bytes], bytes]):
        self.name = name
        self.digest_size = digest_size
        self._fn = fn

    def digest(self, data: BytesLike) -> bytes:
        """Hash ``data`` and return the raw digest."""
        return self._fn(bytes(data))

    def hexdigest(self, data: BytesLike) -> str:
        """Hash ``data`` and return the hex digest."""
        return self.digest(data).hex()

    @property
    def block_size(self) -> int:
        """Compression-function block size (both SHA-1/SHA-256 use 64)."""
        return 64

    def __repr__(self) -> str:
        return "HashFunction(%s, %d bytes)" % (self.name, self.digest_size)

    def __reduce__(self):
        # Digest callables may be lambdas; named instances pickle by name
        # so OCBE setups can cross a spawn boundary to worker processes.
        if _REGISTRY.get(self.name) is not self:
            raise TypeError(
                "only registered named HashFunction instances are picklable; "
                "%r is not in the registry" % self.name
            )
        return (get_hash, (self.name,))


# ---------------------------------------------------------------------------
# Pure-Python SHA-256 (FIPS 180-4)
# ---------------------------------------------------------------------------

_SHA256_K = (
    0x428A2F98, 0x71374491, 0xB5C0FBCF, 0xE9B5DBA5, 0x3956C25B, 0x59F111F1,
    0x923F82A4, 0xAB1C5ED5, 0xD807AA98, 0x12835B01, 0x243185BE, 0x550C7DC3,
    0x72BE5D74, 0x80DEB1FE, 0x9BDC06A7, 0xC19BF174, 0xE49B69C1, 0xEFBE4786,
    0x0FC19DC6, 0x240CA1CC, 0x2DE92C6F, 0x4A7484AA, 0x5CB0A9DC, 0x76F988DA,
    0x983E5152, 0xA831C66D, 0xB00327C8, 0xBF597FC7, 0xC6E00BF3, 0xD5A79147,
    0x06CA6351, 0x14292967, 0x27B70A85, 0x2E1B2138, 0x4D2C6DFC, 0x53380D13,
    0x650A7354, 0x766A0ABB, 0x81C2C92E, 0x92722C85, 0xA2BFE8A1, 0xA81A664B,
    0xC24B8B70, 0xC76C51A3, 0xD192E819, 0xD6990624, 0xF40E3585, 0x106AA070,
    0x19A4C116, 0x1E376C08, 0x2748774C, 0x34B0BCB5, 0x391C0CB3, 0x4ED8AA4A,
    0x5B9CCA4F, 0x682E6FF3, 0x748F82EE, 0x78A5636F, 0x84C87814, 0x8CC70208,
    0x90BEFFFA, 0xA4506CEB, 0xBEF9A3F7, 0xC67178F2,
)

_SHA256_IV = (
    0x6A09E667, 0xBB67AE85, 0x3C6EF372, 0xA54FF53A,
    0x510E527F, 0x9B05688C, 0x1F83D9AB, 0x5BE0CD19,
)

_MASK32 = 0xFFFFFFFF


def _rotr(x: int, n: int) -> int:
    return ((x >> n) | (x << (32 - n))) & _MASK32


def _sha256_compress(state: tuple, block: bytes) -> tuple:
    w = list(struct.unpack(">16I", block))
    for i in range(16, 64):
        s0 = _rotr(w[i - 15], 7) ^ _rotr(w[i - 15], 18) ^ (w[i - 15] >> 3)
        s1 = _rotr(w[i - 2], 17) ^ _rotr(w[i - 2], 19) ^ (w[i - 2] >> 10)
        w.append((w[i - 16] + s0 + w[i - 7] + s1) & _MASK32)
    a, b, c, d, e, f, g, h = state
    for i in range(64):
        s1 = _rotr(e, 6) ^ _rotr(e, 11) ^ _rotr(e, 25)
        ch = (e & f) ^ (~e & g)
        temp1 = (h + s1 + ch + _SHA256_K[i] + w[i]) & _MASK32
        s0 = _rotr(a, 2) ^ _rotr(a, 13) ^ _rotr(a, 22)
        maj = (a & b) ^ (a & c) ^ (b & c)
        temp2 = (s0 + maj) & _MASK32
        h, g, f, e, d, c, b, a = (
            g, f, e, (d + temp1) & _MASK32, c, b, a, (temp1 + temp2) & _MASK32,
        )
    return tuple((s + v) & _MASK32 for s, v in zip(state, (a, b, c, d, e, f, g, h)))


def _md_pad(data: bytes) -> bytes:
    """Merkle--Damgard padding shared by SHA-1 and SHA-256."""
    length = len(data)
    padded = data + b"\x80"
    padded += b"\x00" * ((56 - len(padded) % 64) % 64)
    padded += struct.pack(">Q", length * 8)
    return padded


class PureSha256:
    """From-scratch SHA-256 (FIPS 180-4); use ``PureSha256.hash(data)``."""

    digest_size = 32
    name = "pure-sha256"

    @staticmethod
    def hash(data: BytesLike) -> bytes:
        """One-shot SHA-256 digest of ``data``."""
        state = _SHA256_IV
        padded = _md_pad(bytes(data))
        for offset in range(0, len(padded), 64):
            state = _sha256_compress(state, padded[offset : offset + 64])
        return struct.pack(">8I", *state)


# ---------------------------------------------------------------------------
# Pure-Python SHA-1 (FIPS 180-1) -- the paper's hash
# ---------------------------------------------------------------------------

_SHA1_IV = (0x67452301, 0xEFCDAB89, 0x98BADCFE, 0x10325476, 0xC3D2E1F0)


def _rotl(x: int, n: int) -> int:
    return ((x << n) | (x >> (32 - n))) & _MASK32


def _sha1_compress(state: tuple, block: bytes) -> tuple:
    w = list(struct.unpack(">16I", block))
    for i in range(16, 80):
        w.append(_rotl(w[i - 3] ^ w[i - 8] ^ w[i - 14] ^ w[i - 16], 1))
    a, b, c, d, e = state
    for i in range(80):
        if i < 20:
            f, k = (b & c) | (~b & d), 0x5A827999
        elif i < 40:
            f, k = b ^ c ^ d, 0x6ED9EBA1
        elif i < 60:
            f, k = (b & c) | (b & d) | (c & d), 0x8F1BBCDC
        else:
            f, k = b ^ c ^ d, 0xCA62C1D6
        a, b, c, d, e = (
            (_rotl(a, 5) + f + e + k + w[i]) & _MASK32,
            a,
            _rotl(b, 30),
            c,
            d,
        )
    return tuple((s + v) & _MASK32 for s, v in zip(state, (a, b, c, d, e)))


class PureSha1:
    """From-scratch SHA-1 (the hash used by the paper's implementation)."""

    digest_size = 20
    name = "pure-sha1"

    @staticmethod
    def hash(data: BytesLike) -> bytes:
        """One-shot SHA-1 digest of ``data``."""
        state = _SHA1_IV
        padded = _md_pad(bytes(data))
        for offset in range(0, len(padded), 64):
            state = _sha1_compress(state, padded[offset : offset + 64])
        return struct.pack(">5I", *state)


# ---------------------------------------------------------------------------
# Named instances
# ---------------------------------------------------------------------------

#: Fast default (hashlib-backed SHA-256).
sha256 = HashFunction("sha256", 32, lambda d: hashlib.sha256(d).digest())
#: Fast SHA-1 for paper-faithful runs (hashlib-backed).
sha1 = HashFunction("sha1", 20, lambda d: hashlib.sha1(d).digest())
#: Interoperable from-scratch implementations.
pure_sha256 = HashFunction("pure-sha256", 32, PureSha256.hash)
pure_sha1 = HashFunction("pure-sha1", 20, PureSha1.hash)

_REGISTRY = {h.name: h for h in (sha256, sha1, pure_sha256, pure_sha1)}


def get_hash(name: str) -> HashFunction:
    """Look up a named hash instance (also the unpickle constructor)."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise InvalidParameterError("unknown hash function %r" % name) from None


def default_hash() -> HashFunction:
    """The library-wide default hash (SHA-256)."""
    return sha256


# ---------------------------------------------------------------------------
# Hash-to-integer / hash-to-field
# ---------------------------------------------------------------------------


def expand_message(h: HashFunction, data: bytes, out_len: int) -> bytes:
    """Expand ``data`` into ``out_len`` bytes with counter-mode hashing."""
    if out_len < 0:
        raise InvalidParameterError("out_len must be >= 0")
    blocks = []
    counter = 0
    while sum(len(b) for b in blocks) < out_len:
        blocks.append(h.digest(struct.pack(">I", counter) + data))
        counter += 1
    return b"".join(blocks)[:out_len]


def hash_to_int(h: HashFunction, data: bytes, bits: int) -> int:
    """Hash ``data`` to a ``bits``-bit integer (counter-expanded)."""
    nbytes = (bits + 7) // 8
    raw = expand_message(h, data, nbytes)
    value = int.from_bytes(raw, "big")
    excess = nbytes * 8 - bits
    return value >> excess if excess else value


def hash_to_range(h: HashFunction, data: bytes, modulus: int) -> int:
    """Hash ``data`` to ``[0, modulus)`` with negligible bias.

    Expands to twice the modulus bit length before reducing, so the bias is
    at most ``2**-len(modulus)``.
    """
    if modulus < 2:
        raise InvalidParameterError("modulus must be >= 2")
    wide = hash_to_int(h, data, 2 * modulus.bit_length())
    return wide % modulus


def hash_concat(
    h: HashFunction, parts: Sequence[BytesLike], modulus: int
) -> int:
    """The GKM hash ``H(part_1 || ... || part_k) mod q`` (Eq. 2 of the paper).

    Every part is prefixed with its 4-byte big-endian length, which realises
    the "canonical encoding" the paper assumes: ``("ab","c")`` and
    ``("a","bc")`` hash differently.
    """
    buf = bytearray()
    for part in parts:
        raw = bytes(part)
        buf += struct.pack(">I", len(raw))
        buf += raw
    return hash_to_range(h, bytes(buf), modulus)
