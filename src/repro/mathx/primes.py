"""Primality testing and prime generation.

Miller--Rabin with the deterministic witness sets for 64-bit integers and a
randomised round count beyond that, plus helpers for generating the field
moduli used by the group backends and the GKM schemes.
"""

from __future__ import annotations

import random
from typing import Optional

from repro.errors import InvalidParameterError

__all__ = [
    "is_prime",
    "next_prime",
    "prev_prime",
    "random_prime",
    "random_safe_prime",
]

_SMALL_PRIMES = (
    2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67,
    71, 73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227, 229,
)

# Deterministic Miller-Rabin witnesses for n < 3,317,044,064,679,887,385,961,981
# (covers all 64-bit integers and then some).  Sinclair / Sorenson-Webster.
_DETERMINISTIC_WITNESSES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)
_DETERMINISTIC_BOUND = 3317044064679887385961981


def _miller_rabin_witness(n: int, a: int, d: int, r: int) -> bool:
    """Return True if ``a`` witnesses that ``n`` is composite."""
    x = pow(a, d, n)
    if x == 1 or x == n - 1:
        return False
    for _ in range(r - 1):
        x = (x * x) % n
        if x == n - 1:
            return False
    return True


def is_prime(n: int, rounds: int = 40, rng: Optional[random.Random] = None) -> bool:
    """Probabilistic primality test.

    Deterministic for ``n`` below ~3.3e24 (which covers every modulus this
    library generates below 81 bits); Miller--Rabin with ``rounds`` random
    bases beyond that, giving an error probability below ``4**-rounds``.
    """
    if n < 2:
        return False
    for p in _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d, r = n - 1, 0
    while d % 2 == 0:
        d //= 2
        r += 1
    if n < _DETERMINISTIC_BOUND:
        witnesses = [a for a in _DETERMINISTIC_WITNESSES if a < n - 1]
    else:
        rng = rng or random
        witnesses = [rng.randrange(2, n - 1) for _ in range(rounds)]
    for a in witnesses:
        if _miller_rabin_witness(n, a, d, r):
            return False
    return True


def next_prime(n: int) -> int:
    """Smallest prime strictly greater than ``n``."""
    candidate = max(n + 1, 2)
    if candidate > 2 and candidate % 2 == 0:
        candidate += 1
    while not is_prime(candidate):
        candidate += 1 if candidate == 2 else 2
    return candidate


def prev_prime(n: int) -> int:
    """Largest prime strictly smaller than ``n``.

    Raises :class:`InvalidParameterError` when no such prime exists (n <= 2).
    """
    if n <= 2:
        raise InvalidParameterError("no prime below %r" % n)
    candidate = n - 1
    if candidate > 2 and candidate % 2 == 0:
        candidate -= 1
    while candidate >= 2:
        if is_prime(candidate):
            return candidate
        candidate -= 1 if candidate == 3 else 2
    raise InvalidParameterError("no prime below %r" % n)


def random_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Random prime with exactly ``bits`` bits (top bit set)."""
    if bits < 2:
        raise InvalidParameterError("need bits >= 2, got %r" % bits)
    rng = rng or random
    while True:
        candidate = rng.getrandbits(bits) | (1 << (bits - 1)) | 1
        if is_prime(candidate):
            return candidate


def random_safe_prime(bits: int, rng: Optional[random.Random] = None) -> int:
    """Random safe prime ``p`` (``(p-1)/2`` also prime) with ``bits`` bits.

    Used to construct Schnorr groups where the full multiplicative group has
    a large prime-order subgroup.  This is slow for large ``bits``; the
    library ships precomputed parameters for common sizes.
    """
    if bits < 3:
        raise InvalidParameterError("need bits >= 3, got %r" % bits)
    rng = rng or random
    while True:
        q = random_prime(bits - 1, rng)
        p = 2 * q + 1
        if p.bit_length() == bits and is_prime(p):
            return p
