"""Dense linear algebra over prime fields.

This module replaces NTL's ``kernel()`` used by the paper.  The publisher's
rekey operation solves ``A Y = 0`` for a matrix ``A`` with one row per
(policy, subscriber) pair; the null space is computed by Gauss--Jordan
elimination and the published access control vector (ACV) is a random
combination of the basis vectors, exactly as Section VII of the paper
describes.

Two elimination kernels are provided:

* a **pure-Python** kernel valid for any prime modulus (used for the paper's
  80-bit field ``F_q``), and
* a **numpy** kernel used automatically when the modulus fits in 31 bits, so
  that all intermediate products fit in ``int64``.  It performs the same
  row reduction with vectorised outer-product updates and is what makes the
  N = 1000 sweeps of Figures 3--5 feasible in Python.

Matrices store plain ints internally (row-major) for speed; the
:class:`~repro.mathx.field.PrimeField` is carried alongside for semantics.
"""

from __future__ import annotations

import random
from bisect import bisect_left
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    FieldMismatchError,
    InvalidParameterError,
    SingularMatrixError,
)
from repro.mathx.field import PrimeField

__all__ = [
    "Matrix",
    "RrefFactorization",
    "null_space",
    "random_null_vector",
    "solve",
    "vec_dot",
    "NUMPY_MODULUS_LIMIT",
]

# Largest modulus for which the numpy int64 kernel is safe:  row updates
# compute a*b with a, b < p, so we need p**2 < 2**63.
NUMPY_MODULUS_LIMIT = 1 << 31


def vec_dot(u: Sequence[int], v: Sequence[int], p: int) -> int:
    """Inner product of two integer vectors modulo ``p``."""
    if len(u) != len(v):
        raise InvalidParameterError(
            "dot product of vectors with lengths %d and %d" % (len(u), len(v))
        )
    return sum(a * b for a, b in zip(u, v)) % p


class Matrix:
    """A dense matrix over ``F_p`` with row-major integer storage."""

    __slots__ = ("field", "rows", "ncols")

    def __init__(self, field: PrimeField, rows: Sequence[Sequence[int]]):
        self.field = field
        p = field.p
        materialized: List[List[int]] = [[int(x) % p for x in row] for row in rows]
        if materialized:
            width = len(materialized[0])
            for row in materialized:
                if len(row) != width:
                    raise InvalidParameterError("ragged matrix rows")
            self.ncols = width
        else:
            self.ncols = 0
        self.rows = materialized

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, field: PrimeField, n: int) -> "Matrix":
        """The n-by-n identity matrix."""
        return cls(field, [[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, field: PrimeField, nrows: int, ncols: int) -> "Matrix":
        """The all-zero matrix of the given shape."""
        m = cls(field, [])
        m.rows = [[0] * ncols for _ in range(nrows)]
        m.ncols = ncols
        return m

    @classmethod
    def random(
        cls,
        field: PrimeField,
        nrows: int,
        ncols: int,
        rng: Optional[random.Random] = None,
    ) -> "Matrix":
        """Matrix with independent uniform entries."""
        rng = rng or random
        p = field.p
        m = cls(field, [])
        m.rows = [[rng.randrange(p) for _ in range(ncols)] for _ in range(nrows)]
        m.ncols = ncols
        return m

    # -- metadata ----------------------------------------------------------

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return len(self.rows)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (len(self.rows), self.ncols)

    def copy(self) -> "Matrix":
        """Deep copy."""
        m = Matrix(self.field, [])
        m.rows = [row[:] for row in self.rows]
        m.ncols = self.ncols
        return m

    def __getitem__(self, index: Tuple[int, int]) -> int:
        i, j = index
        return self.rows[i][j]

    def row(self, i: int) -> Tuple[int, ...]:
        """Row ``i`` as a tuple of ints."""
        return tuple(self.rows[i])

    def column(self, j: int) -> Tuple[int, ...]:
        """Column ``j`` as a tuple of ints."""
        return tuple(row[j] for row in self.rows)

    # -- arithmetic --------------------------------------------------------

    def _check(self, other: "Matrix") -> None:
        if self.field.p != other.field.p:
            raise FieldMismatchError("matrices over different fields")

    def __add__(self, other: "Matrix") -> "Matrix":
        self._check(other)
        if self.shape != other.shape:
            raise InvalidParameterError(
                "shape mismatch %s vs %s" % (self.shape, other.shape)
            )
        p = self.field.p
        return Matrix(
            self.field,
            [
                [(a + b) % p for a, b in zip(r1, r2)]
                for r1, r2 in zip(self.rows, other.rows)
            ],
        )

    def __sub__(self, other: "Matrix") -> "Matrix":
        self._check(other)
        if self.shape != other.shape:
            raise InvalidParameterError(
                "shape mismatch %s vs %s" % (self.shape, other.shape)
            )
        p = self.field.p
        return Matrix(
            self.field,
            [
                [(a - b) % p for a, b in zip(r1, r2)]
                for r1, r2 in zip(self.rows, other.rows)
            ],
        )

    def __matmul__(self, other: "Matrix") -> "Matrix":
        self._check(other)
        if self.ncols != other.nrows:
            raise InvalidParameterError(
                "cannot multiply %s by %s" % (self.shape, other.shape)
            )
        p = self.field.p
        other_t = list(zip(*other.rows)) if other.rows else []
        return Matrix(
            self.field,
            [
                [sum(a * b for a, b in zip(row, col)) % p for col in other_t]
                for row in self.rows
            ],
        )

    def mat_vec(self, v: Sequence[int]) -> Tuple[int, ...]:
        """Matrix-vector product ``A v`` modulo p."""
        if len(v) != self.ncols:
            raise InvalidParameterError(
                "vector length %d does not match %d columns" % (len(v), self.ncols)
            )
        p = self.field.p
        return tuple(sum(a * b for a, b in zip(row, v)) % p for row in self.rows)

    def transpose(self) -> "Matrix":
        """The transpose."""
        if not self.rows:
            return Matrix(self.field, [])
        return Matrix(self.field, [list(col) for col in zip(*self.rows)])

    def scale(self, c: int) -> "Matrix":
        """Multiply every entry by the scalar ``c``."""
        p = self.field.p
        c %= p
        return Matrix(self.field, [[(a * c) % p for a in row] for row in self.rows])

    # -- elimination ---------------------------------------------------------

    def _use_numpy(self) -> bool:
        return self.field.p < NUMPY_MODULUS_LIMIT

    def rref(self) -> Tuple["Matrix", Tuple[int, ...]]:
        """Reduced row-echelon form.

        Returns ``(R, pivot_columns)``.  Automatically dispatches to the
        vectorised kernel when the modulus is word-sized.
        """
        if not self.rows:
            return self.copy(), ()
        if self._use_numpy():
            reduced, pivots = _rref_numpy(self.rows, self.ncols, self.field.p)
        else:
            reduced, pivots = _rref_python(self.rows, self.ncols, self.field.p)
        out = Matrix(self.field, [])
        out.rows = reduced
        out.ncols = self.ncols
        return out, tuple(pivots)

    def rank(self) -> int:
        """Rank over ``F_p``."""
        return len(self.rref()[1])

    def rref_factorization(self) -> "RrefFactorization":
        """The incrementally extensible RREF state of this matrix.

        See :class:`RrefFactorization`; the returned object's
        :meth:`~RrefFactorization.null_space` matches :meth:`null_space`
        exactly (the RREF is canonical), and new rows/columns can then be
        folded in without re-eliminating the existing ones.
        """
        return RrefFactorization.from_matrix(self)

    def null_space(self) -> List[Tuple[int, ...]]:
        """A basis of the right null space ``{v : A v = 0}``.

        Returns a list of ``ncols``-length tuples; empty when the matrix has
        full column rank.
        """
        reduced, pivots = self.rref()
        p = self.field.p
        pivot_set = set(pivots)
        free_cols = [j for j in range(self.ncols) if j not in pivot_set]
        basis: List[Tuple[int, ...]] = []
        for j in free_cols:
            v = [0] * self.ncols
            v[j] = 1
            for i, pc in enumerate(pivots):
                v[pc] = (-reduced.rows[i][j]) % p
            basis.append(tuple(v))
        return basis

    def solve(self, b: Sequence[int]) -> Tuple[int, ...]:
        """Solve ``A x = b`` for square invertible ``A``.

        Raises :class:`SingularMatrixError` when no unique solution exists.
        """
        n = self.nrows
        if n != self.ncols:
            raise SingularMatrixError("solve() requires a square matrix")
        if len(b) != n:
            raise InvalidParameterError("right-hand side has wrong length")
        p = self.field.p
        augmented = Matrix(self.field, [])
        augmented.rows = [row[:] + [int(bv) % p] for row, bv in zip(self.rows, b)]
        augmented.ncols = n + 1
        reduced, pivots = augmented.rref()
        if len(pivots) != n or any(pc >= n for pc in pivots):
            raise SingularMatrixError("matrix is singular or system inconsistent")
        return tuple(reduced.rows[i][n] for i in range(n))

    # -- comparisons / formatting --------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.field.p == other.field.p and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.field.p, tuple(tuple(r) for r in self.rows)))

    def __repr__(self) -> str:
        return "Matrix(F%d, %dx%d)" % (self.field.p, self.nrows, self.ncols)


def _rref_python(
    rows: Sequence[Sequence[int]], ncols: int, p: int
) -> Tuple[List[List[int]], List[int]]:
    """Gauss--Jordan elimination with arbitrary-precision ints."""
    a = [list(row) for row in rows]
    nrows = len(a)
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        pivot_row = next((i for i in range(r, nrows) if a[i][c] != 0), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            a[r], a[pivot_row] = a[pivot_row], a[r]
        inv = pow(a[r][c], p - 2, p)
        if inv != 1:
            a[r] = [(x * inv) % p for x in a[r]]
        pivot = a[r]
        for i in range(nrows):
            if i == r:
                continue
            factor = a[i][c]
            if factor:
                row_i = a[i]
                a[i] = [(x - factor * y) % p for x, y in zip(row_i, pivot)]
        pivots.append(c)
        r += 1
    return a, pivots


def _rref_numpy(
    rows: Sequence[Sequence[int]], ncols: int, p: int
) -> Tuple[List[List[int]], List[int]]:
    """Gauss--Jordan elimination vectorised with numpy int64.

    Safe because ``p < 2**31`` implies every product of two reduced entries
    fits in a signed 64-bit integer.
    """
    a = np.array([list(row) for row in rows], dtype=np.int64) % p
    nrows = a.shape[0]
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        nonzero = np.nonzero(a[r:, c])[0]
        if nonzero.size == 0:
            continue
        pr = r + int(nonzero[0])
        if pr != r:
            a[[r, pr]] = a[[pr, r]]
        inv = pow(int(a[r, c]), p - 2, p)
        if inv != 1:
            a[r] = (a[r] * inv) % p
        col = a[:, c].copy()
        col[r] = 0
        touched = np.nonzero(col)[0]
        if touched.size:
            a[touched] = (a[touched] - np.outer(col[touched], a[r])) % p
        pivots.append(c)
        r += 1
    return a.tolist(), pivots


def _rref_tracked_python(
    rows: Sequence[Sequence[int]], ncols: int, p: int
) -> Tuple[List[List[int]], List[int]]:
    """Gauss--Jordan on ``[A | I]`` with pivots restricted to ``A``'s columns.

    Returns the reduced augmented rows and the pivot columns.  The right
    block of each reduced row is the transform coefficients expressing it in
    terms of the source rows (``R = T A``); rows beyond ``len(pivots)`` have
    an all-zero left block and their right block spans the left null space.
    Pivot search MUST stop at ``ncols`` -- pivoting into the identity block
    would destroy the transform semantics for dependent rows.
    """
    nrows = len(rows)
    a = [list(row) + [1 if j == i else 0 for j in range(nrows)] for i, row in enumerate(rows)]
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        pivot_row = next((i for i in range(r, nrows) if a[i][c] != 0), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            a[r], a[pivot_row] = a[pivot_row], a[r]
        inv = pow(a[r][c], p - 2, p)
        if inv != 1:
            a[r] = [(x * inv) % p for x in a[r]]
        pivot = a[r]
        for i in range(nrows):
            if i == r:
                continue
            factor = a[i][c]
            if factor:
                row_i = a[i]
                a[i] = [(x - factor * y) % p for x, y in zip(row_i, pivot)]
        pivots.append(c)
        r += 1
    return a, pivots


def _rref_tracked_numpy(
    rows: Sequence[Sequence[int]], ncols: int, p: int
) -> Tuple[np.ndarray, List[int]]:
    """Vectorised counterpart of :func:`_rref_tracked_python`."""
    nrows = len(rows)
    a = np.zeros((nrows, ncols + nrows), dtype=np.int64)
    a[:, :ncols] = np.array([list(row) for row in rows], dtype=np.int64) % p
    a[:, ncols:] = np.eye(nrows, dtype=np.int64)
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        nonzero = np.nonzero(a[r:, c])[0]
        if nonzero.size == 0:
            continue
        pr = r + int(nonzero[0])
        if pr != r:
            a[[r, pr]] = a[[pr, r]]
        inv = pow(int(a[r, c]), p - 2, p)
        if inv != 1:
            a[r] = (a[r] * inv) % p
        col = a[:, c].copy()
        col[r] = 0
        touched = np.nonzero(col)[0]
        if touched.size:
            a[touched] = (a[touched] - np.outer(col[touched], a[r])) % p
        pivots.append(c)
        r += 1
    return a, pivots


class RrefFactorization:
    """Incrementally maintained reduced row-echelon state of a growing matrix.

    The object carries three pieces of state for the source matrix ``A``
    whose rows and columns have been fed in so far:

    * ``pivots`` -- the pivot columns, ascending;
    * the nonzero RREF rows ``R`` (one per pivot, pivot order);
    * the row transform ``T`` with ``R = T A`` (one column per *source* row,
      including linearly dependent ones), plus the transform rows of the
      dependent source rows themselves.

    ``T`` is what makes growth cheap in both directions:
    :meth:`extend_row` reduces one new source row against the existing
    pivots -- ``O(r * n)`` work instead of re-running the full ``O(m^2 n)``
    elimination -- and :meth:`extend_column` maps one new source column
    through ``T`` without ever revisiting ``A``.  Because the RREF is
    canonical (unique per row space), the maintained state equals a
    from-scratch :meth:`Matrix.rref` of the extended matrix, so
    :meth:`null_space` returns the *identical* basis, in the identical
    order, as :meth:`Matrix.null_space` on the rebuilt matrix.

    Storage dispatches exactly like :class:`Matrix`: numpy ``int64`` arrays
    for word-sized moduli, arbitrary-precision Python lists otherwise.  In
    the numpy kernels every elementwise product is reduced mod ``p``
    *before* summation -- a dot product of ``m`` unreduced products
    overflows ``int64`` as soon as ``m * p**2 >= 2**63``.
    """

    __slots__ = ("field", "ncols", "pivots", "n_source", "_numpy", "_rows", "_t", "_free_t")

    def __init__(self, field: PrimeField, ncols: int):
        if ncols < 0:
            raise InvalidParameterError("negative column count %d" % ncols)
        self.field = field
        self.ncols = ncols
        self.pivots: List[int] = []
        self.n_source = 0
        self._numpy = field.p < NUMPY_MODULUS_LIMIT
        if self._numpy:
            self._rows = np.zeros((0, ncols), dtype=np.int64)
            self._t = np.zeros((0, 0), dtype=np.int64)
            self._free_t = np.zeros((0, 0), dtype=np.int64)
        else:
            self._rows: List[List[int]] = []
            self._t: List[List[int]] = []
            self._free_t: List[List[int]] = []

    @classmethod
    def from_matrix(cls, matrix: Matrix) -> "RrefFactorization":
        """Factor ``matrix`` with one tracked batch elimination."""
        fact = cls(matrix.field, matrix.ncols)
        if not matrix.rows:
            return fact
        p = matrix.field.p
        ncols = matrix.ncols
        if fact._numpy:
            reduced, pivots = _rref_tracked_numpy(matrix.rows, ncols, p)
            r = len(pivots)
            fact.pivots = list(pivots)
            fact._rows = reduced[:r, :ncols].copy()
            fact._t = reduced[:r, ncols:].copy()
            fact._free_t = reduced[r:, ncols:].copy()
        else:
            reduced, pivots = _rref_tracked_python(matrix.rows, ncols, p)
            r = len(pivots)
            fact.pivots = list(pivots)
            fact._rows = [row[:ncols] for row in reduced[:r]]
            fact._t = [row[ncols:] for row in reduced[:r]]
            fact._free_t = [row[ncols:] for row in reduced[r:]]
        fact.n_source = matrix.nrows
        return fact

    @property
    def rank(self) -> int:
        """Rank of the source matrix."""
        return len(self.pivots)

    # -- growth ------------------------------------------------------------

    def extend_row(self, row: Sequence[int]) -> bool:
        """Fold one new source row in; returns True when the rank grew.

        The reduction coefficients are read straight off the pivot columns
        of the incoming row (valid in any order: RREF pivot columns are unit
        vectors), then a single pass subtracts the combination and, when a
        residual survives, back-eliminates the new pivot column from the
        existing rows.
        """
        if len(row) != self.ncols:
            raise InvalidParameterError(
                "row length %d does not match %d columns" % (len(row), self.ncols)
            )
        p = self.field.p
        if self._numpy:
            return self._extend_row_numpy(row, p)
        return self._extend_row_python(row, p)

    def _extend_row_numpy(self, row: Sequence[int], p: int) -> bool:
        s = self.n_source
        residual = np.array([int(x) % p for x in row], dtype=np.int64)
        self._t = np.pad(self._t, ((0, 0), (0, 1)))
        self._free_t = np.pad(self._free_t, ((0, 0), (0, 1)))
        t_new = np.zeros(s + 1, dtype=np.int64)
        t_new[s] = 1
        self.n_source = s + 1
        if self.pivots:
            coeffs = residual[np.array(self.pivots, dtype=np.intp)]
            if np.any(coeffs):
                residual = (residual - ((coeffs[:, None] * self._rows) % p).sum(axis=0)) % p
                t_new = (t_new - ((coeffs[:, None] * self._t) % p).sum(axis=0)) % p
        lead = np.nonzero(residual)[0]
        if lead.size == 0:
            self._free_t = np.vstack([self._free_t, t_new[None, :]])
            return False
        c = int(lead[0])
        inv = pow(int(residual[c]), p - 2, p)
        if inv != 1:
            residual = (residual * inv) % p
            t_new = (t_new * inv) % p
        col = self._rows[:, c].copy()
        touched = np.nonzero(col)[0]
        if touched.size:
            self._rows[touched] = (self._rows[touched] - np.outer(col[touched], residual)) % p
            self._t[touched] = (self._t[touched] - np.outer(col[touched], t_new)) % p
        pos = bisect_left(self.pivots, c)
        self.pivots.insert(pos, c)
        self._rows = np.insert(self._rows, pos, residual, axis=0)
        self._t = np.insert(self._t, pos, t_new, axis=0)
        return True

    def _extend_row_python(self, row: Sequence[int], p: int) -> bool:
        s = self.n_source
        residual = [int(x) % p for x in row]
        for t_row in self._t:
            t_row.append(0)
        for t_row in self._free_t:
            t_row.append(0)
        t_new = [0] * (s + 1)
        t_new[s] = 1
        self.n_source = s + 1
        for i, pc in enumerate(self.pivots):
            factor = residual[pc]
            if factor:
                residual = [(x - factor * y) % p for x, y in zip(residual, self._rows[i])]
                t_new = [(x - factor * y) % p for x, y in zip(t_new, self._t[i])]
        c = next((j for j, x in enumerate(residual) if x), None)
        if c is None:
            self._free_t.append(t_new)
            return False
        inv = pow(residual[c], p - 2, p)
        if inv != 1:
            residual = [(x * inv) % p for x in residual]
            t_new = [(x * inv) % p for x in t_new]
        for i in range(len(self.pivots)):
            factor = self._rows[i][c]
            if factor:
                self._rows[i] = [(x - factor * y) % p for x, y in zip(self._rows[i], residual)]
                self._t[i] = [(x - factor * y) % p for x, y in zip(self._t[i], t_new)]
        pos = bisect_left(self.pivots, c)
        self.pivots.insert(pos, c)
        self._rows.insert(pos, residual)
        self._t.insert(pos, t_new)
        return True

    def extend_column(self, column: Sequence[int]) -> None:
        """Append one source column (one entry per source row, feed order).

        The reduced entries of the new column are ``T @ column``.  A
        dependent source row whose transform no longer annihilates the
        widened matrix is *promoted*: its combination becomes the pivot row
        of the new column (and the column is eliminated everywhere else),
        restoring canonical RREF.
        """
        if len(column) != self.n_source:
            raise InvalidParameterError(
                "column length %d does not match %d source rows"
                % (len(column), self.n_source)
            )
        p = self.field.p
        if self._numpy:
            self._extend_column_numpy(column, p)
        else:
            self._extend_column_python(column, p)

    def _extend_column_numpy(self, column: Sequence[int], p: int) -> None:
        col = np.array([int(x) % p for x in column], dtype=np.int64)
        if self.pivots:
            entries = ((self._t * col[None, :]) % p).sum(axis=1) % p
        else:
            entries = np.zeros(0, dtype=np.int64)
        self._rows = np.concatenate([self._rows, entries[:, None]], axis=1)
        self.ncols += 1
        if self._free_t.shape[0]:
            res = ((self._free_t * col[None, :]) % p).sum(axis=1) % p
            promoted = np.nonzero(res)[0]
            if promoted.size:
                j = int(promoted[0])
                inv = pow(int(res[j]), p - 2, p)
                t_p = (self._free_t[j] * inv) % p
                new_col = self._rows[:, -1].copy()
                touched = np.nonzero(new_col)[0]
                if touched.size:
                    self._rows[touched, -1] = 0
                    self._t[touched] = (self._t[touched] - np.outer(new_col[touched], t_p)) % p
                for k in promoted[1:]:
                    self._free_t[k] = (self._free_t[k] - res[k] * t_p) % p
                pivot_row = np.zeros(self.ncols, dtype=np.int64)
                pivot_row[-1] = 1
                self._rows = np.vstack([self._rows, pivot_row[None, :]])
                self._t = np.vstack([self._t, t_p[None, :]])
                self.pivots.append(self.ncols - 1)
                self._free_t = np.delete(self._free_t, j, axis=0)

    def _extend_column_python(self, column: Sequence[int], p: int) -> None:
        col = [int(x) % p for x in column]
        for i in range(len(self.pivots)):
            entry = sum(a * b for a, b in zip(self._t[i], col)) % p
            self._rows[i].append(entry)
        self.ncols += 1
        if self._free_t:
            res = [sum(a * b for a, b in zip(t_row, col)) % p for t_row in self._free_t]
            j = next((k for k, x in enumerate(res) if x), None)
            if j is not None:
                inv = pow(res[j], p - 2, p)
                t_p = [(x * inv) % p for x in self._free_t[j]]
                for i in range(len(self.pivots)):
                    factor = self._rows[i][-1]
                    if factor:
                        self._rows[i][-1] = 0
                        self._t[i] = [
                            (x - factor * y) % p for x, y in zip(self._t[i], t_p)
                        ]
                for k in range(j + 1, len(self._free_t)):
                    if res[k]:
                        self._free_t[k] = [
                            (x - res[k] * y) % p for x, y in zip(self._free_t[k], t_p)
                        ]
                self._rows.append([0] * (self.ncols - 1) + [1])
                self._t.append(t_p)
                self.pivots.append(self.ncols - 1)
                del self._free_t[j]

    # -- results -----------------------------------------------------------

    def null_space(self) -> List[Tuple[int, ...]]:
        """Identical basis, identical order, as :meth:`Matrix.null_space`."""
        p = self.field.p
        rows = self._rows.tolist() if self._numpy else self._rows
        pivot_set = set(self.pivots)
        basis: List[Tuple[int, ...]] = []
        for j in range(self.ncols):
            if j in pivot_set:
                continue
            v = [0] * self.ncols
            v[j] = 1
            for i, pc in enumerate(self.pivots):
                v[pc] = (-rows[i][j]) % p
            basis.append(tuple(v))
        return basis

    def __repr__(self) -> str:
        return "RrefFactorization(F%d, rank %d, %dx%d)" % (
            self.field.p,
            len(self.pivots),
            self.n_source,
            self.ncols,
        )


def null_space(matrix: Matrix) -> List[Tuple[int, ...]]:
    """Module-level convenience wrapper for :meth:`Matrix.null_space`."""
    return matrix.null_space()


def random_null_vector(
    matrix: Matrix, rng: Optional[random.Random] = None
) -> Tuple[int, ...]:
    """A random *nonzero* vector in the null space of ``matrix``.

    This is exactly how the paper's publisher picks the ACV: compute a basis
    of the null space, then take a random linear combination (re-drawn in the
    unlikely event all coefficients are zero).  Raises
    :class:`SingularMatrixError` when the null space is trivial.
    """
    basis = matrix.null_space()
    if not basis:
        raise SingularMatrixError("matrix has full column rank; null space is {0}")
    rng = rng or random
    p = matrix.field.p
    while True:
        coeffs = [rng.randrange(p) for _ in basis]
        if all(c == 0 for c in coeffs):
            continue
        v = [0] * matrix.ncols
        for c, b in zip(coeffs, basis):
            if c == 0:
                continue
            for j, bj in enumerate(b):
                v[j] = (v[j] + c * bj) % p
        if any(v):
            return tuple(v)


def solve(matrix: Matrix, b: Sequence[int]) -> Tuple[int, ...]:
    """Module-level convenience wrapper for :meth:`Matrix.solve`."""
    return matrix.solve(b)
