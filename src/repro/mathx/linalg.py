"""Dense linear algebra over prime fields.

This module replaces NTL's ``kernel()`` used by the paper.  The publisher's
rekey operation solves ``A Y = 0`` for a matrix ``A`` with one row per
(policy, subscriber) pair; the null space is computed by Gauss--Jordan
elimination and the published access control vector (ACV) is a random
combination of the basis vectors, exactly as Section VII of the paper
describes.

Two elimination kernels are provided:

* a **pure-Python** kernel valid for any prime modulus (used for the paper's
  80-bit field ``F_q``), and
* a **numpy** kernel used automatically when the modulus fits in 31 bits, so
  that all intermediate products fit in ``int64``.  It performs the same
  row reduction with vectorised outer-product updates and is what makes the
  N = 1000 sweeps of Figures 3--5 feasible in Python.

Matrices store plain ints internally (row-major) for speed; the
:class:`~repro.mathx.field.PrimeField` is carried alongside for semantics.
"""

from __future__ import annotations

import random
from typing import List, Optional, Sequence, Tuple

import numpy as np

from repro.errors import (
    FieldMismatchError,
    InvalidParameterError,
    SingularMatrixError,
)
from repro.mathx.field import PrimeField

__all__ = [
    "Matrix",
    "null_space",
    "random_null_vector",
    "solve",
    "vec_dot",
    "NUMPY_MODULUS_LIMIT",
]

# Largest modulus for which the numpy int64 kernel is safe:  row updates
# compute a*b with a, b < p, so we need p**2 < 2**63.
NUMPY_MODULUS_LIMIT = 1 << 31


def vec_dot(u: Sequence[int], v: Sequence[int], p: int) -> int:
    """Inner product of two integer vectors modulo ``p``."""
    if len(u) != len(v):
        raise InvalidParameterError(
            "dot product of vectors with lengths %d and %d" % (len(u), len(v))
        )
    return sum(a * b for a, b in zip(u, v)) % p


class Matrix:
    """A dense matrix over ``F_p`` with row-major integer storage."""

    __slots__ = ("field", "rows", "ncols")

    def __init__(self, field: PrimeField, rows: Sequence[Sequence[int]]):
        self.field = field
        p = field.p
        materialized: List[List[int]] = [[int(x) % p for x in row] for row in rows]
        if materialized:
            width = len(materialized[0])
            for row in materialized:
                if len(row) != width:
                    raise InvalidParameterError("ragged matrix rows")
            self.ncols = width
        else:
            self.ncols = 0
        self.rows = materialized

    # -- constructors ------------------------------------------------------

    @classmethod
    def identity(cls, field: PrimeField, n: int) -> "Matrix":
        """The n-by-n identity matrix."""
        return cls(field, [[1 if i == j else 0 for j in range(n)] for i in range(n)])

    @classmethod
    def zeros(cls, field: PrimeField, nrows: int, ncols: int) -> "Matrix":
        """The all-zero matrix of the given shape."""
        m = cls(field, [])
        m.rows = [[0] * ncols for _ in range(nrows)]
        m.ncols = ncols
        return m

    @classmethod
    def random(
        cls,
        field: PrimeField,
        nrows: int,
        ncols: int,
        rng: Optional[random.Random] = None,
    ) -> "Matrix":
        """Matrix with independent uniform entries."""
        rng = rng or random
        p = field.p
        m = cls(field, [])
        m.rows = [[rng.randrange(p) for _ in range(ncols)] for _ in range(nrows)]
        m.ncols = ncols
        return m

    # -- metadata ----------------------------------------------------------

    @property
    def nrows(self) -> int:
        """Number of rows."""
        return len(self.rows)

    @property
    def shape(self) -> Tuple[int, int]:
        """``(nrows, ncols)``."""
        return (len(self.rows), self.ncols)

    def copy(self) -> "Matrix":
        """Deep copy."""
        m = Matrix(self.field, [])
        m.rows = [row[:] for row in self.rows]
        m.ncols = self.ncols
        return m

    def __getitem__(self, index: Tuple[int, int]) -> int:
        i, j = index
        return self.rows[i][j]

    def row(self, i: int) -> Tuple[int, ...]:
        """Row ``i`` as a tuple of ints."""
        return tuple(self.rows[i])

    def column(self, j: int) -> Tuple[int, ...]:
        """Column ``j`` as a tuple of ints."""
        return tuple(row[j] for row in self.rows)

    # -- arithmetic --------------------------------------------------------

    def _check(self, other: "Matrix") -> None:
        if self.field.p != other.field.p:
            raise FieldMismatchError("matrices over different fields")

    def __add__(self, other: "Matrix") -> "Matrix":
        self._check(other)
        if self.shape != other.shape:
            raise InvalidParameterError(
                "shape mismatch %s vs %s" % (self.shape, other.shape)
            )
        p = self.field.p
        return Matrix(
            self.field,
            [
                [(a + b) % p for a, b in zip(r1, r2)]
                for r1, r2 in zip(self.rows, other.rows)
            ],
        )

    def __sub__(self, other: "Matrix") -> "Matrix":
        self._check(other)
        if self.shape != other.shape:
            raise InvalidParameterError(
                "shape mismatch %s vs %s" % (self.shape, other.shape)
            )
        p = self.field.p
        return Matrix(
            self.field,
            [
                [(a - b) % p for a, b in zip(r1, r2)]
                for r1, r2 in zip(self.rows, other.rows)
            ],
        )

    def __matmul__(self, other: "Matrix") -> "Matrix":
        self._check(other)
        if self.ncols != other.nrows:
            raise InvalidParameterError(
                "cannot multiply %s by %s" % (self.shape, other.shape)
            )
        p = self.field.p
        other_t = list(zip(*other.rows)) if other.rows else []
        return Matrix(
            self.field,
            [
                [sum(a * b for a, b in zip(row, col)) % p for col in other_t]
                for row in self.rows
            ],
        )

    def mat_vec(self, v: Sequence[int]) -> Tuple[int, ...]:
        """Matrix-vector product ``A v`` modulo p."""
        if len(v) != self.ncols:
            raise InvalidParameterError(
                "vector length %d does not match %d columns" % (len(v), self.ncols)
            )
        p = self.field.p
        return tuple(sum(a * b for a, b in zip(row, v)) % p for row in self.rows)

    def transpose(self) -> "Matrix":
        """The transpose."""
        if not self.rows:
            return Matrix(self.field, [])
        return Matrix(self.field, [list(col) for col in zip(*self.rows)])

    def scale(self, c: int) -> "Matrix":
        """Multiply every entry by the scalar ``c``."""
        p = self.field.p
        c %= p
        return Matrix(self.field, [[(a * c) % p for a in row] for row in self.rows])

    # -- elimination ---------------------------------------------------------

    def _use_numpy(self) -> bool:
        return self.field.p < NUMPY_MODULUS_LIMIT

    def rref(self) -> Tuple["Matrix", Tuple[int, ...]]:
        """Reduced row-echelon form.

        Returns ``(R, pivot_columns)``.  Automatically dispatches to the
        vectorised kernel when the modulus is word-sized.
        """
        if not self.rows:
            return self.copy(), ()
        if self._use_numpy():
            reduced, pivots = _rref_numpy(self.rows, self.ncols, self.field.p)
        else:
            reduced, pivots = _rref_python(self.rows, self.ncols, self.field.p)
        out = Matrix(self.field, [])
        out.rows = reduced
        out.ncols = self.ncols
        return out, tuple(pivots)

    def rank(self) -> int:
        """Rank over ``F_p``."""
        return len(self.rref()[1])

    def null_space(self) -> List[Tuple[int, ...]]:
        """A basis of the right null space ``{v : A v = 0}``.

        Returns a list of ``ncols``-length tuples; empty when the matrix has
        full column rank.
        """
        reduced, pivots = self.rref()
        p = self.field.p
        pivot_set = set(pivots)
        free_cols = [j for j in range(self.ncols) if j not in pivot_set]
        basis: List[Tuple[int, ...]] = []
        for j in free_cols:
            v = [0] * self.ncols
            v[j] = 1
            for i, pc in enumerate(pivots):
                v[pc] = (-reduced.rows[i][j]) % p
            basis.append(tuple(v))
        return basis

    def solve(self, b: Sequence[int]) -> Tuple[int, ...]:
        """Solve ``A x = b`` for square invertible ``A``.

        Raises :class:`SingularMatrixError` when no unique solution exists.
        """
        n = self.nrows
        if n != self.ncols:
            raise SingularMatrixError("solve() requires a square matrix")
        if len(b) != n:
            raise InvalidParameterError("right-hand side has wrong length")
        p = self.field.p
        augmented = Matrix(self.field, [])
        augmented.rows = [row[:] + [int(bv) % p] for row, bv in zip(self.rows, b)]
        augmented.ncols = n + 1
        reduced, pivots = augmented.rref()
        if len(pivots) != n or any(pc >= n for pc in pivots):
            raise SingularMatrixError("matrix is singular or system inconsistent")
        return tuple(reduced.rows[i][n] for i in range(n))

    # -- comparisons / formatting --------------------------------------------

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Matrix):
            return NotImplemented
        return self.field.p == other.field.p and self.rows == other.rows

    def __hash__(self) -> int:
        return hash((self.field.p, tuple(tuple(r) for r in self.rows)))

    def __repr__(self) -> str:
        return "Matrix(F%d, %dx%d)" % (self.field.p, self.nrows, self.ncols)


def _rref_python(
    rows: Sequence[Sequence[int]], ncols: int, p: int
) -> Tuple[List[List[int]], List[int]]:
    """Gauss--Jordan elimination with arbitrary-precision ints."""
    a = [list(row) for row in rows]
    nrows = len(a)
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        pivot_row = next((i for i in range(r, nrows) if a[i][c] != 0), None)
        if pivot_row is None:
            continue
        if pivot_row != r:
            a[r], a[pivot_row] = a[pivot_row], a[r]
        inv = pow(a[r][c], p - 2, p)
        if inv != 1:
            a[r] = [(x * inv) % p for x in a[r]]
        pivot = a[r]
        for i in range(nrows):
            if i == r:
                continue
            factor = a[i][c]
            if factor:
                row_i = a[i]
                a[i] = [(x - factor * y) % p for x, y in zip(row_i, pivot)]
        pivots.append(c)
        r += 1
    return a, pivots


def _rref_numpy(
    rows: Sequence[Sequence[int]], ncols: int, p: int
) -> Tuple[List[List[int]], List[int]]:
    """Gauss--Jordan elimination vectorised with numpy int64.

    Safe because ``p < 2**31`` implies every product of two reduced entries
    fits in a signed 64-bit integer.
    """
    a = np.array([list(row) for row in rows], dtype=np.int64) % p
    nrows = a.shape[0]
    pivots: List[int] = []
    r = 0
    for c in range(ncols):
        if r >= nrows:
            break
        nonzero = np.nonzero(a[r:, c])[0]
        if nonzero.size == 0:
            continue
        pr = r + int(nonzero[0])
        if pr != r:
            a[[r, pr]] = a[[pr, r]]
        inv = pow(int(a[r, c]), p - 2, p)
        if inv != 1:
            a[r] = (a[r] * inv) % p
        col = a[:, c].copy()
        col[r] = 0
        touched = np.nonzero(col)[0]
        if touched.size:
            a[touched] = (a[touched] - np.outer(col[touched], a[r])) % p
        pivots.append(c)
        r += 1
    return a.tolist(), pivots


def null_space(matrix: Matrix) -> List[Tuple[int, ...]]:
    """Module-level convenience wrapper for :meth:`Matrix.null_space`."""
    return matrix.null_space()


def random_null_vector(
    matrix: Matrix, rng: Optional[random.Random] = None
) -> Tuple[int, ...]:
    """A random *nonzero* vector in the null space of ``matrix``.

    This is exactly how the paper's publisher picks the ACV: compute a basis
    of the null space, then take a random linear combination (re-drawn in the
    unlikely event all coefficients are zero).  Raises
    :class:`SingularMatrixError` when the null space is trivial.
    """
    basis = matrix.null_space()
    if not basis:
        raise SingularMatrixError("matrix has full column rank; null space is {0}")
    rng = rng or random
    p = matrix.field.p
    while True:
        coeffs = [rng.randrange(p) for _ in basis]
        if all(c == 0 for c in coeffs):
            continue
        v = [0] * matrix.ncols
        for c, b in zip(coeffs, basis):
            if c == 0:
                continue
            for j, bj in enumerate(b):
                v[j] = (v[j] + c * bj) % p
        if any(v):
            return tuple(v)


def solve(matrix: Matrix, b: Sequence[int]) -> Tuple[int, ...]:
    """Module-level convenience wrapper for :meth:`Matrix.solve`."""
    return matrix.solve(b)
