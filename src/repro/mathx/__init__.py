"""Number-theoretic and algebraic substrate.

This subpackage provides everything the cryptographic layers need and that
the paper's C++ implementation obtained from NTL:

* :mod:`repro.mathx.modular` -- extended gcd, modular inverse, CRT,
  Legendre symbol, Tonelli--Shanks square roots.
* :mod:`repro.mathx.primes` -- Miller--Rabin primality testing and prime
  generation.
* :mod:`repro.mathx.field` -- prime fields ``F_p`` with an element type that
  supports natural operator syntax.
* :mod:`repro.mathx.polynomial` -- dense univariate polynomials over a prime
  field (used by the genus-2 Jacobian arithmetic and the ACP baseline).
* :mod:`repro.mathx.linalg` -- dense matrices over a prime field with
  Gauss--Jordan elimination, rank, null-space computation and a vectorised
  numpy kernel for word-sized primes.
"""

from repro.mathx.field import FieldElement, PrimeField
from repro.mathx.linalg import Matrix, null_space, random_null_vector, solve
from repro.mathx.modular import (
    crt,
    egcd,
    legendre_symbol,
    modinv,
    modsqrt,
)
from repro.mathx.polynomial import Poly
from repro.mathx.primes import is_prime, next_prime, random_prime

__all__ = [
    "FieldElement",
    "PrimeField",
    "Matrix",
    "null_space",
    "random_null_vector",
    "solve",
    "crt",
    "egcd",
    "legendre_symbol",
    "modinv",
    "modsqrt",
    "Poly",
    "is_prime",
    "next_prime",
    "random_prime",
]
