"""Dense univariate polynomials over a prime field.

Coefficients are stored low-degree-first with no trailing zeros (the zero
polynomial has an empty coefficient list, degree ``-1``).  This module backs
the genus-2 Jacobian arithmetic (Cantor's algorithm manipulates the Mumford
pair ``(u, v)`` of polynomials) and the access-control-polynomial baseline.
"""

from __future__ import annotations

import random
from typing import Iterable, List, Optional, Sequence, Tuple, Union

from repro.errors import FieldMismatchError, InvalidParameterError
from repro.mathx.field import FieldElement, PrimeField

__all__ = ["Poly"]

IntoCoeff = Union[FieldElement, int]


class Poly:
    """A polynomial in one variable over :class:`PrimeField`."""

    __slots__ = ("field", "coeffs")

    def __init__(self, field: PrimeField, coeffs: Iterable[IntoCoeff] = ()):
        self.field = field
        normalized: List[int] = [int(field(c)) for c in coeffs]
        while normalized and normalized[-1] == 0:
            normalized.pop()
        self.coeffs = tuple(normalized)

    # -- constructors --------------------------------------------------------

    @classmethod
    def zero(cls, field: PrimeField) -> "Poly":
        """The zero polynomial."""
        return cls(field, ())

    @classmethod
    def one(cls, field: PrimeField) -> "Poly":
        """The constant polynomial 1."""
        return cls(field, (1,))

    @classmethod
    def constant(cls, field: PrimeField, c: IntoCoeff) -> "Poly":
        """The constant polynomial ``c``."""
        return cls(field, (c,))

    @classmethod
    def x(cls, field: PrimeField) -> "Poly":
        """The monomial ``x``."""
        return cls(field, (0, 1))

    @classmethod
    def monomial(cls, field: PrimeField, degree: int, c: IntoCoeff = 1) -> "Poly":
        """The monomial ``c * x**degree``."""
        if degree < 0:
            raise InvalidParameterError("degree must be >= 0, got %r" % degree)
        return cls(field, (0,) * degree + (c,))

    @classmethod
    def from_roots(cls, field: PrimeField, roots: Sequence[IntoCoeff]) -> "Poly":
        """Monic polynomial ``prod (x - r)`` over the given roots."""
        result = cls.one(field)
        for r in roots:
            result = result * cls(field, (-field(r), 1))
        return result

    @classmethod
    def random(
        cls,
        field: PrimeField,
        degree: int,
        rng: Optional[random.Random] = None,
        monic: bool = False,
    ) -> "Poly":
        """Random polynomial of exactly ``degree`` (leading coeff nonzero)."""
        rng = rng or random
        if degree < 0:
            return cls.zero(field)
        coeffs = [field.random(rng) for _ in range(degree)]
        coeffs.append(field.one() if monic else field.random_nonzero(rng))
        return cls(field, coeffs)

    @classmethod
    def interpolate(
        cls, field: PrimeField, points: Sequence[Tuple[IntoCoeff, IntoCoeff]]
    ) -> "Poly":
        """Lagrange interpolation through ``points`` (distinct x values)."""
        xs = [field(x) for x, _ in points]
        ys = [field(y) for _, y in points]
        if len({int(x) for x in xs}) != len(xs):
            raise InvalidParameterError("interpolation points must have distinct x")
        result = cls.zero(field)
        for i, (xi, yi) in enumerate(zip(xs, ys)):
            basis = cls.one(field)
            denom = field.one()
            for j, xj in enumerate(xs):
                if i == j:
                    continue
                basis = basis * cls(field, (-xj, 1))
                denom = denom * (xi - xj)
            result = result + basis * (yi / denom)
        return result

    # -- metadata -------------------------------------------------------------

    @property
    def degree(self) -> int:
        """Degree of the polynomial; ``-1`` for the zero polynomial."""
        return len(self.coeffs) - 1

    def is_zero(self) -> bool:
        """True for the zero polynomial."""
        return not self.coeffs

    def is_monic(self) -> bool:
        """True when the leading coefficient is 1."""
        return bool(self.coeffs) and self.coeffs[-1] == 1

    def leading_coefficient(self) -> FieldElement:
        """Leading coefficient (0 for the zero polynomial)."""
        if not self.coeffs:
            return self.field.zero()
        return self.field(self.coeffs[-1])

    def coefficient(self, i: int) -> FieldElement:
        """Coefficient of ``x**i`` (0 beyond the degree)."""
        if 0 <= i < len(self.coeffs):
            return self.field(self.coeffs[i])
        return self.field.zero()

    # -- arithmetic -------------------------------------------------------------

    def _check(self, other: "Poly") -> None:
        if self.field.p != other.field.p:
            raise FieldMismatchError(
                "mixed polynomial fields F_%d and F_%d" % (self.field.p, other.field.p)
            )

    def __add__(self, other: "Poly") -> "Poly":
        if not isinstance(other, Poly):
            return NotImplemented
        self._check(other)
        n = max(len(self.coeffs), len(other.coeffs))
        p = self.field.p
        a, b = self.coeffs, other.coeffs
        return Poly(
            self.field,
            [
                ((a[i] if i < len(a) else 0) + (b[i] if i < len(b) else 0)) % p
                for i in range(n)
            ],
        )

    def __sub__(self, other: "Poly") -> "Poly":
        if not isinstance(other, Poly):
            return NotImplemented
        self._check(other)
        n = max(len(self.coeffs), len(other.coeffs))
        p = self.field.p
        a, b = self.coeffs, other.coeffs
        return Poly(
            self.field,
            [
                ((a[i] if i < len(a) else 0) - (b[i] if i < len(b) else 0)) % p
                for i in range(n)
            ],
        )

    def __neg__(self) -> "Poly":
        p = self.field.p
        return Poly(self.field, [(-c) % p for c in self.coeffs])

    def __mul__(self, other: Union["Poly", IntoCoeff]) -> "Poly":
        if isinstance(other, (int, FieldElement)):
            c = int(self.field(other))
            p = self.field.p
            return Poly(self.field, [(a * c) % p for a in self.coeffs])
        if not isinstance(other, Poly):
            return NotImplemented
        self._check(other)
        if self.is_zero() or other.is_zero():
            return Poly.zero(self.field)
        p = self.field.p
        out = [0] * (len(self.coeffs) + len(other.coeffs) - 1)
        for i, a in enumerate(self.coeffs):
            if a == 0:
                continue
            for j, b in enumerate(other.coeffs):
                out[i + j] = (out[i + j] + a * b) % p
        return Poly(self.field, out)

    __rmul__ = __mul__

    def __divmod__(self, other: "Poly") -> Tuple["Poly", "Poly"]:
        if not isinstance(other, Poly):
            return NotImplemented
        self._check(other)
        if other.is_zero():
            raise ZeroDivisionError("polynomial division by zero")
        p = self.field.p
        rem = list(self.coeffs)
        dlead = other.coeffs[-1]
        dlead_inv = pow(dlead, p - 2, p)
        ddeg = other.degree
        qdeg = len(rem) - 1 - ddeg
        if qdeg < 0:
            return Poly.zero(self.field), self
        quot = [0] * (qdeg + 1)
        for i in range(qdeg, -1, -1):
            coeff = (rem[i + ddeg] * dlead_inv) % p
            if coeff:
                quot[i] = coeff
                for j, b in enumerate(other.coeffs):
                    rem[i + j] = (rem[i + j] - coeff * b) % p
        return Poly(self.field, quot), Poly(self.field, rem)

    def __floordiv__(self, other: "Poly") -> "Poly":
        return divmod(self, other)[0]

    def __mod__(self, other: "Poly") -> "Poly":
        return divmod(self, other)[1]

    def __pow__(self, exponent: int) -> "Poly":
        if exponent < 0:
            raise InvalidParameterError("negative polynomial powers not supported")
        result = Poly.one(self.field)
        base = self
        while exponent:
            if exponent & 1:
                result = result * base
            base = base * base
            exponent >>= 1
        return result

    def monic(self) -> "Poly":
        """Scale so the leading coefficient is 1 (zero stays zero)."""
        if self.is_zero() or self.is_monic():
            return self
        return self * self.leading_coefficient().inverse()

    def derivative(self) -> "Poly":
        """Formal derivative."""
        p = self.field.p
        return Poly(
            self.field, [(i * c) % p for i, c in enumerate(self.coeffs)][1:]
        )

    def gcd(self, other: "Poly") -> "Poly":
        """Monic greatest common divisor."""
        self._check(other)
        a, b = self, other
        while not b.is_zero():
            a, b = b, a % b
        return a.monic()

    def xgcd(self, other: "Poly") -> Tuple["Poly", "Poly", "Poly"]:
        """Extended gcd: returns monic ``(g, s, t)`` with ``s*a + t*b = g``."""
        self._check(other)
        field = self.field
        old_r, r = self, other
        old_s, s = Poly.one(field), Poly.zero(field)
        old_t, t = Poly.zero(field), Poly.one(field)
        while not r.is_zero():
            q, rem = divmod(old_r, r)
            old_r, r = r, rem
            old_s, s = s, old_s - q * s
            old_t, t = t, old_t - q * t
        if old_r.is_zero():
            return old_r, old_s, old_t
        lead_inv = old_r.leading_coefficient().inverse()
        return old_r * lead_inv, old_s * lead_inv, old_t * lead_inv

    def __call__(self, x: IntoCoeff) -> FieldElement:
        """Evaluate at ``x`` via Horner's rule."""
        xv = int(self.field(x))
        p = self.field.p
        acc = 0
        for c in reversed(self.coeffs):
            acc = (acc * xv + c) % p
        return FieldElement(self.field, acc)

    # -- comparisons / formatting ------------------------------------------

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Poly):
            return self.field.p == other.field.p and self.coeffs == other.coeffs
        if isinstance(other, int):
            return self == Poly.constant(self.field, other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.p, self.coeffs))

    def __bool__(self) -> bool:
        return bool(self.coeffs)

    def __repr__(self) -> str:
        if self.is_zero():
            return "Poly(0)"
        terms = []
        for i in range(self.degree, -1, -1):
            c = self.coeffs[i]
            if c == 0:
                continue
            if i == 0:
                terms.append(str(c))
            elif i == 1:
                terms.append("%sx" % ("" if c == 1 else c))
            else:
                terms.append("%sx^%d" % ("" if c == 1 else c, i))
        return "Poly(%s)" % " + ".join(terms)
