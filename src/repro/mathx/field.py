"""Prime fields ``F_p`` and their elements.

A :class:`PrimeField` is a lightweight factory/namespace for
:class:`FieldElement` instances.  Elements support natural operator syntax
(``+``, ``-``, ``*``, ``/``, ``**``, unary ``-``) and interoperate with plain
ints on either side.  Two fields with the same modulus compare equal and
their elements are interchangeable.

The GKM layer works over ``F_q`` for an 80-bit (paper-faithful) or 31-bit
(numpy-accelerated) prime; the group backends use 83-bit to 256-bit primes.
"""

from __future__ import annotations

import random
from typing import Iterator, Optional, Union

from repro.errors import FieldMismatchError, InvalidParameterError
from repro.mathx.modular import modinv, modsqrt
from repro.mathx.primes import is_prime

__all__ = ["PrimeField", "FieldElement"]

IntoElement = Union["FieldElement", int]


class PrimeField:
    """The finite field of integers modulo a prime ``p``."""

    __slots__ = ("p",)

    def __init__(self, p: int, check_prime: bool = True):
        if p < 2:
            raise InvalidParameterError("field modulus must be >= 2, got %r" % p)
        if check_prime and not is_prime(p):
            raise InvalidParameterError("field modulus %d is not prime" % p)
        self.p = p

    # -- construction ------------------------------------------------------

    def __call__(self, value: IntoElement) -> "FieldElement":
        """Coerce ``value`` into this field."""
        if isinstance(value, FieldElement):
            if value.field.p != self.p:
                raise FieldMismatchError(
                    "cannot coerce element of F_%d into F_%d" % (value.field.p, self.p)
                )
            return value
        return FieldElement(self, value % self.p)

    def zero(self) -> "FieldElement":
        """The additive identity."""
        return FieldElement(self, 0)

    def one(self) -> "FieldElement":
        """The multiplicative identity."""
        return FieldElement(self, 1)

    def random(self, rng: Optional[random.Random] = None) -> "FieldElement":
        """Uniformly random element (including zero)."""
        rng = rng or random
        return FieldElement(self, rng.randrange(self.p))

    def random_nonzero(self, rng: Optional[random.Random] = None) -> "FieldElement":
        """Uniformly random element of ``F_p^*``."""
        rng = rng or random
        return FieldElement(self, rng.randrange(1, self.p))

    def from_bytes(self, data: bytes) -> "FieldElement":
        """Interpret big-endian bytes as an element (reduced mod p)."""
        return FieldElement(self, int.from_bytes(data, "big") % self.p)

    # -- metadata ----------------------------------------------------------

    @property
    def order(self) -> int:
        """Number of elements in the field."""
        return self.p

    @property
    def bit_length(self) -> int:
        """Bit length of the modulus."""
        return self.p.bit_length()

    @property
    def byte_length(self) -> int:
        """Bytes needed to serialize one element."""
        return (self.p.bit_length() + 7) // 8

    def elements(self) -> Iterator["FieldElement"]:
        """Iterate all elements (only sensible for tiny fields / tests)."""
        for v in range(self.p):
            yield FieldElement(self, v)

    def __eq__(self, other: object) -> bool:
        return isinstance(other, PrimeField) and other.p == self.p

    def __hash__(self) -> int:
        return hash(("PrimeField", self.p))

    def __repr__(self) -> str:
        return "PrimeField(%d)" % self.p


class FieldElement:
    """An element of a :class:`PrimeField`, stored as ``0 <= value < p``."""

    __slots__ = ("field", "value")

    def __init__(self, field: PrimeField, value: int):
        self.field = field
        self.value = value % field.p

    # -- helpers -----------------------------------------------------------

    def _coerce(self, other: IntoElement) -> int:
        if isinstance(other, FieldElement):
            if other.field.p != self.field.p:
                raise FieldMismatchError(
                    "mixed fields F_%d and F_%d" % (self.field.p, other.field.p)
                )
            return other.value
        if isinstance(other, int):
            return other % self.field.p
        return NotImplemented  # type: ignore[return-value]

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other: IntoElement) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value + v)

    __radd__ = __add__

    def __sub__(self, other: IntoElement) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value - v)

    def __rsub__(self, other: IntoElement) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, v - self.value)

    def __mul__(self, other: IntoElement) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value * v)

    __rmul__ = __mul__

    def __truediv__(self, other: IntoElement) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, self.value * modinv(v, self.field.p))

    def __rtruediv__(self, other: IntoElement) -> "FieldElement":
        v = self._coerce(other)
        if v is NotImplemented:
            return NotImplemented
        return FieldElement(self.field, v * modinv(self.value, self.field.p))

    def __pow__(self, exponent: int) -> "FieldElement":
        if exponent < 0:
            return FieldElement(
                self.field, pow(modinv(self.value, self.field.p), -exponent, self.field.p)
            )
        return FieldElement(self.field, pow(self.value, exponent, self.field.p))

    def __neg__(self) -> "FieldElement":
        return FieldElement(self.field, -self.value)

    def inverse(self) -> "FieldElement":
        """Multiplicative inverse; raises :class:`NotInvertibleError` at 0."""
        return FieldElement(self.field, modinv(self.value, self.field.p))

    def sqrt(self) -> "FieldElement":
        """A square root; raises :class:`NoSquareRootError` for non-residues."""
        return FieldElement(self.field, modsqrt(self.value, self.field.p))

    def is_square(self) -> bool:
        """True if this element is a quadratic residue (0 counts as square)."""
        if self.value == 0:
            return True
        return pow(self.value, (self.field.p - 1) // 2, self.field.p) == 1

    # -- predicates / conversions ------------------------------------------

    def is_zero(self) -> bool:
        """True for the additive identity."""
        return self.value == 0

    def __bool__(self) -> bool:
        return self.value != 0

    def __int__(self) -> int:
        return self.value

    def to_bytes(self) -> bytes:
        """Fixed-width big-endian encoding (width = field.byte_length)."""
        return self.value.to_bytes(self.field.byte_length, "big")

    def __eq__(self, other: object) -> bool:
        if isinstance(other, FieldElement):
            return self.field.p == other.field.p and self.value == other.value
        if isinstance(other, int):
            return self.value == other % self.field.p
        return NotImplemented

    def __hash__(self) -> int:
        return hash((self.field.p, self.value))

    def __repr__(self) -> str:
        return "F%d(%d)" % (self.field.p, self.value)
