"""Modular arithmetic helpers.

These are the classic building blocks used throughout the library: extended
Euclid, modular inverse, Chinese remaindering (needed by the secure-lock
baseline), Legendre symbols and Tonelli--Shanks square roots (needed to find
rational points on the genus-2 curve).
"""

from __future__ import annotations

from typing import Iterable, Sequence, Tuple

from repro.errors import InvalidParameterError, NoSquareRootError, NotInvertibleError

__all__ = [
    "egcd",
    "modinv",
    "crt",
    "legendre_symbol",
    "modsqrt",
]


def egcd(a: int, b: int) -> Tuple[int, int, int]:
    """Extended Euclidean algorithm.

    Returns ``(g, x, y)`` such that ``a*x + b*y == g == gcd(a, b)``.
    Works for negative inputs; ``g`` is always non-negative.
    """
    old_r, r = a, b
    old_s, s = 1, 0
    old_t, t = 0, 1
    while r != 0:
        q = old_r // r
        old_r, r = r, old_r - q * r
        old_s, s = s, old_s - q * s
        old_t, t = t, old_t - q * t
    if old_r < 0:
        old_r, old_s, old_t = -old_r, -old_s, -old_t
    return old_r, old_s, old_t


def modinv(a: int, m: int) -> int:
    """Multiplicative inverse of ``a`` modulo ``m``.

    Raises :class:`NotInvertibleError` when ``gcd(a, m) != 1``.
    """
    if m <= 0:
        raise InvalidParameterError("modulus must be positive, got %r" % m)
    a %= m
    g, x, _ = egcd(a, m)
    if g != 1:
        raise NotInvertibleError("%d has no inverse modulo %d (gcd=%d)" % (a, m, g))
    return x % m


def crt(residues: Sequence[int], moduli: Sequence[int]) -> Tuple[int, int]:
    """Chinese Remainder Theorem for pairwise-coprime moduli.

    Given ``x = r_i (mod m_i)`` returns ``(x, M)`` with ``M = prod(m_i)`` and
    ``0 <= x < M``.  Raises :class:`InvalidParameterError` on length mismatch
    and :class:`NotInvertibleError` if the moduli are not pairwise coprime.

    This is the computation at the heart of the secure-lock baseline
    (Chiou & Chen, reference [19] of the paper).
    """
    if len(residues) != len(moduli):
        raise InvalidParameterError(
            "need equally many residues (%d) and moduli (%d)"
            % (len(residues), len(moduli))
        )
    if not moduli:
        raise InvalidParameterError("need at least one congruence")
    x = residues[0] % moduli[0]
    m = moduli[0]
    for r_i, m_i in zip(residues[1:], moduli[1:]):
        g, p, _ = egcd(m, m_i)
        if g != 1:
            raise NotInvertibleError(
                "moduli are not pairwise coprime (gcd(%d, %d) = %d)" % (m, m_i, g)
            )
        # x' = x + m * t  with  x + m*t = r_i (mod m_i)  =>  t = (r_i - x) / m
        t = ((r_i - x) * p) % m_i
        x = x + m * t
        m *= m_i
        x %= m
    return x, m


def legendre_symbol(a: int, p: int) -> int:
    """Legendre symbol ``(a/p)`` for an odd prime ``p``.

    Returns ``1`` if ``a`` is a nonzero quadratic residue, ``-1`` if it is a
    non-residue and ``0`` if ``p`` divides ``a``.
    """
    if p < 3 or p % 2 == 0:
        raise InvalidParameterError("p must be an odd prime, got %r" % p)
    a %= p
    if a == 0:
        return 0
    ls = pow(a, (p - 1) // 2, p)
    return -1 if ls == p - 1 else 1


def modsqrt(a: int, p: int) -> int:
    """Tonelli--Shanks square root modulo an odd prime ``p``.

    Returns the root ``x`` with ``x**2 = a (mod p)`` and ``0 <= x < p``
    (the caller can negate for the other root).  Raises
    :class:`NoSquareRootError` when ``a`` is a non-residue.
    """
    a %= p
    if a == 0:
        return 0
    if p == 2:
        return a
    if legendre_symbol(a, p) != 1:
        raise NoSquareRootError("%d is not a quadratic residue mod %d" % (a, p))
    if p % 4 == 3:
        return pow(a, (p + 1) // 4, p)
    # Write p - 1 = q * 2^s with q odd.
    q, s = p - 1, 0
    while q % 2 == 0:
        q //= 2
        s += 1
    # Find a non-residue z.
    z = 2
    while legendre_symbol(z, p) != -1:
        z += 1
    m = s
    c = pow(z, q, p)
    t = pow(a, q, p)
    r = pow(a, (q + 1) // 2, p)
    while t != 1:
        # Find least i in (0, m) with t^(2^i) == 1.
        i, t2i = 0, t
        while t2i != 1:
            t2i = (t2i * t2i) % p
            i += 1
            if i == m:
                raise NoSquareRootError(
                    "Tonelli-Shanks failed; %d is not a residue mod %d" % (a, p)
                )
        b = pow(c, 1 << (m - i - 1), p)
        m = i
        c = (b * b) % p
        t = (t * c) % p
        r = (r * b) % p
    return r


def product(values: Iterable[int]) -> int:
    """Product of an iterable of ints (empty product is 1)."""
    result = 1
    for v in values:
        result *= v
    return result
