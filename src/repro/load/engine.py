"""The load engine: run a :class:`~repro.load.spec.LoadScenario`.

One engine owns a complete world -- IdP, IdMgr, one
:class:`~repro.system.service.DisseminationService` per publisher spec,
and a churning population of :class:`~repro.system.service.
SubscriberClient` members -- and executes the scenario's phases against
one of two drivers:

* ``memory`` -- everything rides the in-process
  :class:`~repro.system.transport.InMemoryTransport` and settles with
  :func:`~repro.system.service.run_until_idle`.  This is the CI smoke
  scale: deterministic, sub-second, no sockets.
* ``tcp`` -- every entity gets its own broker connection through a
  shared :class:`~repro.net.transport.TcpTransport`; the broker runs on
  a background thread (:class:`~repro.net.runtime.BrokerThread`) or,
  with ``broker="process"``, as a separate OS process supervised by
  :class:`~repro.net.runtime.ProcessSupervisor` -- every frame then
  crosses a real process boundary.  Settling uses
  :func:`~repro.net.runtime.pump_until` /
  :func:`~repro.net.runtime.wait_until_quiet`.

Every member owns a durable data dir (:mod:`repro.store`), which is what
makes the ``flap`` phase honest: a flapped member's client, connection
and in-memory state are dropped exactly like a SIGKILLed
``python -m repro.net.subscriber --data-dir`` process, and recovery goes
through :meth:`SubscriberPersistence.attach` + ``reuse_css=True`` -- no
re-registration, zero unicast.

Every phase ends in a rekey (each publisher re-broadcasts its
documents) followed by the :mod:`repro.load.invariants` checks, so a
scenario that completes has proven lockout, derivation and
zero-unicast after *each* membership change, not just at the end.
"""

from __future__ import annotations

import os
import random
import shutil
import tempfile
import time
from typing import Dict, List, Optional

from repro.errors import LoadScenarioError
from repro.load import invariants
from repro.load.metrics import LoadReport, MetricsCollector
from repro.load.spec import GKM_FIELDS, LoadScenario, PhaseSpec, PublisherSpec
from repro.obs.profile import profile_window, recorder_for, set_profiler
from repro.obs.trace import set_span_writer, writer_for
from repro.store import SubscriberPersistence
from repro.system.idmgr import IdentityManager
from repro.system.idp import IdentityProvider
from repro.system.publisher import Publisher
from repro.system.service import (
    DisseminationService,
    IdentityManagerEndpoint,
    SubscriberClient,
    run_until_idle,
)
from repro.system.subscriber import Subscriber
from repro.system.transport import InMemoryTransport
from repro.workloads.generator import draw_attribute_values

__all__ = ["LoadEngine", "Member", "run_scenario"]

DRIVERS = ("memory", "tcp")
BROKERS = ("thread", "process")


class Member:
    """One subscriber's engine-side bookkeeping."""

    __slots__ = (
        "user", "publisher", "attributes", "nym", "subscriber", "client",
        "persistence", "data_dir", "alive", "revoked", "expected_packages",
        "flaps",
    )

    def __init__(self, user: str, publisher: str, attributes: Dict[str, int],
                 nym: str, data_dir: str):
        self.user = user
        self.publisher = publisher
        self.attributes = attributes
        self.nym = nym
        self.data_dir = data_dir
        self.subscriber: Optional[Subscriber] = None
        self.client: Optional[SubscriberClient] = None
        self.persistence: Optional[SubscriberPersistence] = None
        self.alive = False
        self.revoked = False
        #: Broadcast packages the member's *current* client object is owed
        #: (reset when a flap replaces the client; frames published while
        #: dead stay queued broker/inbox-side and count toward the new one).
        self.expected_packages = 0
        self.flaps = 0


class LoadEngine:
    """Runs one scenario; create per run (worlds are not reusable)."""

    def __init__(
        self,
        scenario: LoadScenario,
        driver: str = "memory",
        broker: str = "thread",
        data_root: Optional[str] = None,
        timeout: float = 120.0,
        obs_dir: Optional[str] = None,
        profile_dir: Optional[str] = None,
    ):
        scenario.validate()
        if driver not in DRIVERS:
            raise LoadScenarioError("driver must be one of %s" % (DRIVERS,))
        if broker not in BROKERS:
            raise LoadScenarioError("broker must be one of %s" % (BROKERS,))
        if scenario.topology and driver != "tcp":
            raise LoadScenarioError(
                "scenario %r declares a relay topology; only the tcp driver "
                "can deploy one (relays are real OS processes)"
                % scenario.name
            )
        self.scenario = scenario
        self.driver = driver
        self.broker_mode = broker
        self.timeout = timeout
        #: Root of the per-entity ``obs.jsonl`` span logs (broker and
        #: relays get subdirectories); ``None`` = no span telemetry.
        self.obs_dir = obs_dir
        #: Directory for opt-in cProfile aggregates around the join and
        #: rekey hot paths; ``None`` = never construct a profiler.
        self.profile_dir = profile_dir
        #: The engine process's own span writer (local endpoints -- the
        #: services, the idmgr endpoint, every member client -- share
        #: it; the ``ep`` span field disambiguates).  Installed as the
        #: process-global stage writer too, so the store/gkm/wire hot
        #: paths emit duration spans without plumbing.
        self._obs_writer = None
        self._prev_span_writer = None
        self._installed_obs = False
        self._profiler = None
        self._prev_profiler = None
        self._installed_profiler = False
        #: The post-run :class:`repro.obs.analyze.Analysis`, for callers
        #: (benchmarks) that want the stitched traces themselves.
        self.last_analysis = None
        self.members: Dict[str, Member] = {}
        self.services: Dict[str, DisseminationService] = {}
        self.metrics = MetricsCollector()
        self._specs = {spec.name: spec for spec in scenario.publishers}
        self._documents = {
            spec.name: [d.build() for d in spec.documents]
            for spec in scenario.publishers
        }
        self._expected_conditions = {
            spec.name: spec.conditions_per_attribute()
            for spec in scenario.publishers
        }
        self._population_rng = random.Random("%s/population" % scenario.seed)
        self._schedule_rng = random.Random("%s/schedule" % scenario.seed)
        self._user_counter = 0
        self._join_counter = 0
        self._attach_counter = 0
        #: Relay name -> bound (host, port), in topology (= spawn) order.
        self._relay_endpoints: Dict[str, tuple] = {}
        #: Leaf relays' endpoints; members attach round-robin across them.
        self._leaf_relays: List[tuple] = []
        self._started = False
        self._closed = False
        self._broker_thread = None
        self._supervisor = None
        self._owns_data_root = data_root is None
        self.data_root = data_root or tempfile.mkdtemp(prefix="repro-load-")
        #: Accounting records of the most recent rekey window (what the
        #: zero-unicast invariant inspects).
        self.last_rekey_records: list = []
        self.last_rekey_broadcasts = 0
        #: ``(publisher name, BroadcastPackage)`` of the most recent rekey
        #: window (what the bucket-layout invariant inspects).
        self.last_rekey_packages: list = []
        #: Relay name -> (before, after) local-stats samples bracketing
        #: the most recent *globally quiet* rekey window (what the
        #: per-hop invariants inspect; empty without a relay topology).
        self.last_rekey_relay_stats: Dict[str, tuple] = {}
        #: Wall time spent inside ``service.publish`` during the most
        #: recent rekey window -- the publisher-side matrix-build cost,
        #: isolated from settling/delivery (the number the dense-vs-
        #: bucketed comparison gates on).
        self.last_rekey_publish_s = 0.0

    # -- world construction --------------------------------------------------

    def start(self) -> "LoadEngine":
        if self._started:
            return self
        scenario = self.scenario
        from repro.groups import get_group

        group = get_group(scenario.group)
        system_rng = random.Random("%s/system" % scenario.seed)
        self.idp = IdentityProvider("idp", group, rng=system_rng)
        self.idmgr = IdentityManager(group, rng=system_rng)
        self.idmgr.trust_idp(self.idp)
        self.transport = self._build_transport()
        for spec in scenario.publishers:
            publisher = Publisher(
                spec.name,
                self.idmgr.params,
                self.idmgr.public_key,
                gkm_field=GKM_FIELDS[scenario.gkm_field],
                attribute_bits=scenario.attribute_bits,
                capacity_slack=scenario.capacity_slack,
                rng=random.Random(
                    "%s/publisher/%s" % (scenario.seed, spec.name)
                ),
                gkm=scenario.gkm,
                gkm_bucket_size=scenario.gkm_bucket_size or None,
                acv_cache=scenario.acv_cache,
            )
            for policy in spec.parsed_policies():
                publisher.add_policy(policy)
            self.services[spec.name] = DisseminationService(
                publisher, self.transport,
                ocbe_workers=scenario.ocbe_workers,
            )
        self.idmgr_ep = IdentityManagerEndpoint(
            self.idmgr, self.transport, name="idmgr",
            ocbe_workers=scenario.ocbe_workers,
        )
        if self.obs_dir:
            self._obs_writer = writer_for(
                os.path.join(self.obs_dir, "engine"), "engine"
            )
            self._prev_span_writer = set_span_writer(self._obs_writer)
            self._installed_obs = True
            self.idmgr_ep.span_writer = self._obs_writer
            for service in self.services.values():
                service.span_writer = self._obs_writer
        if self.profile_dir:
            self._profiler = recorder_for(self.profile_dir, "engine")
            self._prev_profiler = set_profiler(self._profiler)
            self._installed_profiler = True
        self.params = self.services[scenario.publishers[0].name].publisher.params
        self._started = True
        return self

    def _build_transport(self):
        if self.driver == "memory":
            return InMemoryTransport()
        from repro.net._cli import parse_endpoint
        from repro.net.runtime import (
            BrokerThread,
            ProcessSupervisor,
            wait_for_file,
        )
        from repro.net.transport import TcpTransport

        if self.broker_mode == "process":
            # The broker as a real OS process: every frame of the run
            # crosses a process boundary, exactly like the deployed
            # ``python -m repro.net.*`` topology.
            self._supervisor = ProcessSupervisor()
            port_file = os.path.join(self.data_root, "broker.port")
            self._supervisor.spawn_module(
                "repro.net.broker",
                "--port", "0",
                "--port-file", port_file,
                *self._obs_args("broker"),
                name="broker",
            )
            host, port = parse_endpoint(
                wait_for_file(port_file, timeout=self.timeout).strip()
            )
        else:
            broker_kw = {}
            if self.scenario.metrics_interval > 0:
                broker_kw["metrics_interval"] = self.scenario.metrics_interval
            if self.obs_dir:
                broker_kw["obs_path"] = os.path.join(
                    self.obs_dir, "broker", "obs.jsonl"
                )
            self._broker_thread = BrokerThread(**broker_kw)
            host, port = self._broker_thread.endpoint
        if self.scenario.topology:
            self._spawn_relays(host, port)
        return TcpTransport(host, port, timeout=self.timeout)

    def _spawn_relays(self, root_host: str, root_port: int) -> None:
        """Bring up the scenario's relay tree as chained OS processes.

        Topology order is spawn order (``validate`` guarantees upstreams
        come first), and each child's ``--port-file`` resolves the
        ephemeral port the next child's ``--upstream`` needs.  Relays
        are always separate processes, whatever the broker mode: the
        keyless-distribution claim is only honest across a process
        boundary.
        """
        from repro.net._cli import parse_endpoint
        from repro.net.runtime import ProcessSupervisor, wait_for_file

        if self._supervisor is None:
            self._supervisor = ProcessSupervisor()
        for relay in self.scenario.topology:
            if relay.upstream is None:
                upstream = (root_host, root_port)
            else:
                upstream = self._relay_endpoints[relay.upstream]
            port_file = os.path.join(
                self.data_root, "relay-%s.port" % relay.name
            )
            self._supervisor.spawn_module(
                "repro.net.relay",
                "--relay-id", relay.name,
                "--upstream", "%s:%d" % upstream,
                "--port", "0",
                "--port-file", port_file,
                *self._obs_args("relay-%s" % relay.name),
                name="relay-%s" % relay.name,
            )
            self._relay_endpoints[relay.name] = parse_endpoint(
                wait_for_file(port_file, timeout=self.timeout).strip()
            )
        upstreams = {
            relay.upstream for relay in self.scenario.topology
            if relay.upstream is not None
        }
        self._leaf_relays = [
            self._relay_endpoints[relay.name]
            for relay in self.scenario.topology
            if relay.name not in upstreams
        ]

    def _obs_args(self, entity: str) -> List[str]:
        """Extra CLI args wiring one spawned process into the obs tier."""
        args: List[str] = []
        if self.scenario.metrics_interval > 0:
            args += ["--metrics-interval", str(self.scenario.metrics_interval)]
        if self.obs_dir:
            args += ["--obs-dir", os.path.join(self.obs_dir, entity)]
        return args

    def _sample_obs(self) -> Dict[str, dict]:
        """Point-in-time :mod:`repro.obs` snapshots from every vantage.

        ``local`` is this process's global registry (publisher/subscriber
        timers, WAL/GKM costs); with the TCP driver ``root`` adds the
        broker's root aggregate (its own registry merged with whatever
        subtree reports relays have pushed), and each relay contributes
        its local view via the monitor port.  The probe frames are
        answered broker/relay-side directly -- they never enter the byte
        accounting the invariants and phase metrics are computed over.
        """
        from repro.obs.metrics import get_registry

        samples: Dict[str, dict] = {"local": get_registry().snapshot()}
        if self.driver == "tcp":
            # idmgr attaches at the root broker (only members get relay
            # attach points), so this probe draws the *root* aggregate.
            samples["root"] = self.transport.metrics(via="idmgr")
            if self._relay_endpoints:
                from repro.net.relay import request_local_metrics

                for name, (host, port) in self._relay_endpoints.items():
                    samples["relay:%s" % name] = request_local_metrics(
                        host, port, timeout=self.timeout
                    )
        return samples

    def _sample_relays(self) -> Dict[str, object]:
        """One local-stats probe per relay (monitor path, no name-table
        impact); empty without a topology."""
        if not self._relay_endpoints:
            return {}
        from repro.net.relay import request_local_stats

        return {
            name: request_local_stats(host, port, timeout=self.timeout)
            for name, (host, port) in self._relay_endpoints.items()
        }

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        # Restore whatever global writer/profiler the host process had:
        # tests run several engines per process, and an engine must not
        # leave its (closed) writer installed for the next one.
        if self._installed_obs:
            set_span_writer(self._prev_span_writer)
            self._installed_obs = False
        if self._installed_profiler:
            set_profiler(self._prev_profiler)
            self._installed_profiler = False
        if self._profiler is not None:
            self._profiler.write()
            self._profiler = None
        if self._obs_writer is not None:
            from repro.obs.metrics import get_registry

            self._obs_writer.metrics(get_registry().snapshot())
            self._obs_writer.close()
            self._obs_writer = None
        for service in getattr(self, "services", {}).values():
            service.close()
        idmgr_ep = getattr(self, "idmgr_ep", None)
        if idmgr_ep is not None:
            idmgr_ep.close()
        for member in self.members.values():
            if member.persistence is not None:
                member.persistence.close()
                member.persistence = None
        # Presence checks, not _started: a failed start() may have built
        # the transport (or spawned the broker) before raising.
        transport = getattr(self, "transport", None)
        if self.driver == "tcp" and transport is not None:
            transport.close()
        if self._broker_thread is not None:
            self._broker_thread.stop()
        if self._supervisor is not None:
            self._supervisor.shutdown()
        if self._owns_data_root:
            shutil.rmtree(self.data_root, ignore_errors=True)

    def __enter__(self) -> "LoadEngine":
        try:
            return self.start()
        except BaseException:
            # __exit__ never runs when __enter__ raises: tear down here
            # or a spawned broker process / temp data root would leak.
            self.close()
            raise

    def __exit__(self, *exc_info) -> None:
        self.close()

    # -- small accessors ------------------------------------------------------

    def publisher_spec(self, name: str) -> PublisherSpec:
        return self._specs[name]

    def publisher_names(self) -> List[str]:
        return [spec.name for spec in self.scenario.publishers]

    def endpoints(self) -> list:
        live = [self.idmgr_ep, *self.services.values()]
        live.extend(
            member.client
            for member in self.members.values()
            if member.client is not None
        )
        return live

    def alive_members(self) -> List[Member]:
        return [m for m in self.members.values() if m.alive]

    def revoked_count(self) -> int:
        return sum(1 for m in self.members.values() if m.revoked)

    # -- accounting windows ----------------------------------------------------

    def accounting(self) -> InMemoryTransport:
        """The byte-accounting view, identical for both drivers."""
        if self.driver == "memory":
            return self.transport
        return self.transport.snapshot()

    def _accounting_mark(self) -> int:
        return len(self.accounting().messages)

    def _records_since(self, mark: int) -> list:
        return self.accounting().messages[mark:]

    # -- settling --------------------------------------------------------------

    def _settle(self, predicate=None, quiet: bool = True) -> None:
        """Drive the world until ``predicate`` holds (and, for the TCP
        driver, until the broker is globally quiet).

        ``quiet=False`` is required while flapped members are dead: the
        broker rightfully reports their queued broadcasts as pending, so
        global quiescence is unreachable until they reconnect.
        """
        endpoints = self.endpoints()
        if self.driver == "memory":
            run_until_idle(endpoints)
            if predicate is not None and not predicate():
                raise LoadScenarioError(
                    "world went idle before the phase condition held"
                )
            return
        from repro.net.runtime import pump_until, wait_until_quiet

        if predicate is not None:
            pump_until(endpoints, predicate, timeout=self.timeout)
        if quiet:
            wait_until_quiet(
                self.transport, endpoints, timeout=self.timeout
            )

    # -- membership operations ---------------------------------------------------

    def _spawn_member(self, publisher: str) -> Member:
        scenario = self.scenario
        user = "u%05d" % self._user_counter
        self._user_counter += 1
        spec = self._specs[publisher]
        attributes = draw_attribute_values(spec.mix(), self._population_rng)
        for name, value in sorted(attributes.items()):
            self.idp.enroll(user, name, value)
        nym = self.idmgr.assign_pseudonym()
        member = Member(
            user, publisher, attributes, nym,
            os.path.join(self.data_root, user),
        )
        subscriber = Subscriber(
            nym, self.params,
            rng=random.Random("%s/%s" % (scenario.seed, user)),
        )
        member.subscriber = subscriber
        member.persistence = SubscriberPersistence.attach(
            member.data_dir, subscriber, sync=False
        )
        if self._leaf_relays:
            # Round-robin across leaf relays, before the client's first
            # connect; the attach point sticks across flap reconnects.
            host, port = self._leaf_relays[
                self._attach_counter % len(self._leaf_relays)
            ]
            self._attach_counter += 1
            self.transport.set_attach_point(nym, host, port)
        member.client = SubscriberClient(
            subscriber,
            self.transport,
            publisher_name=publisher,
            idmgr_name="idmgr",
            persistence=member.persistence,
        )
        member.client.span_writer = self._obs_writer
        member.alive = True
        self.members[user] = member
        for name in sorted(attributes):
            member.client.request_token(
                name, assertion=self.idp.assert_attribute(user, name)
            )
        return member

    def _registration_done(self, member: Member) -> bool:
        client = member.client
        if client is None or client.registering():
            return False
        expected = self._expected_conditions[member.publisher]
        return all(
            len(client.results.get(name, {})) >= expected.get(name, 0)
            for name in member.attributes
        )

    def _join(self, phase: PhaseSpec) -> None:
        names = self.publisher_names()
        with profile_window("join"):
            fresh: List[Member] = []
            for _ in range(phase.count):
                if phase.publisher is not None:
                    target = phase.publisher
                else:
                    target = names[self._join_counter % len(names)]
                self._join_counter += 1
                fresh.append(self._spawn_member(target))
            self._settle(
                lambda: all(
                    set(m.subscriber.attribute_tags()) == set(m.attributes)
                    for m in fresh
                )
            )
            for member in fresh:
                member.client.register_all_attributes()
            self._settle(
                lambda: all(self._registration_done(m) for m in fresh)
            )

    def _pick(self, phase: PhaseSpec, verb: str) -> List[Member]:
        candidates = [
            m
            for m in self.members.values()
            if m.alive
            and not m.revoked
            and (phase.publisher is None or m.publisher == phase.publisher)
        ]
        if phase.count > len(candidates):
            raise LoadScenarioError(
                "cannot %s %d members: only %d current%s"
                % (verb, phase.count, len(candidates),
                   "" if phase.publisher is None
                   else " at %r" % phase.publisher)
            )
        return self._schedule_rng.sample(candidates, phase.count)

    def _revoke(self, phase: PhaseSpec) -> None:
        chosen = self._pick(phase, "revoke")
        by_publisher: Dict[str, List[Member]] = {}
        for member in chosen:
            by_publisher.setdefault(member.publisher, []).append(member)
        for publisher, group in by_publisher.items():
            # One batched table mutation per publisher; the single
            # publish in the rekey step that follows is then the one
            # matrix build the batching exists for.
            removed = self.services[publisher].publisher.revoke_subscriptions(
                [member.nym for member in group]
            )
            if removed != len(group):
                raise LoadScenarioError(
                    "revocation at %r removed %d of %d members"
                    % (publisher, removed, len(group))
                )
            for member in group:
                member.revoked = True

    def _kill(self, member: Member) -> None:
        """Drop a member like a SIGKILL would: durable state survives,
        everything else -- client, connection, ack debt -- is lost."""
        if member.persistence is not None:
            member.persistence.close()
        if self.driver == "tcp":
            self.transport.disconnect(member.nym)
        member.persistence = None
        member.client = None
        member.subscriber = None
        member.alive = False
        member.expected_packages = 0

    def _recover(self, member: Member) -> None:
        member.flaps += 1
        subscriber = Subscriber(
            member.nym, self.params,
            rng=random.Random(
                "%s/%s/flap%d" % (self.scenario.seed, member.user, member.flaps)
            ),
        )
        persistence = SubscriberPersistence.attach(
            member.data_dir, subscriber, sync=False
        )
        if not persistence.recovered:
            raise LoadScenarioError(
                "flap recovery of %s found no durable state" % member.user
            )
        member.subscriber = subscriber
        member.persistence = persistence
        member.client = SubscriberClient(
            subscriber,
            self.transport,
            publisher_name=member.publisher,
            idmgr_name="idmgr",
            persistence=persistence,
            # A durable CSS is a completed registration: recovery must
            # not re-run one OCBE exchange.
            reuse_css=True,
        )
        member.client.span_writer = self._obs_writer
        member.alive = True

    def _condition_keys_for(self, member: Member) -> set:
        """Condition keys the member's tokens register for (Section V-B)."""
        return {
            condition.key()
            for policy in self._specs[member.publisher].parsed_policies()
            for condition in policy.conditions
            if condition.name in member.attributes
        }

    def _flap(self, phase: PhaseSpec) -> None:
        chosen = self._pick(phase, "flap")
        # A member whose durable CSS store covers every registrable
        # condition ("warm") must recover without one registration frame.
        # A member that never satisfied some condition holds no CSS for
        # it and legitimately re-runs that OCBE exchange on recovery --
        # exactly like `python -m repro.net.subscriber --data-dir`.
        warm = {
            member.nym
            for member in chosen
            if self._condition_keys_for(member)
            <= set(member.subscriber.css_store)
        }
        for member in chosen:
            self._kill(member)
        if self._relay_endpoints:
            # A killed member's RelayDetach must reach the root *before*
            # the down-window rekey: a multicast racing the detach would
            # still be fanned toward the dead connection (at-most-once,
            # like any in-flight frame) instead of queueing in the root
            # inbox the comeback drains.  The root's relay_entities
            # counter hitting the live population is that barrier.
            expected = len(self.alive_members())
            self._settle(
                lambda: self.transport.stats().counter("relay_entities")
                == expected,
                quiet=False,
            )
        # Rekey while they are down: the remaining members must keep
        # deriving, and the missed broadcast queues for the comeback.
        # Global quiescence is unreachable (their frames are parked), so
        # settle on receipt only.
        self._rekey(quiet=False)
        # run_phase's closing rekey will overwrite last_rekey_records,
        # so the down-window -- the window this phase exists to probe --
        # must be checked here.
        invariants.check_rekey_window(
            self.last_rekey_records,
            self.publisher_names(),
            self.last_rekey_broadcasts,
            context="flap down-window",
        )
        invariants.check_bucket_layout(self, context="flap down-window")
        mark = self._accounting_mark()
        for member in chosen:
            self._recover(member)
        for member in chosen:
            member.client.register_all_attributes()
        self._settle(lambda: all(self._registration_done(m) for m in chosen))
        for record in self._records_since(mark):
            if record.kind in invariants.REGISTRATION_KINDS and (
                record.sender in warm or record.receiver in warm
            ):
                raise LoadScenarioError(
                    "flap recovery re-ran registration traffic for a "
                    "fully-provisioned member (%s %r -> %r)"
                    % (record.kind, record.sender, record.receiver)
                )

    # -- the rekey that ends every phase -----------------------------------------

    def _rekey(self, quiet: bool = True, repeat: int = 1) -> None:
        with profile_window("rekey"):
            self._rekey_inner(quiet=quiet, repeat=repeat)

    def _rekey_inner(self, quiet: bool = True, repeat: int = 1) -> None:
        mark = self._accounting_mark()
        # Per-hop counters are only meaningful over a *quiet* window (a
        # non-quiet one may still have multicasts in flight toward a
        # relay whose only members are down).
        relay_mark = self._sample_relays() if quiet else {}
        publishes = 0
        # Latest package per (publisher, document): a repeat>1 broadcast
        # re-publishes under fresh keys, and publisher.last_keys (which
        # the bucket-layout audit needs) only knows the newest ones.
        packages = {}
        publish_s = 0.0
        for _ in range(repeat):
            for name, service in self.services.items():
                for document in self._documents[name]:
                    publish_started = time.perf_counter()
                    package = service.publish(document)
                    publish_s += time.perf_counter() - publish_started
                    packages[(name, document.name)] = (name, package)
                    publishes += 1
                    for member in self.members.values():
                        if member.publisher == name:
                            member.expected_packages += 1
        self.last_rekey_packages = list(packages.values())
        self.last_rekey_publish_s = publish_s
        self._settle(
            lambda: all(
                len(m.client.packages) >= m.expected_packages
                for m in self.alive_members()
            ),
            quiet=quiet,
        )
        self.last_rekey_records = self._records_since(mark)
        self.last_rekey_broadcasts = publishes
        if relay_mark:
            after = self._sample_relays()
            self.last_rekey_relay_stats = {
                name: (relay_mark[name], after[name]) for name in relay_mark
            }
        else:
            self.last_rekey_relay_stats = {}

    # -- running ------------------------------------------------------------------

    def run_phase(self, index: int, phase: PhaseSpec) -> None:
        label = "%02d_%s" % (index, phase.kind)
        epochs_before = sum(
            service.publisher.epoch for service in self.services.values()
        )
        mark = self._accounting_mark()
        window_started = time.time()
        started = time.perf_counter()
        if phase.kind == "join":
            self._join(phase)
            self._rekey()
        elif phase.kind == "revoke":
            self._revoke(phase)
            self._rekey()
        elif phase.kind == "flap":
            self._flap(phase)
            self._rekey()
        elif phase.kind == "broadcast":
            self._rekey(repeat=phase.repeat)
        else:  # unreachable after validate(); keep the loud failure
            raise LoadScenarioError("unknown phase kind %r" % phase.kind)
        wall = time.perf_counter() - started
        invariants.check_rekey_window(
            self.last_rekey_records,
            self.publisher_names(),
            self.last_rekey_broadcasts,
            context=label,
        )
        invariants.check_members(self, context=label)
        invariants.check_bucket_layout(self, context=label)
        invariants.check_exact_delivery(self, context=label)
        invariants.check_relay_hops(self, context=label)
        epochs_after = sum(
            service.publisher.epoch for service in self.services.values()
        )
        self.metrics.record(
            label,
            phase.kind,
            wall,
            self._records_since(mark),
            self.publisher_names(),
            rekeys=epochs_after - epochs_before,
            members_alive=len(self.alive_members()),
            members_revoked=self.revoked_count(),
            rekey_publish_s=self.last_rekey_publish_s,
            obs=self._sample_obs(),
            window=(window_started, time.time()),
        )

    def run(self) -> LoadReport:
        self.start()
        for index, phase in enumerate(self.scenario.phases):
            self.run_phase(index, phase)
        report = LoadReport(
            scenario=self.scenario.name,
            driver=self.driver,
            phases=list(self.metrics.phases),
            params={
                "seed": self.scenario.seed,
                "group": self.scenario.group,
                "gkm_field": self.scenario.gkm_field,
                "gkm": self.scenario.gkm,
                "gkm_bucket_size": self.scenario.gkm_bucket_size,
                "publishers": len(self.scenario.publishers),
                "phases": len(self.scenario.phases),
                "members_total": len(self.members),
                "members_alive": len(self.alive_members()),
                "members_revoked": self.revoked_count(),
                "broker": self.broker_mode if self.driver == "tcp" else None,
                "relays": len(self.scenario.topology),
            },
        )
        if self.obs_dir:
            report = self._attach_attribution(report)
        return report

    def _attach_attribution(self, report: LoadReport) -> LoadReport:
        """Stitch the run's span logs and fold per-phase attribution
        tables into the report (and gate on the scenario's coverage
        floor, when one is set).

        Runs post-hoc, against files already on disk: every span writer
        flushes per line, so the spawned broker/relay processes' logs
        are readable while those processes are still alive.
        """
        import dataclasses

        from repro.obs.analyze import analyze_paths, attribution_table

        engine_path = os.path.join(self.obs_dir, "engine", "obs.jsonl")
        analysis = analyze_paths(
            [self.obs_dir],
            reference=engine_path if os.path.exists(engine_path) else None,
        )
        self.last_analysis = analysis
        phases = []
        for metrics in report.phases:
            if metrics.window is None:
                phases.append(metrics)
                continue
            low, high = metrics.window
            bucket = [
                t for t in analysis.traces if low <= t.start <= high
            ]
            phases.append(dataclasses.replace(
                metrics, attribution=attribution_table(bucket),
            ))
        report.phases = phases
        floor = self.scenario.min_attribution_coverage
        if floor > 0.0:
            table = analysis.publish_attribution()
            if table["coverage"] < floor:
                raise LoadScenarioError(
                    "attribution coverage %.1f%% of publish wall is below "
                    "the scenario's %.1f%% floor (stages: %s)" % (
                        table["coverage"] * 100.0, floor * 100.0,
                        sorted(table["stages"]),
                    )
                )
        return report


def run_scenario(
    scenario: LoadScenario,
    driver: str = "memory",
    broker: str = "thread",
    data_root: Optional[str] = None,
    timeout: float = 120.0,
    obs_dir: Optional[str] = None,
    profile_dir: Optional[str] = None,
) -> LoadReport:
    """Run ``scenario`` in a fresh engine and tear the world down after."""
    with LoadEngine(
        scenario, driver=driver, broker=broker, data_root=data_root,
        timeout=timeout, obs_dir=obs_dir, profile_dir=profile_dir,
    ) as engine:
        return engine.run()
