"""Builtin scenarios: the CI smoke run and the nightly churn run.

Both follow one shape -- N publishers with disjoint attribute universes,
each broadcasting a two-segment feed gated by a base and a VIP
clearance condition -- so a member's entitlement varies with its drawn
clearance (some derive both segments, some one, some none), which gives
the derivation invariant real negative cases, not just happy paths.
"""

from __future__ import annotations

from dataclasses import replace

from repro.errors import InvalidParameterError
from repro.load.spec import (
    AttributeSpec,
    DocumentSpec,
    LoadScenario,
    PhaseSpec,
    PolicySpec,
    PublisherSpec,
    RelaySpec,
)

__all__ = [
    "BUILTIN_SCENARIOS",
    "bucketed",
    "builtin_scenario",
    "churn_scenario",
    "feed_publisher",
    "smoke_scenario",
    "warm_churn_scenario",
    "with_relays",
]


def feed_publisher(name: str) -> PublisherSpec:
    """One "feed" publisher over its own ``<name>_clr`` clearance attribute.

    Clearances are drawn uniformly from [0, 99]: >= 40 unlocks the feed
    body, >= 80 additionally the VIP brief, < 40 nothing at all.
    """
    attribute = "%s_clr" % name
    document = "%s-feed" % name
    return PublisherSpec(
        name=name,
        attributes=(AttributeSpec(attribute, 0, 99),),
        policies=(
            PolicySpec("%s >= 40" % attribute, ("body",), document),
            PolicySpec("%s >= 80" % attribute, ("vip",), document),
        ),
        documents=(
            DocumentSpec(
                name=document,
                segments=(
                    ("body", "the %s bulletin body" % name),
                    ("vip", "the %s vip brief" % name),
                ),
            ),
        ),
    )


def smoke_scenario(seed: int = 0x10AD) -> LoadScenario:
    """CI-smoke scale: two publishers, ~14 members, every phase kind.

    Small enough for the fast tier and the per-push CI step, yet it
    exercises arrival, a revoke storm, kill-and-recover flapping and
    pure fan-out -- with invariants asserted after each.
    """
    return LoadScenario(
        name="smoke",
        seed=seed,
        publishers=(feed_publisher("alpha"), feed_publisher("beta")),
        phases=(
            PhaseSpec(kind="join", count=10),
            PhaseSpec(kind="revoke", count=2),
            PhaseSpec(kind="flap", count=2),
            PhaseSpec(kind="join", count=4),
            PhaseSpec(kind="broadcast", repeat=2),
        ),
    ).validate()


def churn_scenario(
    subscribers: int = 64,
    publishers: int = 2,
    seed: int = 0xC41218,
) -> LoadScenario:
    """The nightly churn run: a sustained arrive/revoke/flap schedule.

    Defaults give 64 initial subscribers across 2 publishers and five
    churn phases (revoke storm, replacement arrivals, a flap wave,
    a second storm) before a fan-out burst -- the smallest shape that
    answers "does rekeying stay broadcast-only under sustained
    membership change", and the baseline for scaling the counts up.
    """
    names = ("alpha", "beta", "gamma", "delta", "epsilon")[:publishers]
    storm = max(subscribers // 8, 1)
    flap = max(subscribers // 10, 1)
    return LoadScenario(
        name="churn",
        seed=seed,
        publishers=tuple(feed_publisher(name) for name in names),
        phases=(
            PhaseSpec(kind="join", count=subscribers),
            PhaseSpec(kind="revoke", count=storm),
            PhaseSpec(kind="join", count=storm),
            PhaseSpec(kind="flap", count=flap),
            PhaseSpec(kind="revoke", count=storm),
            PhaseSpec(kind="broadcast", repeat=2),
        ),
    ).validate()


def warm_churn_scenario(
    subscribers: int = 12,
    waves: int = 4,
    seed: int = 0x3A11,
) -> LoadScenario:
    """Joins and broadcasts interleaving at high rate on a *warm* publisher.

    After the initial wave every later join lands on a publisher whose
    ACV build cache already carries the configuration's factorization, so
    the rekey each broadcast forces takes the incremental O(m^2) update
    path (``acv.update``) instead of a fresh elimination -- the workload
    the rank-1 join maintenance exists for.  A closing revoke asserts the
    full-invalidation fallback still locks members out afterwards.

    Pair with ``replace(scenario, acv_cache=False, ...)`` for the
    from-scratch baseline: same seed and phases, so delivered plaintexts
    must match exactly.
    """
    if waves < 1:
        raise InvalidParameterError("warm churn needs at least one wave")
    phases = [
        PhaseSpec(kind="join", count=subscribers),
        PhaseSpec(kind="broadcast"),
    ]
    for _ in range(waves):
        phases.append(PhaseSpec(kind="join", count=2))
        phases.append(PhaseSpec(kind="broadcast", repeat=2))
    phases.append(PhaseSpec(kind="revoke", count=max(subscribers // 8, 1)))
    phases.append(PhaseSpec(kind="broadcast"))
    return LoadScenario(
        name="warm-churn",
        seed=seed,
        publishers=(feed_publisher("alpha"), feed_publisher("beta")),
        phases=tuple(phases),
    ).validate()


def bucketed(scenario: LoadScenario, bucket_size: int = 0) -> LoadScenario:
    """The same experiment under the bucketed publish-path strategy.

    Only the GKM strategy knob changes (and the name gains a
    ``-bucketed`` suffix): population, seed, phases and documents stay
    identical, which is what lets the differential harness assert
    byte-identical delivered plaintexts against the dense run.
    """
    return replace(
        scenario,
        name="%s-bucketed" % scenario.name,
        gkm="bucketed",
        gkm_bucket_size=bucket_size,
    ).validate()


def with_relays(scenario: LoadScenario, depth: int) -> LoadScenario:
    """The same experiment behind a ``depth``-deep relay chain.

    ``relay1`` hangs off the root broker, ``relay2`` off ``relay1`` and
    so on.  A chain has a single leaf, so every subscriber attaches at
    the deepest relay and every frame rides the full depth -- the worst
    case the per-hop invariants and the fan-out benchmark exist to
    stress.  Only the topology knob (and a ``-relayN`` name suffix)
    changes: same seed, population and phases, so delivered plaintexts
    must be byte-identical to the single-broker run.  TCP driver only.
    """
    if depth < 1:
        raise InvalidParameterError("relay depth must be >= 1")
    relays = []
    for index in range(depth):
        relays.append(
            RelaySpec(
                name="relay%d" % (index + 1),
                upstream=None if index == 0 else "relay%d" % index,
            )
        )
    return replace(
        scenario,
        name="%s-relay%d" % (scenario.name, depth),
        topology=tuple(relays),
    ).validate()


BUILTIN_SCENARIOS = {
    "smoke": smoke_scenario,
    "churn": churn_scenario,
    "warm-churn": warm_churn_scenario,
    "smoke-bucketed": lambda: bucketed(smoke_scenario()),
    "churn-bucketed": lambda: bucketed(churn_scenario()),
    "warm-churn-bucketed": lambda: bucketed(warm_churn_scenario()),
    # The federation smokes: the same populations behind a relay chain
    # (TCP driver required -- relays are real OS processes).
    "smoke-relay": lambda: with_relays(smoke_scenario(), 2),
    "churn-relay": lambda: with_relays(churn_scenario(), 3),
}


def builtin_scenario(name: str) -> LoadScenario:
    """Look up a builtin by name (:data:`BUILTIN_SCENARIOS`)."""
    factory = BUILTIN_SCENARIOS.get(name)
    if factory is None:
        raise InvalidParameterError(
            "no builtin scenario %r (have %s)"
            % (name, sorted(BUILTIN_SCENARIOS))
        )
    return factory()
