"""``python -m repro.load``: run a load scenario from the shell.

Examples::

    # the CI smoke run, in-process, emitting BENCH_load_smoke.json
    python -m repro.load --builtin smoke --driver memory --bench

    # the churn scenario over real sockets with the broker as its own
    # OS process
    python -m repro.load --builtin churn --driver tcp --broker process

    # a custom scenario file
    python -m repro.load --scenario myscenario.json --driver tcp

Exit status 0 means every phase completed AND every post-phase
invariant (lockout, derivation, zero-unicast rekey) held; invariant
violations print and exit 1.
"""

from __future__ import annotations

import argparse
import dataclasses
import json
import sys

from repro.errors import ReproError
from repro.load.engine import run_scenario
from repro.load.scenarios import BUILTIN_SCENARIOS, builtin_scenario
from repro.load.spec import load_scenario_file

__all__ = ["main"]


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.load",
        description="Run a declarative load/churn scenario.",
    )
    source = parser.add_mutually_exclusive_group(required=True)
    source.add_argument("--scenario", help="scenario JSON file")
    source.add_argument("--builtin", choices=sorted(BUILTIN_SCENARIOS),
                        help="a builtin scenario")
    parser.add_argument("--driver", choices=("memory", "tcp"),
                        default="memory",
                        help="in-process transport or real TCP sockets")
    parser.add_argument("--broker", choices=("thread", "process"),
                        default="thread",
                        help="TCP driver only: broker on a background "
                             "thread or as a supervised OS process")
    parser.add_argument("--data-root", default=None,
                        help="directory for the members' durable state "
                             "(default: a private temp dir, removed after)")
    parser.add_argument("--timeout", type=float, default=120.0,
                        help="per-settle deadline in seconds")
    parser.add_argument("--bench", action="store_true",
                        help="emit BENCH_load_<name>.json via "
                             "repro.bench.runner (REPRO_BENCH_DIR)")
    parser.add_argument("--bench-name", default=None,
                        help="override the emitted bench name")
    parser.add_argument("--report", default=None,
                        help="also write the full report JSON here")
    parser.add_argument("--obs-dir", default=None,
                        help="collect per-entity obs.jsonl span logs from "
                             "the broker/relay tier under this directory "
                             "(readable by python -m repro.obs.report)")
    parser.add_argument("--metrics-interval", type=float, default=None,
                        help="override the scenario's metrics push/snapshot "
                             "interval in seconds (0 disables the periodic "
                             "push; phase-boundary sampling always happens)")
    parser.add_argument("--profile-dir", default=None,
                        help="record cProfile aggregates around the join "
                             "and rekey hot paths into profile_*.json files "
                             "under this directory (readable by python -m "
                             "repro.obs.profile)")
    args = parser.parse_args(argv)

    if args.builtin:
        scenario = builtin_scenario(args.builtin)
    else:
        scenario = load_scenario_file(args.scenario)
    if args.metrics_interval is not None:
        scenario = dataclasses.replace(
            scenario, metrics_interval=args.metrics_interval
        ).validate()

    try:
        report = run_scenario(
            scenario,
            driver=args.driver,
            broker=args.broker,
            data_root=args.data_root,
            timeout=args.timeout,
            obs_dir=args.obs_dir,
            profile_dir=args.profile_dir,
        )
    except ReproError as exc:
        print("FAILED: %s: %s" % (type(exc).__name__, exc), file=sys.stderr)
        return 1

    print(report.format())
    obs_table = report.format_obs()
    if obs_table:
        print(obs_table)
    attribution_table = report.format_attribution()
    if attribution_table:
        print(attribution_table)
    if args.report:
        with open(args.report, "w", encoding="utf-8") as handle:
            json.dump(report.to_payload(), handle, indent=2, sort_keys=True)
            handle.write("\n")
    if args.bench:
        path = report.emit_bench(args.bench_name)
        print("wrote %s" % path)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
